//! Cross-crate integration: several Alphonse applications sharing one
//! runtime, with graph partitioning keeping them independent.

use alphonse::{Runtime, Strategy};
use alphonse_agkit::{parse_let, AgEvaluator, LetLang};
use alphonse_sheet::Sheet;
use alphonse_trees::{MaintainedAvl, MaintainedTree};
use std::sync::Arc;

#[test]
fn three_applications_share_one_partitioned_runtime() {
    let rt = Runtime::builder().partitioning(true).build();

    // Application 1: a spreadsheet.
    let sheet = Sheet::new(&rt, 8, 8);
    sheet.set("A1", "10").unwrap();
    sheet.set("B1", "=A1*A1").unwrap();

    // Application 2: a maintained-height tree.
    let tree = MaintainedTree::new(&rt);
    let root = tree.store().build_balanced(&(0..31).collect::<Vec<_>>());

    // Application 3: the let-language attribute grammar.
    let (ag_tree, lang) = LetLang::tree(&rt);
    let expr = parse_let("let x = 5 in x + x ni").unwrap();
    let (ag_root, _) = expr.instantiate(&ag_tree, &lang);
    let ag = AgEvaluator::new(&rt, Arc::clone(&ag_tree));

    assert_eq!(sheet.value("B1").unwrap().num(), Some(100));
    assert_eq!(tree.height(root), 5);
    assert_eq!(ag.syn(ag_root, lang.value).as_int(), 10);

    // Mutate only the spreadsheet; the other components must not re-run.
    let before = rt.stats();
    sheet.set("A1", "12").unwrap();
    assert_eq!(tree.height(root), 5);
    assert_eq!(ag.syn(ag_root, lang.value).as_int(), 10);
    let d = rt.stats().delta_since(&before);
    assert_eq!(
        d.executions, 0,
        "tree/AG queries must be pure hits while sheet dirt is pending in its own partition"
    );
    assert!(rt.dirty_count() > 0, "sheet change still pending");
    assert_eq!(sheet.value("B1").unwrap().num(), Some(144));
    assert_eq!(rt.dirty_count(), 0);
}

#[test]
fn trees_and_sheet_interleave_on_global_runtime() {
    // Without partitioning everything still works; a query anywhere just
    // drains the shared inconsistent set first.
    let rt = Runtime::new();
    let sheet = Sheet::new(&rt, 4, 4);
    let mut avl = MaintainedAvl::new(&rt);
    sheet.set("A1", "1").unwrap();
    sheet.set("A2", "=A1+1").unwrap();
    for k in 0..64 {
        avl.insert(k);
    }
    avl.rebalance();
    assert!(avl.is_avl());
    for round in 0..10 {
        sheet.set("A1", &round.to_string()).unwrap();
        avl.insert(100 + round);
        avl.rebalance();
        assert_eq!(sheet.value("A2").unwrap().num(), Some(round + 1));
        assert!(avl.is_avl());
        assert!(avl.contains(100 + round));
    }
    assert_eq!(avl.len(), 74);
}

#[test]
fn eager_memo_observes_sheet_changes_via_propagate() {
    // A Rust-level eager memo derived from a spreadsheet cell: propagation
    // updates it without any query — applications compose through the
    // shared dependency graph.
    let rt = Runtime::new();
    let sheet = Arc::new(Sheet::new(&rt, 4, 4));
    sheet.set("A1", "5").unwrap();
    sheet.set("A2", "=A1*3").unwrap();
    let s = Arc::clone(&sheet);
    let watch = rt.memo_with("watch", Strategy::Eager, move |_rt, &(): &()| {
        s.value_at(alphonse_sheet::Addr::new(0, 1))
    });
    assert_eq!(watch.call(&rt, ()).num(), Some(15));

    sheet.set("A1", "7").unwrap();
    rt.propagate(); // eager: the derived value updates here
    let before = rt.stats();
    assert_eq!(watch.call(&rt, ()).num(), Some(21));
    assert_eq!(
        rt.stats().delta_since(&before).executions,
        0,
        "the call after propagate is a pure cache hit"
    );
}
