//! The paper's quantitative claims, asserted as scaling tests.
//!
//! These are the testable halves of the experiments in DESIGN.md: where a
//! bench measures and reports, these tests assert the *shape* — who wins,
//! and how work scales with input size.

use alphonse::{Runtime, Scheduling, Strategy};
use alphonse_sheet::{RecalcSheet, Sheet};
use alphonse_trees::{ExhaustiveTree, MaintainedTree, NodeRef};

/// §3.4: repeat height queries are O(1); the exhaustive baseline pays
/// O(n) per query.
#[test]
fn claim_repeat_queries_are_constant_time() {
    for n in [128usize, 1024] {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let root = tree
            .store()
            .build_balanced(&(0..n as i64).collect::<Vec<_>>());
        tree.height(root);
        let before = rt.stats();
        for _ in 0..20 {
            tree.height(root);
        }
        let d = rt.stats().delta_since(&before);
        assert_eq!(d.executions, 0, "n={n}");
        // Baseline pays n visits per query at any size.
        let mut ex = ExhaustiveTree::new();
        let ex_root = ex.build_balanced(n);
        ex.reset_counters();
        ex.height(ex_root);
        assert_eq!(ex.visits(), n as u64);
    }
}

/// §3.4: a single child-pointer change costs O(height), independent of n
/// up to the depth difference.
#[test]
fn claim_single_change_costs_height_not_n() {
    let mut costs = Vec::new();
    for n in [255usize, 4095] {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let store = tree.store().clone();
        let root = store.build_balanced(&(0..n as i64).collect::<Vec<_>>());
        tree.height(root);
        // Relink deepest-left leaf.
        let mut leaf = root;
        while !store.left(leaf).is_nil() {
            leaf = store.left(leaf);
        }
        let before = rt.stats();
        store.set_left(leaf, store.new_leaf(-1));
        tree.height(root);
        let d = rt.stats().delta_since(&before);
        costs.push(d.executions);
    }
    // 16x more nodes, but only +4 levels: cost grows by a constant, not 16x.
    let (small, large) = (costs[0], costs[1]);
    assert!(
        large <= small + 8,
        "update cost must track height: {small} -> {large}"
    );
}

/// §3.4: batching — k changes then one query cost less than k separate
/// change+query rounds.
#[test]
fn claim_batched_changes_coalesce() {
    let n = 1023usize;
    let build = || {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let root = tree
            .store()
            .build_balanced(&(0..n as i64).collect::<Vec<_>>());
        tree.height(root);
        (rt, tree, root)
    };
    let relink_targets = |tree: &MaintainedTree, root: NodeRef| -> Vec<NodeRef> {
        // 8 internal nodes on the left spine.
        let store = tree.store();
        let mut out = Vec::new();
        let mut cur = root;
        for _ in 0..8 {
            cur = store.left(cur);
            out.push(cur);
        }
        out
    };
    let (rt_b, tree_b, root_b) = build();
    let targets = relink_targets(&tree_b, root_b);
    let before = rt_b.stats();
    for &t in &targets {
        tree_b.store().set_right(t, tree_b.store().new_leaf(0));
    }
    tree_b.height(root_b);
    let batched = rt_b.stats().delta_since(&before).executions;

    let (rt_s, tree_s, root_s) = build();
    let targets = relink_targets(&tree_s, root_s);
    let before = rt_s.stats();
    for &t in &targets {
        tree_s.store().set_right(t, tree_s.store().new_leaf(0));
        tree_s.height(root_s);
    }
    let separate = rt_s.stats().delta_since(&before).executions;
    assert!(
        batched < separate,
        "batched {batched} must beat separate {separate} (shared ancestors updated once)"
    );
}

/// §9.1: dependency-graph space is O(M) for tree-structured dependence.
#[test]
fn claim_space_scales_linearly_for_trees() {
    let mut per_node = Vec::new();
    for n in [256usize, 2048] {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let root = tree
            .store()
            .build_balanced(&(0..n as i64).collect::<Vec<_>>());
        tree.height(root);
        per_node.push(rt.edge_count() as f64 / n as f64);
    }
    let ratio = per_node[1] / per_node[0];
    assert!(
        (0.8..1.25).contains(&ratio),
        "edges per node must be size-independent, got {per_node:?}"
    );
}

/// §6.4: UNCHECKED descent drops per-lookup dependence from O(log n) to
/// O(1).
#[test]
fn claim_unchecked_reduces_dependence() {
    let n = 1023usize;
    let run = |unchecked: bool| -> u64 {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let store = std::sync::Arc::clone(tree.store());
        let root = store.build_balanced(&(0..n as i64).collect::<Vec<_>>());
        let contains = rt.memo("contains", move |rt, &key: &i64| {
            let descend = |s: &alphonse_trees::TreeStore| {
                let mut cur = root;
                while !cur.is_nil() {
                    let k = s.key(cur);
                    if k == key {
                        return cur;
                    }
                    cur = if key < k { s.left(cur) } else { s.right(cur) };
                }
                NodeRef::NIL
            };
            let found = if unchecked {
                rt.untracked(|| descend(&store))
            } else {
                descend(&store)
            };
            !found.is_nil() && store.key(found) == key
        });
        let before = rt.stats();
        for key in 0..64 {
            assert!(contains.call(&rt, key * 16));
        }
        rt.stats().delta_since(&before).edges_created
    };
    let tracked = run(false);
    let unchecked = run(true);
    assert!(
        unchecked * 3 < tracked,
        "unchecked {unchecked} must be far below tracked {tracked}"
    );
}

/// §7.2: a spreadsheet edit costs work proportional to its cone, while the
/// baseline recalculates the reachable sheet.
#[test]
fn claim_sheet_edit_beats_full_recalc() {
    let rows = 128u32;
    let rt = Runtime::new();
    let inc = Sheet::new(&rt, 2, rows);
    let base = RecalcSheet::new(2, rows);
    for r in 1..=rows {
        let v = r.to_string();
        inc.set(&format!("A{r}"), &v).unwrap();
        base.set(&format!("A{r}"), &v).unwrap();
    }
    let f = format!("=SUM(A1:A{rows})");
    inc.set("B1", &f).unwrap();
    base.set("B1", &f).unwrap();
    let probe = "B1";
    inc.value(probe).unwrap();
    // Edit one source cell: the affected cone is {the cell, the sum}.
    let edit = format!("A{}", rows / 2);
    let before = rt.stats();
    inc.set(&edit, "1000").unwrap();
    inc.value(probe).unwrap();
    let inc_work = rt.stats().delta_since(&before).executions;
    base.reset_counters();
    base.set(&edit, "1000").unwrap();
    base.value(probe).unwrap();
    let recalc = base.evaluations();
    assert_eq!(inc.value(probe).unwrap(), base.value(probe).unwrap());
    assert!(
        inc_work * 10 < recalc,
        "incremental {inc_work} vs recalc {recalc}"
    );
}

/// §4.5: height-order scheduling never does more eager work than FIFO, and
/// strictly less on deep ladders.
#[test]
fn claim_topological_order_minimizes_reexecution() {
    let run = |mode: Scheduling, depth: usize| -> u64 {
        let rt = Runtime::builder().scheduling(mode).build();
        let src = rt.var(1i64);
        let mut prev = rt.memo_with("l0", Strategy::Eager, move |rt, &(): &()| src.get(rt));
        prev.call(&rt, ());
        for i in 1..depth {
            let below = prev.clone();
            let m = rt.memo_with(&format!("l{i}"), Strategy::Eager, move |rt, &(): &()| {
                below.call(rt, ()) + src.get(rt)
            });
            m.call(&rt, ());
            prev = m;
        }
        let before = rt.stats();
        src.set(&rt, 2);
        rt.propagate();
        rt.stats().delta_since(&before).executions
    };
    for depth in [16usize, 64] {
        let h = run(Scheduling::HeightOrder, depth);
        let f = run(Scheduling::Fifo, depth);
        assert_eq!(h, depth as u64, "height order: once per level");
        assert!(f > h, "depth {depth}: fifo {f} must exceed height {h}");
    }
}

/// §6.3: with partitioning, pending changes in other components do not
/// delay (or force work for) a query.
#[test]
fn claim_partitioning_isolates_queries() {
    let k = 64usize;
    let run = |partitioning: bool| -> u64 {
        let rt = Runtime::builder().partitioning(partitioning).build();
        let mut vars = Vec::new();
        let mut memos = Vec::new();
        for i in 0..k {
            let v = rt.var(i as i64);
            let m = rt.memo_with(&format!("m{i}"), Strategy::Eager, move |rt, &(): &()| {
                v.get(rt) + 1
            });
            m.call(&rt, ());
            vars.push(v);
            memos.push(m);
        }
        for v in vars.iter().take(k - 1) {
            v.set(&rt, 999);
        }
        let before = rt.stats();
        memos[k - 1].call(&rt, ());
        rt.stats().delta_since(&before).executions
    };
    assert_eq!(run(true), 0, "partitioned query forces nothing");
    assert!(run(false) >= (k - 1) as u64, "global set forces the world");
}
