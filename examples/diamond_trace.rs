//! Record a causal trace of the canonical diamond and query it live.
//!
//! Run with `cargo run --example diamond_trace [-- <out.jsonl>]` (default
//! output `TRACE_diamond.jsonl`). The written file replays through the
//! `alphonse-trace` CLI:
//!
//! ```text
//! alphonse-trace why top TRACE_diamond.jsonl
//! alphonse-trace waves   TRACE_diamond.jsonl
//! alphonse-trace waste   TRACE_diamond.jsonl
//! ```
//!
//! The diamond: `a` feeds `left = a/100` (a cutoff arm — its value rarely
//! changes) and `right = a*2`; both feed `top`. One write to `a` then shows
//! every causal ingredient: the originating write, fan-out dirtying with
//! cause links, a wasted re-execution stopped by cutoff on the left arm,
//! and the productive re-executions on the right.

use alphonse::trace::TraceConfig;
use alphonse::{Runtime, Strategy};

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "TRACE_diamond.jsonl".to_string());
    let active = TraceConfig::Jsonl(out.clone().into()).start()?;

    let rt = Runtime::new();
    rt.set_sink(Some(active.sink()));

    let a = rt.var_named("a", 10i64);
    let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
    let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let (l, r) = (left.clone(), right.clone());
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        l.call(rt, ()) + r.call(rt, ())
    });

    println!("initial: top = {}", top.call(&rt, ()));
    a.set(&rt, 20);
    rt.propagate();
    println!("after a = 20: top = {}", top.call(&rt, ()));

    // The provenance index rides along with every trace session; ask it
    // live before the file is even flushed.
    let prov = active.provenance().clone();
    let n = top.instance_node(&()).expect("top has been called");
    print!("\n{}", prov.why_report(n).expect("top was dirtied"));

    rt.set_sink(None);
    if let Some(msg) = active.finish(Some(&rt))? {
        println!("\n{msg}");
    }
    Ok(())
}
