//! Quickstart: incremental computation with the Alphonse runtime.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The paper's model (Section 2): a *mutator* performs arbitrary imperative
//! updates; the *Maintained portion* establishes a property over the data
//! with plain exhaustive code; the runtime keeps the property's results
//! consistent incrementally.

use alphonse::{Runtime, Strategy};

fn main() {
    let rt = Runtime::new();

    // Tracked storage: the paper's top-level abstract locations.
    let width = rt.var(3i64);
    let height = rt.var(4i64);
    let depth = rt.var(5i64);

    // A maintained property written exhaustively: no caching logic in
    // sight, just the computation.
    let volume = rt.memo("volume", move |rt, &(): &()| {
        width.get(rt) * height.get(rt) * depth.get(rt)
    });
    let vol = volume.clone();
    let report = rt.memo("report", move |rt, &(): &()| {
        format!("volume is {}", vol.call(rt, ()))
    });

    println!("first call:   {}", report.call(&rt, ()));
    println!("cached call:  {}", report.call(&rt, ()));

    // The mutator changes one input; only the affected computations re-run.
    width.set(&rt, 30);
    println!("after change: {}", report.call(&rt, ()));

    // Quiescence cutoff: a change that does not alter the volume stops the
    // propagation before `report`.
    let s0 = rt.stats();
    width.set(&rt, 5);
    depth.set(&rt, 30); // 5*4*30 == 30*4*5
    println!("after swap:   {}", report.call(&rt, ()));
    let d = rt.stats().delta_since(&s0);
    println!(
        "work for the swap: {} executions, {} cache hits (volume re-ran, report did not need to change its output)",
        d.executions, d.cache_hits
    );

    // Function caching with arguments — each argument vector is a separate
    // incremental instance (the paper's argument table).
    let scaled = rt.memo("scaled", move |rt, &k: &i64| width.get(rt) * k);
    for k in [1, 2, 3, 2, 1] {
        println!("scaled({k}) = {}", scaled.call(&rt, k));
    }
    println!("distinct instances: {}", scaled.instance_count());

    // EAGER evaluation updates during propagation, before the next call.
    let eager = rt.memo_with("eager_watch", Strategy::Eager, move |rt, &(): &()| {
        let v = height.get(rt);
        println!("  [eager_watch re-ran: height is now {v}]");
        v
    });
    eager.call(&rt, ());
    height.set(&rt, 40);
    println!("propagating…");
    rt.propagate(); // the eager node re-runs here, not at the call
    let before = rt.stats();
    eager.call(&rt, ());
    assert_eq!(rt.stats().delta_since(&before).executions, 0);
    println!("eager value was already up to date at call time");

    println!("\nfinal stats: {:?}", rt.stats());
}
