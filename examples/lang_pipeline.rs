//! The full Alphonse-L pipeline, end to end (paper Sections 3, 5, 6.1, 8).
//!
//! Run with `cargo run --example lang_pipeline`.
//!
//! Takes the paper's Algorithm 2 program, shows the source-to-source
//! transformation output (uniform and with the Section 6.1 optimization),
//! then executes a maintained-height program under both execution models
//! and compares the work.

use alphonse_lang::{compile, parse, transform, unparse, Interp, Mode, TransformOptions, Val};
use std::sync::Arc;

const ALG2: &str = r#"
    VAR b, p : INTEGER;

    (*CACHED*) PROCEDURE P2(n : INTEGER) : INTEGER =
    BEGIN RETURN n * n; END P2;

    PROCEDURE P1(c : INTEGER) : INTEGER =
    VAR a : INTEGER;
    BEGIN
        FOR i := 1 TO 10 DO
            a := i;
            p := P2(a + b + c);
        END;
        RETURN p;
    END P1;
"#;

const HEIGHT: &str = r#"
    TYPE Tree = OBJECT
        left, right : Tree;
    METHODS
        (*MAINTAINED*) height() : INTEGER := Height;
    END;
    TYPE TreeNil = Tree OBJECT
    OVERRIDES
        (*MAINTAINED*) height := HeightNil;
    END;
    PROCEDURE Height(t : Tree) : INTEGER =
    BEGIN RETURN MAX(t.left.height(), t.right.height()) + 1; END Height;
    PROCEDURE HeightNil(t : Tree) : INTEGER =
    BEGIN RETURN 0; END HeightNil;
    VAR nil : Tree;
    PROCEDURE Init() = BEGIN nil := NEW(TreeNil); END Init;
    PROCEDURE MakeNode(l, r : Tree) : Tree =
    VAR t : Tree;
    BEGIN t := NEW(Tree); t.left := l; t.right := r; RETURN t; END MakeNode;
    PROCEDURE Build(depth : INTEGER) : Tree =
    BEGIN
        IF depth = 0 THEN RETURN nil; END;
        RETURN MakeNode(Build(depth - 1), Build(depth - 1));
    END Build;
"#;

fn main() {
    println!("== the Algorithm 2 transformation ==");
    let module = parse(ALG2).unwrap();
    let program = compile(ALG2).unwrap();
    let (uniform, report_u) = transform(&module, &program, TransformOptions { optimize: false });
    println!("--- uniform instrumentation (Section 5) ---");
    print!("{}", unparse(&uniform));
    println!(
        "[{} instrumented operations: {} access, {} modify, {} call]",
        report_u.instrumented(),
        report_u.accesses,
        report_u.modifies,
        report_u.calls
    );
    let (optimized, report_o) = transform(&module, &program, TransformOptions { optimize: true });
    println!("\n--- after Section 6.1 check elimination ---");
    print!("{}", unparse(&optimized));
    println!(
        "[{} instrumented operations — {} checks removed statically]",
        report_o.instrumented(),
        report_u.instrumented() - report_o.instrumented()
    );

    println!("\n== one program, two execution models (Theorem 5.1) ==");
    let program = compile(HEIGHT).unwrap();
    for mode in [Mode::Conventional, Mode::Alphonse] {
        let interp = Interp::new(Arc::clone(&program), mode).unwrap();
        interp.call("Init", vec![]).unwrap();
        let root = interp.call("Build", vec![Val::Int(7)]).unwrap();
        let h1 = interp.call_method(root.clone(), "height", vec![]).unwrap();
        let s_before = interp.steps();
        // 50 mutate+query rounds.
        let nil = interp.global("nil").unwrap();
        let sub = interp.field(&root, "left").unwrap();
        let mut last = Val::Nil;
        for i in 0..50 {
            let v = if i % 2 == 0 { nil.clone() } else { sub.clone() };
            interp.set_field(&root, "left", v).unwrap();
            last = interp.call_method(root.clone(), "height", vec![]).unwrap();
        }
        println!(
            "{mode:?}: initial height {h1:?}, final {last:?}, interpreter steps for 50 updates: {}",
            interp.steps() - s_before
        );
        if let Some(rt) = interp.runtime() {
            println!(
                "          runtime: {} nodes, {} edges, {} executions, {} cache hits",
                rt.node_count(),
                rt.edge_count(),
                rt.stats().executions,
                rt.stats().cache_hits
            );
        }
    }
}
