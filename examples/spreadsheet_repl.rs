//! The paper's spreadsheet (Section 7.2) as a small REPL.
//!
//! Run a scripted demo:        `cargo run --example spreadsheet_repl`
//! Run interactively:          `cargo run --example spreadsheet_repl -- --repl`
//!
//! Commands: `A1 = 42`, `B2 = =A1*2+SUM(A1:A9)`, `print A1`, `show`,
//! `stats`, `quit`.
//!
//! Tracing: `ALPHONSE_TRACE=sheet.jsonl cargo run --example
//! spreadsheet_repl` records every runtime event for the `alphonse-trace`
//! CLI (`why B2 sheet.jsonl`, `waves`, `waste`); the full spec grammar
//! (`chrome[:path]`, `dot[:path]`, `hot[:K]`, …) works too.

use alphonse::trace::{ActiveTrace, TraceConfig};
use alphonse::Runtime;
use alphonse_sheet::{Addr, CellValue, Sheet};
use std::io::{self, BufRead, Write};

const W: u32 = 8;
const H: u32 = 12;

/// Starts the trace session requested via `ALPHONSE_TRACE`, if any.
fn trace_from_env() -> Option<ActiveTrace> {
    let config = match TraceConfig::from_env("sheet")? {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ALPHONSE_TRACE: {e}; tracing disabled");
            return None;
        }
    };
    match config.start() {
        Ok(active) => Some(active),
        Err(e) => {
            eprintln!("ALPHONSE_TRACE: {e}; tracing disabled");
            None
        }
    }
}

fn main() {
    let trace = trace_from_env();
    let rt = Runtime::new();
    if let Some(active) = &trace {
        rt.set_sink(Some(active.sink()));
    }
    let sheet = Sheet::new(&rt, W, H);
    let interactive = std::env::args().any(|a| a == "--repl");
    if interactive {
        println!(
            "alphonse spreadsheet ({W}x{H}) — `A1 = =B2+1`, `print A1`, `show`, `stats`, `quit`"
        );
        let stdin = io::stdin();
        loop {
            print!("> ");
            io::stdout().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if !exec(&rt, &sheet, line.trim()) {
                break;
            }
        }
    } else {
        let script = [
            "A1 = 100",
            "A2 = 250",
            "A3 = 400",
            "B1 = =A1+A2+A3",
            "B2 = =SUM(A1:A3)",
            "B3 = =B1-B2",
            "C1 = =B2*2",
            "show",
            "stats",
            "A2 = 1000",
            "print B2",
            "print C1",
            "stats",
            "D1 = =D1+1",
            "show",
        ];
        for cmd in script {
            println!("> {cmd}");
            exec(&rt, &sheet, cmd);
        }
    }
    if let Some(active) = trace {
        rt.set_sink(None);
        match active.finish(Some(&rt)) {
            Ok(Some(msg)) => eprintln!("ALPHONSE_TRACE: {msg}"),
            Ok(None) => {}
            Err(e) => eprintln!("ALPHONSE_TRACE: failed to flush trace: {e}"),
        }
    }
}

/// Executes one command; returns `false` on `quit`.
fn exec(rt: &Runtime, sheet: &Sheet, line: &str) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return true;
    }
    if line == "quit" || line == "exit" {
        return false;
    }
    if line == "show" {
        show(sheet);
        return true;
    }
    if line == "stats" {
        let s = rt.stats();
        println!(
            "  nodes={} edges={} executions={} cache_hits={} propagation_steps={}",
            rt.node_count(),
            rt.edge_count(),
            s.executions,
            s.cache_hits,
            s.propagation_steps
        );
        return true;
    }
    if let Some(addr) = line.strip_prefix("print ") {
        match sheet.value(addr.trim()) {
            Ok(v) => println!("  {addr} = {v}"),
            Err(e) => println!("  error: {e}"),
        }
        return true;
    }
    if let Some((addr, src)) = line.split_once('=') {
        // `A1 = =B2+1` — the first `=` separates address from entry.
        match sheet.set(addr.trim(), src.trim()) {
            Ok(()) => {}
            Err(e) => println!("  error: {e}"),
        }
        return true;
    }
    println!("  ? unrecognized command");
    true
}

fn show(sheet: &Sheet) {
    print!("      ");
    for col in 0..W {
        print!("{:>8}", Addr::new(col, 0).to_string().trim_end_matches('1'));
    }
    println!();
    for row in 0..H {
        print!("{:>4}  ", row + 1);
        for col in 0..W {
            match sheet.value_at(Addr::new(col, row)) {
                CellValue::Num(v) => print!("{v:>8}"),
                CellValue::Error => print!("{:>8}", "#ERROR"),
            }
        }
        println!();
    }
}
