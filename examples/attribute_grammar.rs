//! Attribute grammars on Alphonse (Section 7.1).
//!
//! Run with `cargo run --example attribute_grammar`.
//!
//! First the paper's let-expression grammar (Algorithms 6–9) under editing,
//! then a custom grammar (Knuth-style binary numbers) to show the toolkit
//! is not tied to one language.

use alphonse::Runtime;
use alphonse_agkit::{parse_let, AgEvaluator, AgTree, AttrVal, ExhaustiveAg, Grammar, LetLang};
use std::sync::Arc;

fn main() {
    let_language_demo();
    println!();
    binary_number_demo();
}

fn let_language_demo() {
    println!("== let-expression grammar (paper Algorithms 6-9) ==");
    let rt = Runtime::new();
    let (tree, lang) = LetLang::tree(&rt);
    let src = "let a = 10 in let b = a + 5 in a + b + (let a = 1 in a + b ni) ni ni";
    println!("program: {src}");
    let expr = parse_let(src).unwrap();
    let (root, outer_let) = expr.instantiate(&tree, &lang);
    let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
    println!("value  = {}", eval.syn(root, lang.value));
    println!(
        "attribute instances: {}, runtime executions: {}",
        eval.instance_count(),
        rt.stats().executions
    );

    // Edit the outer binding 10 -> 100 and re-demand: only the spine
    // through the environments re-attributes.
    let bound = tree.child(outer_let, 0).unwrap();
    let before = rt.stats();
    tree.set_terminal(bound, 0, AttrVal::Int(100));
    println!("after a=100: value = {}", eval.syn(root, lang.value));
    let d = rt.stats().delta_since(&before);
    println!("incremental re-attribution: {} executions", d.executions);

    let exhaustive = ExhaustiveAg::new(Arc::clone(&tree));
    exhaustive.syn(root, lang.value);
    println!(
        "exhaustive evaluation of the same tree: {} equation evaluations",
        exhaustive.evaluations()
    );
}

/// Binary numbers with a fractional point — the classic inherited-attribute
/// example: each digit's value depends on its position.
fn binary_number_demo() {
    println!("== custom grammar: binary numbers (inherited positions) ==");
    let mut g = Grammar::builder();
    // value*1000 (to stay integral), and inherited scale exponent.
    let value = g.synthesized("milli_value");
    let scale = g.inherited("scale");
    let digit = g.production("Digit", 0, 1); // terminal: 0 or 1
    let pair = g.production("Pair", 2, 0); // two digit groups side by side
    let number = g.production("Number", 1, 0); // root: integer part only

    g.syn_eq(digit, value, move |ctx| {
        let bit = ctx.terminal(0).as_int();
        let exp = ctx.inh(scale).as_int();
        // milli-value of bit * 2^exp (exp may be negative).
        let v = if exp >= 0 {
            bit * (1 << exp) * 1000
        } else {
            bit * 1000 / (1 << (-exp))
        };
        AttrVal::Int(v)
    });
    g.syn_eq(pair, value, move |ctx| {
        AttrVal::Int(ctx.child_syn(0, value).as_int() + ctx.child_syn(1, value).as_int())
    });
    g.syn_eq(number, value, move |ctx| ctx.child_syn(0, value));
    // Positions: the right sibling keeps the parent's scale; the left
    // sibling is one binary place higher.
    g.inh_eq(number, 0, scale, |_ctx| AttrVal::Int(0));
    g.inh_eq(pair, 0, scale, move |ctx| {
        AttrVal::Int(ctx.parent_inh(scale).as_int() + 1)
    });
    g.inh_eq(pair, 1, scale, move |ctx| ctx.parent_inh(scale));

    let rt = Runtime::new();
    let tree = AgTree::new(&rt, Arc::new(g.build()));
    // Build 1101 as Pair(Pair(Pair(1,1),0),1).
    let d = |bit: i64| tree.new_node(digit, vec![AttrVal::Int(bit)]);
    let p11 = tree.build(pair, vec![], &[d(1), d(1)]);
    let p110 = tree.build(pair, vec![], &[p11, d(0)]);
    let p1101 = tree.build(pair, vec![], &[p110, d(1)]);
    let root = tree.build(number, vec![], &[p1101]);
    let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
    println!("1101(2) = {} / 1000", eval.syn(root, value).as_int());
    assert_eq!(eval.syn(root, value).as_int(), 13_000);

    // Flip the most significant bit: 0101.
    let msb = tree.child(p11, 0).unwrap();
    tree.set_terminal(msb, 0, AttrVal::Int(0));
    println!("0101(2) = {} / 1000", eval.syn(root, value).as_int());
    assert_eq!(eval.syn(root, value).as_int(), 5_000);

    // Structural edit: graft the whole number one place left by pairing
    // with a fresh 1 on the right: 01011.
    let wider = tree.build(pair, vec![], &[p1101, d(1)]);
    tree.set_child(root, 0, Some(wider));
    println!("01011(2) = {} / 1000", eval.syn(root, value).as_int());
    assert_eq!(eval.syn(root, value).as_int(), 11_000);
    println!("total executions: {}", rt.stats().executions);
}
