//! Drive the canonical diamond through a burst of updates and expose the
//! always-on runtime metrics three ways.
//!
//! Run with `cargo run --example metrics_snapshot [-- <out.json>]`. It
//! prints the Prometheus exposition text to stdout, and when an output
//! path is given also writes the JSON snapshot there so it can be
//! inspected offline:
//!
//! ```text
//! cargo run --example metrics_snapshot -- METRICS_diamond.json
//! alphonse-trace metrics METRICS_diamond.json
//! ```
//!
//! The diamond: `a` feeds `left = a/100` (a cutoff arm) and `right = a*2`;
//! both feed `top`. Each write to `a` runs one propagation wave, so the
//! wave-latency histogram fills and the executed/wasted counters separate
//! productive work from cutoff-stopped recomputation.
//!
//! The example also installs the subsystem-tagged counting allocator, so
//! every surface carries the `mem` section: per-tag live/HWM bytes and the
//! derived bytes-per-node figure README walks through.

use alphonse::{mem, Runtime, Strategy};

#[global_allocator]
static ALLOC: mem::TrackingAlloc = mem::TrackingAlloc;

fn main() {
    let rt = Runtime::new();

    let a = rt.var_named("a", 10i64);
    let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
    let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let (l, r) = (left.clone(), right.clone());
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        l.call(rt, ()) + r.call(rt, ())
    });

    let mut value = top.call(&rt, ());
    for i in 1..=32i64 {
        a.set(&rt, 10 + i);
        rt.propagate();
        value = top.call(&rt, ());
    }
    eprintln!("final: top = {value}");

    // One snapshot, three surfaces: the typed struct for assertions in
    // code, Prometheus text for scrapers, JSON for `alphonse-trace
    // metrics`.
    let snap = rt.metrics_snapshot();
    let waves = snap
        .counters
        .iter()
        .find(|(n, _)| *n == "waves")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    eprintln!(
        "typed: waves={waves} wave_latency p50={}ns p99={}ns",
        snap.wave_latency_ns.percentile(0.50),
        snap.wave_latency_ns.percentile(0.99)
    );

    let nodes = snap
        .counters
        .iter()
        .find(|(n, _)| *n == "mem_nodes")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    eprintln!("memory (live bytes by subsystem, {nodes} nodes):");
    for tag in &snap.mem.tags {
        if tag.total_allocs == 0 {
            continue;
        }
        eprintln!(
            "  {:<12} live={}B (hwm {}B, {} allocs ever)",
            tag.tag, tag.live_bytes, tag.hwm_bytes, tag.total_allocs
        );
    }
    if nodes > 0 {
        eprintln!(
            "  bytes/node: {:.0}",
            snap.mem.live_bytes_total() as f64 / nodes as f64
        );
    }

    print!("{}", snap.render_prometheus());

    if let Some(out) = std::env::args().nth(1) {
        std::fs::write(&out, snap.to_json()).expect("write snapshot");
        eprintln!("wrote {out}");
    }
}
