//! Record a dynamic dependence trace for any Alphonse-L program.
//!
//! Run with `cargo run --example lang_trace -- <file.alf> <out.jsonl>`.
//!
//! The program is compiled and executed under a JSONL trace sink with a
//! generic mutation script: every procedure whose parameters are all
//! INTEGER is called for three rounds with shifting arguments, and every
//! INTEGER global is bumped between rounds so incremental propagation
//! fires. This is the same driver the `static_coverage` integration test
//! uses, exposed as a binary so CI can cross-validate the recorded trace
//! against the compiler's abstract graph through the real file formats:
//!
//! ```text
//! cargo run --example lang_trace -- prog.alf TRACE_prog.jsonl
//! alphonse-check graph --out GRAPH_prog.json prog.alf
//! alphonse-trace check-static TRACE_prog.jsonl GRAPH_prog.json
//! ```
//!
//! Runtime errors and panics (fuel exhaustion, F_ON_STACK aborts on
//! deliberately-divergent lint fixtures) are tolerated: the trace recorded
//! up to the failure is still a valid sample of the dynamic graph.

use alphonse::trace::TraceConfig;
use alphonse::Runtime;
use alphonse_lang::hir::Ty;
use alphonse_lang::{compile, Interp, Val};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [file, out] = args.as_slice() else {
        eprintln!("usage: lang_trace <file.alf> <out.jsonl>");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lang_trace: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let program = match compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("lang_trace: {file}: {e}");
            return ExitCode::from(1);
        }
    };
    let active = match TraceConfig::Jsonl(out.clone().into()).start() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lang_trace: {out}: {e}");
            return ExitCode::from(2);
        }
    };

    let rt = Runtime::new();
    rt.set_sink(Some(active.sink()));
    let interp = Interp::with_runtime(Arc::clone(&program), rt).expect("interp builds");
    // Divergent fixtures must fail fast, not hang CI.
    interp.set_fuel(200_000);

    let callable: Vec<(String, usize)> = program
        .procs
        .iter()
        .filter(|p| p.params.iter().all(|(_, t)| *t == Ty::Integer))
        .map(|p| (p.name.clone(), p.params.len()))
        .collect();
    let int_globals: Vec<String> = program
        .globals
        .iter()
        .filter(|g| g.ty == Ty::Integer)
        .map(|g| g.name.clone())
        .collect();

    // Zero-argument method names across all types: object-valued results
    // get each one tried (dynamic dispatch sorts out which apply), so
    // maintained methods like `height()` and `value()` run too.
    let mut method_names: Vec<String> = program
        .types
        .iter()
        .flat_map(|t| t.methods.iter())
        .filter(|m| m.params.is_empty())
        .map(|m| m.name.clone())
        .collect();
    method_names.sort();
    method_names.dedup();

    let mut calls = 0usize;
    let mut failures = 0usize;
    let mut pool: Vec<Val> = Vec::new();
    for round in 0..3i64 {
        for (name, arity) in &callable {
            let args: Vec<Val> = (0..*arity as i64).map(|i| Val::Int(round + i)).collect();
            // The runtime aborts F_ON_STACK violations with a panic by
            // design; the trace up to the abort is still valid.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| interp.call(name, args)));
            calls += 1;
            match outcome {
                Ok(Ok(v @ Val::Obj(_))) if pool.len() < 64 => pool.push(v),
                Ok(Ok(_)) => {}
                _ => failures += 1,
            }
        }
        for obj in pool.clone() {
            for m in &method_names {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    interp.call_method(obj.clone(), m, vec![])
                }));
                if let Ok(Ok(v @ Val::Obj(_))) = outcome {
                    if pool.len() < 64 {
                        pool.push(v);
                    }
                }
            }
        }
        for g in &int_globals {
            if let Ok(Val::Int(v)) = interp.global(g) {
                let _ = interp.set_global(g, Val::Int(v + 1));
            }
        }
    }
    drop(interp); // flushes the sink

    eprintln!("lang_trace: {file}: {calls} calls driven ({failures} failed), trace in {out}");
    ExitCode::SUCCESS
}
