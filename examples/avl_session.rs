//! The paper's self-balancing AVL tree (Section 7.3, Algorithm 11).
//!
//! Run with `cargo run --example avl_session`.
//!
//! Insertion and search are the plain unbalanced-BST algorithms; the
//! maintained `balance` method — ordinary exhaustive code plus a
//! `(*MAINTAINED*)` marker — performs the rotations incrementally when
//! called before a search. The demo contrasts the incremental work against
//! a textbook AVL and a full-rebuild estimate.

use alphonse::Runtime;
use alphonse_trees::{ClassicAvl, MaintainedAvl};

fn main() {
    let rt = Runtime::new();
    let mut avl = MaintainedAvl::new(&rt);
    let mut classic = ClassicAvl::new();

    println!("== adversarial sorted insertions (0..512) ==");
    for k in 0..512 {
        avl.insert(k);
        avl.rebalance();
        classic.insert(k);
    }
    println!(
        "maintained: height {} for {} keys (AVL: {}), runtime executions {}",
        avl.height(),
        avl.len(),
        avl.is_avl(),
        rt.stats().executions
    );
    println!(
        "classic:    visits {}, rotations {}",
        classic.visits(),
        classic.rotations()
    );

    println!("\n== per-insert incremental cost ==");
    for k in [1000i64, 1001, 1002, 1003] {
        let before = rt.stats();
        avl.insert(k);
        avl.rebalance();
        let d = rt.stats().delta_since(&before);
        println!(
            "insert {k}: {} balance/height re-executions, {} cache hits (tree height {})",
            d.executions,
            d.cache_hits,
            avl.height()
        );
    }

    println!("\n== off-line usage: batch 256 inserts, one rebalance ==");
    let before = rt.stats();
    for k in 2000..2256 {
        avl.insert(k);
    }
    avl.rebalance();
    let d = rt.stats().delta_since(&before);
    println!(
        "batched: {} re-executions for 256 inserts ({:.1} per insert), AVL: {}",
        d.executions,
        d.executions as f64 / 256.0,
        avl.is_avl()
    );

    println!("\n== searches are plain BST searches ==");
    for k in [0, 511, 1001, 2100, 9999] {
        println!("contains({k}) = {}", avl.contains(k));
    }

    assert!(avl.is_avl() && avl.is_bst());
    println!("\ninvariants hold; final stats: {:?}", rt.stats());
}
