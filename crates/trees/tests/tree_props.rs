//! Property-based testing of the paper's tree examples against oracles.

use alphonse::Runtime;
use alphonse_trees::{ClassicAvl, MaintainedAvl, MaintainedTree, NodeRef};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
enum TreeOp {
    Insert(i64),
    Remove(i64),
    Rebalance,
    Contains(i64),
}

fn op_strategy() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        3 => (-50i64..50).prop_map(TreeOp::Insert),
        2 => (-50i64..50).prop_map(TreeOp::Remove),
        1 => Just(TreeOp::Rebalance),
        2 => (-50i64..50).prop_map(TreeOp::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The maintained AVL agrees with a BTreeSet oracle and with the
    /// textbook AVL under arbitrary operation sequences, and its invariants
    /// hold at every rebalance point.
    #[test]
    fn maintained_avl_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        let mut classic = ClassicAvl::new();
        let mut oracle = BTreeSet::new();
        for op in ops {
            match op {
                TreeOp::Insert(k) => {
                    let expect = oracle.insert(k);
                    prop_assert_eq!(avl.insert(k), expect);
                    prop_assert_eq!(classic.insert(k), expect);
                }
                TreeOp::Remove(k) => {
                    let expect = oracle.remove(&k);
                    prop_assert_eq!(avl.remove(k), expect);
                    prop_assert_eq!(classic.remove(k), expect);
                }
                TreeOp::Rebalance => {
                    avl.rebalance();
                    prop_assert!(avl.is_avl());
                    prop_assert!(avl.is_bst() || avl.len() < 2);
                }
                TreeOp::Contains(k) => {
                    prop_assert_eq!(avl.contains(k), oracle.contains(&k));
                    prop_assert_eq!(classic.contains(k), oracle.contains(&k));
                }
            }
            prop_assert_eq!(avl.len(), oracle.len());
        }
        avl.rebalance();
        prop_assert!(avl.is_avl());
        let expect_keys: Vec<i64> = oracle.into_iter().collect();
        prop_assert_eq!(avl.keys(), expect_keys.clone());
        prop_assert_eq!(classic.keys(), expect_keys);
    }

    /// Maintained heights always agree with the exhaustive recomputation,
    /// across arbitrary subtree relinks.
    #[test]
    fn maintained_height_matches_exhaustive(
        sizes in proptest::collection::vec(1usize..40, 1..6),
        relinks in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..20),
    ) {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let store = tree.store();
        // A forest of balanced trees whose roots we relink among each other.
        let mut roots: Vec<NodeRef> = sizes
            .iter()
            .map(|&n| store.build_balanced(&(0..n as i64).collect::<Vec<_>>()))
            .collect();
        prop_assert_eq!(tree.height(roots[0]), store.height_exhaustive(roots[0]));
        for (a, b, left_side) in relinks {
            let target = roots[a as usize % roots.len()];
            let donor = roots[b as usize % roots.len()];
            if target == donor || target.is_nil() {
                continue;
            }
            // Graft donor under target (may create shared structure between
            // forest entries, which is fine for height computation as long
            // as no cycle forms: grafting an *earlier-created* root under a
            // later one can cycle, so only graft strictly newer trees).
            if donor.index() <= target.index() {
                continue;
            }
            if left_side {
                store.set_left(target, donor);
            } else {
                store.set_right(target, donor);
            }
            roots.retain(|r| *r != donor);
            for &r in &roots {
                prop_assert_eq!(tree.height(r), store.height_exhaustive(r));
            }
        }
    }
}
