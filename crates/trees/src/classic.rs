//! Baseline: a textbook AVL tree with hand-written incremental rebalancing.
//!
//! This is the "complex algorithm … typically used to avoid the redundant
//! computation" that the paper's introduction contrasts with Alphonse
//! specifications, and the comparator for experiment E7. It stores heights
//! in the nodes and rebalances along the insertion/deletion path, counting
//! the nodes it touches so benches can compare work against the maintained
//! version.

use std::cell::Cell;
use std::fmt;

const NIL: usize = usize::MAX;

struct Node {
    key: i64,
    left: usize,
    right: usize,
    height: i64,
}

/// A conventional AVL tree (Adelson-Velskii & Landis 1962, as in the
/// paper's references) used as the hand-coded baseline.
///
/// # Example
///
/// ```
/// use alphonse_trees::ClassicAvl;
/// let mut t = ClassicAvl::new();
/// for k in 0..100 { t.insert(k); }
/// assert!(t.is_avl());
/// assert!(t.contains(99));
/// assert!(!t.contains(100));
/// ```
pub struct ClassicAvl {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    /// Nodes visited by all operations so far (work counter).
    visits: Cell<u64>,
    /// Rotations performed so far.
    rotations: Cell<u64>,
}

impl fmt::Debug for ClassicAvl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassicAvl")
            .field("len", &self.len)
            .finish()
    }
}

impl Default for ClassicAvl {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassicAvl {
    /// Creates an empty tree.
    pub fn new() -> Self {
        ClassicAvl {
            nodes: Vec::new(),
            root: NIL,
            len: 0,
            visits: Cell::new(0),
            rotations: Cell::new(0),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total nodes visited by all operations (machine-independent work).
    pub fn visits(&self) -> u64 {
        self.visits.get()
    }

    /// Total rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations.get()
    }

    /// Resets the work counters.
    pub fn reset_counters(&self) {
        self.visits.set(0);
        self.rotations.set(0);
    }

    fn visit(&self) {
        self.visits.set(self.visits.get() + 1);
    }

    fn h(&self, n: usize) -> i64 {
        if n == NIL {
            0
        } else {
            self.nodes[n].height
        }
    }

    fn update_height(&mut self, n: usize) {
        let h = 1 + self.h(self.nodes[n].left).max(self.h(self.nodes[n].right));
        self.nodes[n].height = h;
    }

    fn bf(&self, n: usize) -> i64 {
        self.h(self.nodes[n].left) - self.h(self.nodes[n].right)
    }

    fn rotate_right(&mut self, t: usize) -> usize {
        self.rotations.set(self.rotations.get() + 1);
        let s = self.nodes[t].left;
        let b = self.nodes[s].right;
        self.nodes[s].right = t;
        self.nodes[t].left = b;
        self.update_height(t);
        self.update_height(s);
        s
    }

    fn rotate_left(&mut self, t: usize) -> usize {
        self.rotations.set(self.rotations.get() + 1);
        let s = self.nodes[t].right;
        let b = self.nodes[s].left;
        self.nodes[s].left = t;
        self.nodes[t].right = b;
        self.update_height(t);
        self.update_height(s);
        s
    }

    fn fixup(&mut self, n: usize) -> usize {
        self.update_height(n);
        let b = self.bf(n);
        if b > 1 {
            if self.bf(self.nodes[n].left) < 0 {
                self.nodes[n].left = self.rotate_left(self.nodes[n].left);
            }
            self.rotate_right(n)
        } else if b < -1 {
            if self.bf(self.nodes[n].right) > 0 {
                self.nodes[n].right = self.rotate_right(self.nodes[n].right);
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    /// Inserts `key`; returns `false` on duplicates.
    pub fn insert(&mut self, key: i64) -> bool {
        let (root, inserted) = self.insert_rec(self.root, key);
        self.root = root;
        if inserted {
            self.len += 1;
        }
        inserted
    }

    fn insert_rec(&mut self, n: usize, key: i64) -> (usize, bool) {
        if n == NIL {
            self.nodes.push(Node {
                key,
                left: NIL,
                right: NIL,
                height: 1,
            });
            return (self.nodes.len() - 1, true);
        }
        self.visit();
        let k = self.nodes[n].key;
        if key == k {
            return (n, false);
        }
        let inserted;
        if key < k {
            let (nl, ins) = self.insert_rec(self.nodes[n].left, key);
            self.nodes[n].left = nl;
            inserted = ins;
        } else {
            let (nr, ins) = self.insert_rec(self.nodes[n].right, key);
            self.nodes[n].right = nr;
            inserted = ins;
        }
        if inserted {
            (self.fixup(n), true)
        } else {
            (n, false)
        }
    }

    /// Removes `key`; returns `false` if absent.
    pub fn remove(&mut self, key: i64) -> bool {
        let (root, removed) = self.remove_rec(self.root, key);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(&mut self, n: usize, key: i64) -> (usize, bool) {
        if n == NIL {
            return (NIL, false);
        }
        self.visit();
        let k = self.nodes[n].key;
        let removed;
        if key < k {
            let (nl, r) = self.remove_rec(self.nodes[n].left, key);
            self.nodes[n].left = nl;
            removed = r;
        } else if key > k {
            let (nr, r) = self.remove_rec(self.nodes[n].right, key);
            self.nodes[n].right = nr;
            removed = r;
        } else {
            let (l, r) = (self.nodes[n].left, self.nodes[n].right);
            if l == NIL {
                return (r, true);
            }
            if r == NIL {
                return (l, true);
            }
            let mut succ = r;
            while self.nodes[succ].left != NIL {
                self.visit();
                succ = self.nodes[succ].left;
            }
            self.nodes[n].key = self.nodes[succ].key;
            let sk = self.nodes[succ].key;
            let (nr, _) = self.remove_rec(r, sk);
            self.nodes[n].right = nr;
            removed = true;
        }
        if removed {
            (self.fixup(n), true)
        } else {
            (n, false)
        }
    }

    /// Searches for `key`.
    pub fn contains(&self, key: i64) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            self.visit();
            let k = self.nodes[cur].key;
            if key == k {
                return true;
            }
            cur = if key < k {
                self.nodes[cur].left
            } else {
                self.nodes[cur].right
            };
        }
        false
    }

    /// Sorted key sequence.
    pub fn keys(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        self.inorder(self.root, &mut out);
        out
    }

    fn inorder(&self, n: usize, out: &mut Vec<i64>) {
        if n == NIL {
            return;
        }
        self.inorder(self.nodes[n].left, out);
        out.push(self.nodes[n].key);
        self.inorder(self.nodes[n].right, out);
    }

    /// Exhaustive validation of the AVL property.
    pub fn is_avl(&self) -> bool {
        fn check(t: &ClassicAvl, n: usize) -> Option<i64> {
            if n == NIL {
                return Some(0);
            }
            let l = check(t, t.nodes[n].left)?;
            let r = check(t, t.nodes[n].right)?;
            ((l - r).abs() <= 1 && t.nodes[n].height == l.max(r) + 1).then_some(l.max(r) + 1)
        }
        check(self, self.root).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_inserts_stay_balanced() {
        let mut t = ClassicAvl::new();
        for k in 0..1000 {
            assert!(t.insert(k));
        }
        assert!(t.is_avl());
        assert_eq!(t.len(), 1000);
        assert_eq!(t.keys(), (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_rejected() {
        let mut t = ClassicAvl::new();
        assert!(t.insert(1));
        assert!(!t.insert(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn removals_keep_balance() {
        let mut t = ClassicAvl::new();
        for k in 0..100 {
            t.insert(k);
        }
        for k in (0..100).step_by(2) {
            assert!(t.remove(k));
        }
        assert!(!t.remove(0));
        assert!(t.is_avl());
        assert_eq!(t.keys(), (1..100).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn contains_and_counters() {
        let mut t = ClassicAvl::new();
        for k in 0..64 {
            t.insert(k);
        }
        t.reset_counters();
        assert!(t.contains(63));
        assert!(!t.contains(-1));
        // Balanced: a search visits at most ~log2(64)+1 nodes.
        assert!(t.visits() <= 16, "visits {}", t.visits());
    }

    #[test]
    fn empty_tree() {
        let t = ClassicAvl::new();
        assert!(t.is_empty());
        assert!(t.is_avl());
        assert!(!t.contains(0));
        assert!(t.keys().is_empty());
    }
}
