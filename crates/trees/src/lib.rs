//! Tree data structures from the Alphonse paper, plus baselines.
//!
//! Two Alphonse programs and three conventional comparators:
//!
//! * [`MaintainedTree`] — Algorithm 1: per-node subtree heights maintained
//!   by a `(*MAINTAINED*)` method (Section 3.4).
//! * [`MaintainedAvl`] — Algorithm 11: a self-balancing AVL tree whose
//!   `balance` method performs rotations as tracked side effects
//!   (Section 7.3).
//! * [`ExhaustiveTree`] — conventional execution: heights recomputed from
//!   scratch at every query.
//! * [`HandcodedTree`] — Section 9's "ambitious programmer" comparison:
//!   cached heights updated along parent pointers on every change.
//! * [`ClassicAvl`] — a textbook AVL tree with hand-written rebalancing.
//!
//! These drive experiments E1, E5 and E7 (see the repository's DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod avl;
mod baseline;
mod classic;
mod maintained;

pub use arena::{NodeRef, TreeStore};
pub use avl::MaintainedAvl;
pub use baseline::{ExhaustiveTree, HandcodedTree};
pub use classic::ClassicAvl;
pub use maintained::MaintainedTree;
