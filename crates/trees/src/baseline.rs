//! Baselines for the maintained-height experiment (E1/E2).
//!
//! * [`ExhaustiveTree`] — the "conventional execution" of Algorithm 1: every
//!   height query runs the full recursive pass, so a query after each of m
//!   changes costs O(m·n).
//! * [`HandcodedTree`] — Section 9's "ambitious programmer": a height field
//!   in each node plus parent pointers; each child-pointer change walks
//!   toward the root updating cached heights. Matches what Alphonse derives
//!   automatically, minus batching.

use std::cell::Cell;
use std::fmt;

const NIL: usize = usize::MAX;

/// Plain binary tree: heights recomputed exhaustively on every query.
///
/// # Example
///
/// ```
/// use alphonse_trees::ExhaustiveTree;
/// let mut t = ExhaustiveTree::new();
/// let l = t.new_leaf();
/// let r = t.new_leaf();
/// let root = t.new_node(l, r);
/// assert_eq!(t.height(root), 2);
/// ```
pub struct ExhaustiveTree {
    left: Vec<usize>,
    right: Vec<usize>,
    visits: Cell<u64>,
}

impl fmt::Debug for ExhaustiveTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExhaustiveTree")
            .field("nodes", &self.left.len())
            .finish()
    }
}

impl Default for ExhaustiveTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ExhaustiveTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        ExhaustiveTree {
            left: Vec::new(),
            right: Vec::new(),
            visits: Cell::new(0),
        }
    }

    /// Allocates a node with the given children (`usize::MAX` = none).
    pub fn new_node(&mut self, left: usize, right: usize) -> usize {
        self.left.push(left);
        self.right.push(right);
        self.left.len() - 1
    }

    /// Allocates a leaf.
    pub fn new_leaf(&mut self) -> usize {
        self.new_node(NIL, NIL)
    }

    /// Re-links a node's left child.
    pub fn set_left(&mut self, n: usize, child: usize) {
        self.left[n] = child;
    }

    /// Re-links a node's right child.
    pub fn set_right(&mut self, n: usize, child: usize) {
        self.right[n] = child;
    }

    /// Exhaustive height query: O(|subtree|) every time.
    pub fn height(&self, n: usize) -> i64 {
        if n == NIL {
            return 0;
        }
        self.visits.set(self.visits.get() + 1);
        1 + self.height(self.left[n]).max(self.height(self.right[n]))
    }

    /// Nodes visited by height queries so far.
    pub fn visits(&self) -> u64 {
        self.visits.get()
    }

    /// Resets the visit counter.
    pub fn reset_counters(&self) {
        self.visits.set(0);
    }

    /// Builds a perfectly balanced tree with `n` nodes; returns its root
    /// (`usize::MAX` when `n == 0`).
    pub fn build_balanced(&mut self, n: usize) -> usize {
        if n == 0 {
            return NIL;
        }
        let half = (n - 1) / 2;
        let l = self.build_balanced(half);
        let r = self.build_balanced(n - 1 - half);
        self.new_node(l, r)
    }
}

/// Hand-coded incremental heights: cached height per node, parent pointers,
/// path-to-root updates on every change (Section 9's comparison program).
///
/// # Example
///
/// ```
/// use alphonse_trees::HandcodedTree;
/// let mut t = HandcodedTree::new();
/// let root = t.build_balanced(15);
/// assert_eq!(t.height(root), 4);
/// ```
pub struct HandcodedTree {
    left: Vec<usize>,
    right: Vec<usize>,
    parent: Vec<usize>,
    height: Vec<i64>,
    updates: Cell<u64>,
}

impl fmt::Debug for HandcodedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandcodedTree")
            .field("nodes", &self.left.len())
            .finish()
    }
}

impl Default for HandcodedTree {
    fn default() -> Self {
        Self::new()
    }
}

impl HandcodedTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        HandcodedTree {
            left: Vec::new(),
            right: Vec::new(),
            parent: Vec::new(),
            height: Vec::new(),
            updates: Cell::new(0),
        }
    }

    fn h(&self, n: usize) -> i64 {
        if n == NIL {
            0
        } else {
            self.height[n]
        }
    }

    /// Allocates a node over the given children, adopting them.
    pub fn new_node(&mut self, left: usize, right: usize) -> usize {
        let id = self.left.len();
        self.left.push(left);
        self.right.push(right);
        self.parent.push(NIL);
        self.height.push(1 + self.h(left).max(self.h(right)));
        if left != NIL {
            self.parent[left] = id;
        }
        if right != NIL {
            self.parent[right] = id;
        }
        id
    }

    /// Allocates a leaf.
    pub fn new_leaf(&mut self) -> usize {
        self.new_node(NIL, NIL)
    }

    /// Re-links a child and updates cached heights on the path to the root,
    /// stopping as soon as a height is unchanged (the hand-coded cutoff).
    pub fn set_left(&mut self, n: usize, child: usize) {
        self.left[n] = child;
        if child != NIL {
            self.parent[child] = n;
        }
        self.update_upward(n);
    }

    /// Re-links a right child (see [`HandcodedTree::set_left`]).
    pub fn set_right(&mut self, n: usize, child: usize) {
        self.right[n] = child;
        if child != NIL {
            self.parent[child] = n;
        }
        self.update_upward(n);
    }

    fn update_upward(&mut self, mut n: usize) {
        while n != NIL {
            self.updates.set(self.updates.get() + 1);
            let h = 1 + self.h(self.left[n]).max(self.h(self.right[n]));
            if h == self.height[n] {
                break;
            }
            self.height[n] = h;
            n = self.parent[n];
        }
    }

    /// O(1) height query from the cache.
    pub fn height(&self, n: usize) -> i64 {
        self.h(n)
    }

    /// Per-node update steps performed so far.
    pub fn updates(&self) -> u64 {
        self.updates.get()
    }

    /// Resets the update counter.
    pub fn reset_counters(&self) {
        self.updates.set(0);
    }

    /// Builds a perfectly balanced tree with `n` nodes.
    pub fn build_balanced(&mut self, n: usize) -> usize {
        if n == 0 {
            return NIL;
        }
        let half = (n - 1) / 2;
        let l = self.build_balanced(half);
        let r = self.build_balanced(n - 1 - half);
        self.new_node(l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_height_counts_visits() {
        let mut t = ExhaustiveTree::new();
        let root = t.build_balanced(15);
        t.reset_counters();
        assert_eq!(t.height(root), 4);
        assert_eq!(t.visits(), 15, "full pass visits every node");
        assert_eq!(t.height(root), 4);
        assert_eq!(t.visits(), 30, "every query repeats the pass");
    }

    #[test]
    fn handcoded_matches_exhaustive() {
        let mut e = ExhaustiveTree::new();
        let re = e.build_balanced(31);
        let mut h = HandcodedTree::new();
        let rh = h.build_balanced(31);
        assert_eq!(e.height(re), h.height(rh));
    }

    #[test]
    fn handcoded_updates_along_path_only() {
        let mut t = HandcodedTree::new();
        let root = t.build_balanced(127);
        // Find the leftmost leaf.
        let mut leaf = root;
        while t.left[leaf] != NIL {
            leaf = t.left[leaf];
        }
        t.reset_counters();
        let chain_bottom = t.new_leaf();
        let chain_top = t.new_node(chain_bottom, NIL);
        t.set_left(leaf, chain_top);
        assert_eq!(t.height(root), 9);
        assert!(
            t.updates() <= 8,
            "path-length updates expected, got {}",
            t.updates()
        );
    }

    #[test]
    fn handcoded_cutoff_stops_early() {
        let mut t = HandcodedTree::new();
        let root = t.build_balanced(127);
        // Swap a leaf for another leaf: heights unchanged anywhere.
        let mut leaf = root;
        while t.left[leaf] != NIL {
            leaf = t.left[leaf];
        }
        let parent_of_leaf = t.parent[leaf];
        t.reset_counters();
        let fresh = t.new_leaf();
        t.set_left(parent_of_leaf, fresh);
        assert!(t.updates() <= 1, "unchanged height stops at one step");
        assert_eq!(t.height(root), 7);
    }

    #[test]
    fn relinking_to_nil_shrinks_height() {
        let mut t = HandcodedTree::new();
        let a = t.new_leaf();
        let b = t.new_node(a, NIL);
        let c = t.new_node(b, NIL);
        assert_eq!(t.height(c), 3);
        t.set_left(c, NIL);
        assert_eq!(t.height(c), 1);
    }
}
