//! Algorithm 11: self-balancing AVL trees as an Alphonse program.
//!
//! Section 7.3 of the paper shows a striking use of maintained methods with
//! side effects: `balance` recursively balances both children, then performs
//! AVL rotations *by writing the tracked child pointers*, and returns the
//! (possibly new) subtree root. Because the method is maintained, re-calling
//! `balance` on the root after a batch of BST mutations only re-executes the
//! instances whose subtrees actually changed — insertion/lookup/deletion
//! remain the plain unbalanced-BST algorithms, and the tree is both an
//! on-line and an off-line balancer.

use crate::arena::{NodeRef, TreeStore};
use alphonse::{Memo, Runtime};
use std::fmt;
use std::sync::Arc;

/// A self-balancing binary search tree in the style of the paper's
/// Algorithm 11.
///
/// The mutator performs ordinary BST insertions and deletions; calling
/// [`MaintainedAvl::rebalance`] (the paper says "prior to performing a
/// search operation") restores the AVL shape incrementally.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// use alphonse_trees::MaintainedAvl;
///
/// let rt = Runtime::new();
/// let mut avl = MaintainedAvl::new(&rt);
/// for k in 0..100 {
///     avl.insert(k); // sorted insertion: worst case for a plain BST
/// }
/// avl.rebalance();
/// assert!(avl.is_avl());
/// assert!(avl.contains(42));
/// assert!(!avl.contains(1000));
/// ```
pub struct MaintainedAvl {
    store: Arc<TreeStore>,
    height: Memo<NodeRef, i64>,
    balance: Memo<NodeRef, NodeRef>,
    root: NodeRef,
    len: usize,
}

impl fmt::Debug for MaintainedAvl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintainedAvl")
            .field("len", &self.len)
            .field("root", &self.root)
            .finish()
    }
}

impl MaintainedAvl {
    /// Creates an empty tree bound to `rt`.
    pub fn new(rt: &Runtime) -> Self {
        let store = TreeStore::new(rt);
        let s = Arc::clone(&store);
        let height = rt.memo_recursive("avl_height", move |rt, me, &t: &NodeRef| {
            if t.is_nil() {
                return 0i64;
            }
            let l = me.call(rt, s.left(t));
            let r = me.call(rt, s.right(t));
            l.max(r) + 1
        });
        let s = Arc::clone(&store);
        let h = height.clone();
        let balance = rt.memo_recursive("avl_balance", move |rt, me, &t: &NodeRef| {
            if t.is_nil() {
                return t; // BalanceNil
            }
            // Balance both subtrees first (cached if untouched).
            let bl = me.call(rt, s.left(t));
            s.set_left(t, bl);
            let br = me.call(rt, s.right(t));
            s.set_right(t, br);
            let diff = |rt: &Runtime, n: NodeRef| -> i64 {
                h.call(rt, s.left(n)) - h.call(rt, s.right(n))
            };
            let d = diff(rt, t);
            if d > 1 {
                // Left-heavy. A left-right shape needs the inner rotation
                // first (the paper's `RotateLeft(t.left)` arm).
                if diff(rt, s.left(t)) < 0 {
                    let new_l = rotate_left(&s, s.left(t));
                    s.set_left(t, new_l);
                }
                let new_t = rotate_right(&s, t);
                // `RotateRight(t).balance()`: the rotation may leave the
                // demoted node (now a child) unbalanced when changes were
                // batched, so balance the new root recursively.
                me.call(rt, new_t)
            } else if d < -1 {
                if diff(rt, s.right(t)) > 0 {
                    let new_r = rotate_right(&s, s.right(t));
                    s.set_right(t, new_r);
                }
                let new_t = rotate_left(&s, t);
                me.call(rt, new_t)
            } else {
                t
            }
        });
        MaintainedAvl {
            store,
            height,
            balance,
            root: NodeRef::NIL,
            len: 0,
        }
    }

    /// The underlying node storage.
    pub fn store(&self) -> &Arc<TreeStore> {
        &self.store
    }

    /// Current root (valid after the last mutation or rebalance).
    pub fn root(&self) -> NodeRef {
        self.root
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maintained height of the current root.
    pub fn height(&self) -> i64 {
        self.height.call(self.store.runtime(), self.root)
    }

    /// Plain BST insertion (the mutator side — unchanged from an unbalanced
    /// tree, as the paper emphasizes). Duplicate keys are ignored.
    /// Returns `true` if the key was inserted.
    pub fn insert(&mut self, key: i64) -> bool {
        if self.root.is_nil() {
            self.root = self.store.new_leaf(key);
            self.len = 1;
            return true;
        }
        let mut cur = self.root;
        loop {
            let k = self.store.key(cur);
            if key == k {
                return false;
            }
            if key < k {
                let l = self.store.left(cur);
                if l.is_nil() {
                    let leaf = self.store.new_leaf(key);
                    self.store.set_left(cur, leaf);
                    self.len += 1;
                    return true;
                }
                cur = l;
            } else {
                let r = self.store.right(cur);
                if r.is_nil() {
                    let leaf = self.store.new_leaf(key);
                    self.store.set_right(cur, leaf);
                    self.len += 1;
                    return true;
                }
                cur = r;
            }
        }
    }

    /// Inserts many keys in one write transaction — the batched form of
    /// [`MaintainedAvl::insert`]. The BST descent reads child links through
    /// the transaction (read-your-writes), so later keys see the leaves
    /// linked by earlier ones, but the tracked link writes commit as a
    /// single deduplicated dirty frontier. Returns the number of keys
    /// actually inserted (duplicates are ignored, as in `insert`).
    pub fn insert_all(&mut self, keys: impl IntoIterator<Item = i64>) -> usize {
        let store = Arc::clone(&self.store);
        let rt = store.runtime().clone();
        let mut inserted = 0usize;
        let mut root = self.root;
        rt.batch(|tx| {
            'keys: for key in keys {
                if root.is_nil() {
                    root = store.new_leaf(key);
                    inserted += 1;
                    continue;
                }
                let mut cur = root;
                loop {
                    let k = store.key_in(tx, cur);
                    if key == k {
                        continue 'keys;
                    }
                    if key < k {
                        let l = store.left_in(tx, cur);
                        if l.is_nil() {
                            let leaf = store.new_leaf(key);
                            store.set_left_in(tx, cur, leaf);
                            inserted += 1;
                            continue 'keys;
                        }
                        cur = l;
                    } else {
                        let r = store.right_in(tx, cur);
                        if r.is_nil() {
                            let leaf = store.new_leaf(key);
                            store.set_right_in(tx, cur, leaf);
                            inserted += 1;
                            continue 'keys;
                        }
                        cur = r;
                    }
                }
            }
        });
        self.root = root;
        self.len += inserted;
        inserted
    }

    /// Plain BST deletion. Returns `true` if the key was present.
    pub fn remove(&mut self, key: i64) -> bool {
        let (removed, new_root) = remove_rec(&self.store, self.root, key);
        self.root = new_root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Re-establishes the AVL property incrementally by calling the
    /// maintained `balance` method on the root, exactly as the paper
    /// prescribes before search operations.
    pub fn rebalance(&mut self) {
        self.root = self.balance.call(self.store.runtime(), self.root);
    }

    /// Rebalances, then performs a plain BST search — O(log n) thanks to the
    /// maintained balance.
    pub fn contains(&mut self, key: i64) -> bool {
        self.rebalance();
        let mut cur = self.root;
        while !cur.is_nil() {
            let k = self.store.key(cur);
            if key == k {
                return true;
            }
            cur = if key < k {
                self.store.left(cur)
            } else {
                self.store.right(cur)
            };
        }
        false
    }

    /// Sorted key sequence (for validation).
    pub fn keys(&self) -> Vec<i64> {
        self.store.inorder(self.root)
    }

    /// Checks the AVL balance property exhaustively (validation only).
    pub fn is_avl(&self) -> bool {
        fn check(store: &TreeStore, n: NodeRef) -> Option<i64> {
            if n.is_nil() {
                return Some(0);
            }
            let l = check(store, store.left(n))?;
            let r = check(store, store.right(n))?;
            ((l - r).abs() <= 1).then_some(l.max(r) + 1)
        }
        check(&self.store, self.root).is_some()
    }

    /// Checks the binary-search-tree ordering property (validation only).
    pub fn is_bst(&self) -> bool {
        let keys = self.keys();
        keys.windows(2).all(|w| w[0] < w[1])
    }

    /// The balance memo, exposed for work-accounting benchmarks.
    pub fn balance_memo(&self) -> &Memo<NodeRef, NodeRef> {
        &self.balance
    }
}

/// `RotateRight` from Algorithm 11: `s := t.left; b := s.right;
/// s.right := t; t.left := b; RETURN s`.
fn rotate_right(store: &TreeStore, t: NodeRef) -> NodeRef {
    let s = store.left(t);
    let b = store.right(s);
    store.set_right(s, t);
    store.set_left(t, b);
    s
}

/// `RotateLeft` from Algorithm 11 (mirror image).
fn rotate_left(store: &TreeStore, t: NodeRef) -> NodeRef {
    let s = store.right(t);
    let b = store.left(s);
    store.set_left(s, t);
    store.set_right(t, b);
    s
}

/// Standard BST removal returning (removed?, new subtree root).
fn remove_rec(store: &TreeStore, n: NodeRef, key: i64) -> (bool, NodeRef) {
    if n.is_nil() {
        return (false, n);
    }
    let k = store.key(n);
    if key < k {
        let (removed, nl) = remove_rec(store, store.left(n), key);
        if removed {
            store.set_left(n, nl);
        }
        (removed, n)
    } else if key > k {
        let (removed, nr) = remove_rec(store, store.right(n), key);
        if removed {
            store.set_right(n, nr);
        }
        (removed, n)
    } else {
        let l = store.left(n);
        let r = store.right(n);
        if l.is_nil() {
            (true, r)
        } else if r.is_nil() {
            (true, l)
        } else {
            // Replace with the in-order successor's key, then delete it from
            // the right subtree.
            let mut succ = r;
            while !store.left(succ).is_nil() {
                succ = store.left(succ);
            }
            let sk = store.key(succ);
            store.set_key(n, sk);
            let (_, nr) = remove_rec(store, r, sk);
            store.set_right(n, nr);
            (true, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_properties() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        assert!(avl.is_empty());
        assert_eq!(avl.len(), 0);
        assert!(avl.is_avl());
        assert!(!avl.contains(1));
        avl.rebalance();
        assert_eq!(avl.root(), NodeRef::NIL);
    }

    #[test]
    fn sorted_insertions_balance() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        for k in 0..64 {
            assert!(avl.insert(k));
        }
        assert!(!avl.insert(10), "duplicate rejected");
        avl.rebalance();
        assert!(avl.is_avl(), "AVL property holds");
        assert!(avl.is_bst(), "ordering preserved by rotations");
        assert_eq!(avl.keys(), (0..64).collect::<Vec<_>>());
        assert!(avl.height() <= 8, "height {} for 64 keys", avl.height());
    }

    #[test]
    fn rebalance_after_each_insert_is_incremental() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        for k in 0..128 {
            avl.insert(k);
            avl.rebalance();
            assert!(avl.is_avl());
        }
        // The final per-insert rebalance touches O(log n) instances, not
        // O(n): measure the last one.
        avl.insert(1000);
        rt.reset_stats();
        avl.rebalance();
        let d = rt.stats();
        assert!(
            d.executions <= 64,
            "single-insert rebalance re-ran {} instances",
            d.executions
        );
        assert!(avl.is_avl());
    }

    #[test]
    fn reverse_sorted_insertions_balance() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        for k in (0..64).rev() {
            avl.insert(k);
            avl.rebalance();
        }
        assert!(avl.is_avl());
        assert!(avl.is_bst());
        assert_eq!(avl.len(), 64);
    }

    #[test]
    fn batched_inserts_then_one_rebalance() {
        // The off-line usage: build a degenerate chain in one write
        // transaction, balance once.
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        assert_eq!(avl.insert_all(0..256), 256);
        assert_eq!(rt.stats().batches, 1);
        avl.rebalance();
        assert!(avl.is_avl());
        assert!(avl.is_bst());
        assert_eq!(avl.keys().len(), 256);
        assert!(avl.height() <= 10);
    }

    #[test]
    fn insert_all_matches_sequential_inserts() {
        let keys = [13i64, 5, 21, 13, 8, 1, 34, 2, 5, 55, 3];
        let rt_seq = Runtime::new();
        let mut seq = MaintainedAvl::new(&rt_seq);
        let mut n_seq = 0;
        for &k in &keys {
            n_seq += usize::from(seq.insert(k));
        }
        let rt_bulk = Runtime::new();
        let mut bulk = MaintainedAvl::new(&rt_bulk);
        let n_bulk = bulk.insert_all(keys);
        assert_eq!(n_bulk, n_seq);
        assert_eq!(bulk.len(), seq.len());
        seq.rebalance();
        bulk.rebalance();
        assert_eq!(bulk.keys(), seq.keys());
        assert!(bulk.is_avl() && bulk.is_bst());
    }

    #[test]
    fn contains_finds_inserted_keys() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        for k in [5, 1, 9, 3, 7, 2, 8] {
            avl.insert(k);
        }
        for k in [5, 1, 9, 3, 7, 2, 8] {
            assert!(avl.contains(k));
        }
        assert!(!avl.contains(4));
        assert!(!avl.contains(0));
    }

    #[test]
    fn remove_leaf_and_internal_nodes() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        for k in 0..32 {
            avl.insert(k);
        }
        avl.rebalance();
        assert!(avl.remove(0), "leaf");
        assert!(avl.remove(16), "internal");
        assert!(!avl.remove(99), "absent");
        avl.rebalance();
        assert!(avl.is_avl());
        assert!(avl.is_bst());
        assert_eq!(avl.len(), 30);
        assert!(!avl.contains(0));
        assert!(!avl.contains(16));
        assert!(avl.contains(17));
    }

    #[test]
    fn interleaved_inserts_removes_stay_consistent() {
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        let mut expected = std::collections::BTreeSet::new();
        // Deterministic pseudo-random walk.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) as i64 % 64;
            if x & 4 == 0 {
                assert_eq!(avl.insert(key), expected.insert(key));
            } else {
                assert_eq!(avl.remove(key), expected.remove(&key));
            }
            if x & 3 == 0 {
                avl.rebalance();
                assert!(avl.is_avl());
            }
        }
        avl.rebalance();
        assert!(avl.is_avl());
        assert_eq!(avl.keys(), expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn reentrant_balance_keeps_edge_dedup_sound() {
        // `avl_balance` re-enters itself after a rotation (it calls the memo
        // on the rotated root while the original execution is still on the
        // stack), so its frames exercise the epoch-stamp overflow path: the
        // inner frame restamps nodes the superseded outer frame already
        // recorded, and popping it must restore those stamps. If restoration
        // broke, the enclosing frames would either drop edges (stale results
        // after mutations) or duplicate them. Sorted insertion maximizes
        // rotations.
        let rt = Runtime::new();
        let mut avl = MaintainedAvl::new(&rt);
        for k in 0..128 {
            avl.insert(k);
            avl.rebalance();
            assert!(avl.is_avl());
        }
        assert!(rt.stats().dedup_hits > 0, "rotations revisit fields");
        // Edges recorded across re-entrant executions must still trigger
        // recomputation: mutate a deep key and check the tree heals.
        assert!(avl.remove(0));
        assert!(avl.remove(1));
        avl.rebalance();
        assert!(avl.is_avl());
        assert!(avl.is_bst());
        assert_eq!(avl.keys(), (2..128).collect::<Vec<_>>());
    }
}
