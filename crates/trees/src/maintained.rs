//! Algorithm 1: the maintained-height tree.
//!
//! The paper's first example maintains, for every node of a binary tree, the
//! height of the subtree rooted there, via a `(*MAINTAINED*)` method:
//!
//! ```modula3
//! PROCEDURE Height(t : Tree) : INTEGER =
//! BEGIN RETURN max(t.left.height(), t.right.height()) + 1 END Height;
//! ```
//!
//! Section 3.4 states the costs this reproduction measures (experiment E1):
//! the first `height` call on `t` takes O(|subtree(t)|); subsequent calls on
//! `t` or any descendant take O(1); a single child-pointer change costs
//! O(height) plus propagation bookkeeping; and a batch of changes costs
//! O(|AFFECTED|) — the set of height values that actually differ.

use crate::arena::{NodeRef, TreeStore};
use alphonse::{Memo, Runtime, Strategy};
use std::fmt;
use std::sync::Arc;

/// A binary tree whose per-node heights are incrementally maintained.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// use alphonse_trees::MaintainedTree;
///
/// let rt = Runtime::new();
/// let tree = MaintainedTree::new(&rt);
/// let root = tree.store().build_balanced(&(0..15).collect::<Vec<_>>());
/// assert_eq!(tree.height(root), 4);      // first call: O(n)
/// assert_eq!(tree.height(root), 4);      // cached: O(1)
/// ```
pub struct MaintainedTree {
    store: Arc<TreeStore>,
    height: Memo<NodeRef, i64>,
}

impl fmt::Debug for MaintainedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintainedTree")
            .field("nodes", &self.store.len())
            .field("height_instances", &self.height.instance_count())
            .finish()
    }
}

impl MaintainedTree {
    /// Creates an empty maintained tree with demand evaluation.
    pub fn new(rt: &Runtime) -> Self {
        Self::with_strategy(rt, Strategy::Demand)
    }

    /// Creates an empty maintained tree with the given evaluation strategy
    /// for the `height` method.
    pub fn with_strategy(rt: &Runtime, strategy: Strategy) -> Self {
        let store = TreeStore::new(rt);
        let s = Arc::clone(&store);
        let height = rt.memo_recursive_with("height", strategy, move |rt, me, &t: &NodeRef| {
            // HeightNil: the override on the nil sentinel returns 0.
            if t.is_nil() {
                return 0i64;
            }
            let l = me.call(rt, s.left(t));
            let r = me.call(rt, s.right(t));
            l.max(r) + 1
        });
        MaintainedTree { store, height }
    }

    /// The underlying node storage (allocation, links, traversal).
    pub fn store(&self) -> &Arc<TreeStore> {
        &self.store
    }

    /// The maintained `height` method. The first call on a subtree computes
    /// exhaustively; later calls are answered from the cache until links
    /// below change.
    pub fn height(&self, t: NodeRef) -> i64 {
        self.height.call(self.store.runtime(), t)
    }

    /// Direct access to the height memo (for benchmarks that inspect
    /// instances).
    pub fn height_memo(&self) -> &Memo<NodeRef, i64> {
        &self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: i64) -> (Runtime, MaintainedTree, NodeRef) {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let keys: Vec<i64> = (0..n).collect();
        let root = tree.store().build_balanced(&keys);
        (rt, tree, root)
    }

    #[test]
    fn height_matches_exhaustive_on_balanced_tree() {
        let (_rt, tree, root) = setup(31);
        assert_eq!(tree.height(root), tree.store().height_exhaustive(root));
        assert_eq!(tree.height(root), 5);
    }

    #[test]
    fn height_of_empty_tree_is_zero() {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        assert_eq!(tree.height(NodeRef::NIL), 0);
    }

    #[test]
    fn repeat_queries_are_cached() {
        let (rt, tree, root) = setup(63);
        tree.height(root);
        let before = rt.stats();
        for _ in 0..10 {
            assert_eq!(tree.height(root), 6);
        }
        let d = rt.stats().delta_since(&before);
        assert_eq!(d.executions, 0, "repeat queries re-execute nothing");
        assert_eq!(d.cache_hits, 10);
    }

    #[test]
    fn descendant_queries_hit_cache_after_root_query() {
        let (rt, tree, root) = setup(31);
        tree.height(root);
        let probe = tree.store().left(tree.store().left(root));
        let before = rt.stats();
        assert_eq!(tree.height(probe), 3);
        let d = rt.stats().delta_since(&before);
        assert_eq!(d.executions, 0, "descendant heights were computed already");
    }

    #[test]
    fn leaf_relink_updates_path_only() {
        let (rt, tree, root) = setup(63);
        tree.height(root);
        // Graft a new chain under the leftmost leaf: height grows.
        let store = tree.store();
        let mut leftmost = root;
        let mut depth = 1;
        while !store.left(leftmost).is_nil() {
            leftmost = store.left(leftmost);
            depth += 1;
        }
        let extra = store.new_node(-1, store.new_leaf(-2), NodeRef::NIL);
        store.set_left(leftmost, extra);
        let before = rt.stats();
        assert_eq!(tree.height(root), 8); // 6 + 2 new levels
        let d = rt.stats().delta_since(&before);
        // Only the path from the leaf to the root (plus the two new nodes
        // and the nil sentinel instance) re-executes: far fewer than the 63
        // executions of a full recomputation.
        assert!(
            d.executions <= (depth + 3) as u64 + 2,
            "expected ~path-length executions, got {}",
            d.executions
        );
    }

    #[test]
    fn unchanged_subtree_swap_cuts_off() {
        // Swapping a subtree for another of the same height must not change
        // any ancestor height: quiescence stops the propagation.
        let (rt, tree, root) = setup(31);
        tree.height(root);
        let store = tree.store();
        let l = store.left(root);
        // Replace root.left with a fresh balanced subtree of equal height.
        let fresh = store.build_balanced(&(100..115).collect::<Vec<_>>());
        store.set_left(root, fresh);
        assert_eq!(tree.height(root), 5);
        // Old subtree's cached heights are still valid if re-attached.
        store.set_left(root, l);
        let before = rt.stats();
        assert_eq!(tree.height(root), 5);
        let d = rt.stats().delta_since(&before);
        // The root's height instance re-executes (its left field changed),
        // but the re-attached subtree is fully cached.
        assert!(d.executions <= 2, "got {}", d.executions);
    }

    #[test]
    fn batched_changes_coalesce() {
        let (rt, tree, root) = setup(127);
        tree.height(root);
        let store = tree.store();
        // Graft three chains under distinct leaves, then query once.
        let mut leaves = Vec::new();
        fn collect_leaves(store: &TreeStore, n: NodeRef, out: &mut Vec<NodeRef>) {
            if n.is_nil() {
                return;
            }
            if store.left(n).is_nil() && store.right(n).is_nil() {
                out.push(n);
            } else {
                collect_leaves(store, store.left(n), out);
                collect_leaves(store, store.right(n), out);
            }
        }
        collect_leaves(store, root, &mut leaves);
        // Graft all three chains in one write transaction: one borrow, one
        // dirty frontier.
        let grafts: Vec<_> = (0..3).map(|i| store.new_leaf(1000 + i as i64)).collect();
        rt.batch(|tx| {
            for (&leaf, &graft) in leaves.iter().take(3).zip(&grafts) {
                store.set_left_in(tx, leaf, graft);
            }
        });
        let before = rt.stats();
        assert_eq!(tree.height(root), 8);
        let d = rt.stats().delta_since(&before);
        let full = 127 + 3;
        assert!(
            d.executions < full / 2,
            "batched update should re-execute a small fraction, got {}",
            d.executions
        );
    }

    #[test]
    fn eager_strategy_updates_on_propagate() {
        let rt = Runtime::new();
        let tree = MaintainedTree::with_strategy(&rt, Strategy::Eager);
        let root = tree.store().build_balanced(&(0..15).collect::<Vec<_>>());
        assert_eq!(tree.height(root), 4);
        tree.store().set_left(root, NodeRef::NIL);
        rt.propagate();
        let before = rt.stats();
        assert_eq!(tree.height(root), 4); // right side still depth 3 + root... recompute below
        let d = rt.stats().delta_since(&before);
        assert_eq!(d.executions, 0, "eager propagation already updated");
    }

    #[test]
    fn chain_heights_are_linear() {
        let rt = Runtime::new();
        let tree = MaintainedTree::new(&rt);
        let keys: Vec<i64> = (0..20).collect();
        let root = tree.store().build_left_chain(&keys);
        assert_eq!(tree.height(root), 20);
    }
}
