//! Shared tree storage: an arena of nodes whose fields are tracked
//! variables.
//!
//! The paper's tree examples (Algorithms 1 and 11) use heap objects with
//! `left`/`right` pointer fields and a single shared `TreeNil` object for
//! missing children. [`TreeStore`] reproduces that: node 0 is the nil
//! sentinel, and every field of every node is an Alphonse [`Var`], so reads
//! performed inside maintained methods are recorded as dependencies and
//! writes seed change propagation.

use alphonse::{Batch, Runtime, Var};
use alphonse_mem as mem;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

/// Reference to a tree node — the paper's `Tree` pointer. `NodeRef::NIL`
/// plays the role of the shared `TreeNil` object.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The shared nil sentinel (the paper's `TreeNil` object).
    pub const NIL: NodeRef = NodeRef(0);

    /// Returns `true` for the nil sentinel.
    #[inline]
    pub fn is_nil(self) -> bool {
        self.0 == 0
    }

    /// Dense index of this node within its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Locks the node arena. The arena is used from one thread at a time, so
/// contention means a method body re-entered the store while a guard was
/// live — fail stop, mirroring the `RefCell` panic this lock replaced.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => panic!("tree store re-entered while locked"),
    }
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nil() {
            write!(f, "nil")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

struct Fields {
    key: Var<i64>,
    left: Var<NodeRef>,
    right: Var<NodeRef>,
}

/// An arena of binary-tree nodes with tracked fields, shared by the
/// maintained-height tree and the maintained AVL tree.
pub struct TreeStore {
    rt: Runtime,
    nodes: Mutex<Vec<Fields>>,
}

impl fmt::Debug for TreeStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreeStore")
            .field("nodes", &(lock(&self.nodes).len().saturating_sub(1)))
            .finish()
    }
}

impl TreeStore {
    /// Creates an empty store bound to `rt`. Slot 0 is reserved for the nil
    /// sentinel.
    pub fn new(rt: &Runtime) -> Arc<Self> {
        let _mem = mem::scope(mem::Tag::Substrate);
        let sentinel = Fields {
            key: rt.var(0),
            left: rt.var(NodeRef::NIL),
            right: rt.var(NodeRef::NIL),
        };
        Arc::new(TreeStore {
            rt: rt.clone(),
            nodes: Mutex::new(vec![sentinel]),
        })
    }

    /// The runtime this store tracks its fields in.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Number of allocated nodes (excluding the nil sentinel).
    pub fn len(&self) -> usize {
        lock(&self.nodes).len() - 1
    }

    /// Returns `true` if no nodes have been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates a node with the given key and children.
    pub fn new_node(&self, key: i64, left: NodeRef, right: NodeRef) -> NodeRef {
        let _mem = mem::scope(mem::Tag::Substrate);
        let mut nodes = lock(&self.nodes);
        let id = u32::try_from(nodes.len()).expect("too many tree nodes");
        let fields = if self.rt.tracing() {
            // Trace labels name each field var after its tree slot so graph
            // exports read "t3.key" instead of a bare node id. Skipped
            // entirely on untraced runtimes — allocation stays label-free.
            Fields {
                key: self.rt.var_named(&format!("t{id}.key"), key),
                left: self.rt.var_named(&format!("t{id}.left"), left),
                right: self.rt.var_named(&format!("t{id}.right"), right),
            }
        } else {
            Fields {
                key: self.rt.var(key),
                left: self.rt.var(left),
                right: self.rt.var(right),
            }
        };
        nodes.push(fields);
        NodeRef(id)
    }

    /// Allocates a leaf node.
    pub fn new_leaf(&self, key: i64) -> NodeRef {
        self.new_node(key, NodeRef::NIL, NodeRef::NIL)
    }

    fn field<F: Copy, G: Fn(&Fields) -> F>(&self, n: NodeRef, what: &str, get: G) -> F {
        assert!(!n.is_nil(), "{what} of nil");
        get(&lock(&self.nodes)[n.index()])
    }

    /// Reads `n.key` (tracked when inside a maintained method).
    pub fn key(&self, n: NodeRef) -> i64 {
        // Borrow-based read: these field loads are the hottest operation in
        // every tree experiment, so copy the scalar out in place.
        self.field(n, "key", |f| f.key).with(&self.rt, |&k| k)
    }

    /// Reads `n.left` (tracked when inside a maintained method).
    pub fn left(&self, n: NodeRef) -> NodeRef {
        self.field(n, "left", |f| f.left).with(&self.rt, |&c| c)
    }

    /// Reads `n.right` (tracked when inside a maintained method).
    pub fn right(&self, n: NodeRef) -> NodeRef {
        self.field(n, "right", |f| f.right).with(&self.rt, |&c| c)
    }

    /// Writes `n.left`.
    pub fn set_left(&self, n: NodeRef, child: NodeRef) {
        self.field(n, "left", |f| f.left).set(&self.rt, child);
    }

    /// Writes `n.right`.
    pub fn set_right(&self, n: NodeRef, child: NodeRef) {
        self.field(n, "right", |f| f.right).set(&self.rt, child);
    }

    /// Writes `n.key`.
    pub fn set_key(&self, n: NodeRef, key: i64) {
        self.field(n, "key", |f| f.key).set(&self.rt, key);
    }

    /// Reads `n.key` through a write transaction: the pending value if the
    /// batch wrote it, the stored value otherwise.
    pub fn key_in(&self, tx: &Batch<'_>, n: NodeRef) -> i64 {
        self.field(n, "key", |f| f.key).get_in(tx)
    }

    /// Reads `n.left` through a write transaction (read-your-writes).
    pub fn left_in(&self, tx: &Batch<'_>, n: NodeRef) -> NodeRef {
        self.field(n, "left", |f| f.left).get_in(tx)
    }

    /// Reads `n.right` through a write transaction (read-your-writes).
    pub fn right_in(&self, tx: &Batch<'_>, n: NodeRef) -> NodeRef {
        self.field(n, "right", |f| f.right).get_in(tx)
    }

    /// Writes `n.left` through a write transaction — the batched form of
    /// [`TreeStore::set_left`] for multi-link restructurings (rotations,
    /// bulk rebuilds) that should commit as one dirty frontier.
    pub fn set_left_in(&self, tx: &mut Batch<'_>, n: NodeRef, child: NodeRef) {
        self.field(n, "left", |f| f.left).set_in(tx, child);
    }

    /// Writes `n.right` through a write transaction.
    pub fn set_right_in(&self, tx: &mut Batch<'_>, n: NodeRef, child: NodeRef) {
        self.field(n, "right", |f| f.right).set_in(tx, child);
    }

    /// Writes `n.key` through a write transaction.
    pub fn set_key_in(&self, tx: &mut Batch<'_>, n: NodeRef, key: i64) {
        self.field(n, "key", |f| f.key).set_in(tx, key);
    }

    /// In-order keys of the subtree rooted at `root` (plain reads; call from
    /// mutator code only).
    pub fn inorder(&self, root: NodeRef) -> Vec<i64> {
        let mut out = Vec::new();
        self.inorder_into(root, &mut out);
        out
    }

    fn inorder_into(&self, n: NodeRef, out: &mut Vec<i64>) {
        if n.is_nil() {
            return;
        }
        self.inorder_into(self.left(n), out);
        out.push(self.key(n));
        self.inorder_into(self.right(n), out);
    }

    /// Exhaustively computed height of the subtree at `n` (no caching; the
    /// "conventional execution" of Algorithm 1).
    pub fn height_exhaustive(&self, n: NodeRef) -> i64 {
        if n.is_nil() {
            0
        } else {
            1 + self
                .height_exhaustive(self.left(n))
                .max(self.height_exhaustive(self.right(n)))
        }
    }

    /// Builds a perfectly balanced tree over `keys` (must be sorted for BST
    /// uses) and returns its root.
    pub fn build_balanced(&self, keys: &[i64]) -> NodeRef {
        if keys.is_empty() {
            return NodeRef::NIL;
        }
        let mid = keys.len() / 2;
        let left = self.build_balanced(&keys[..mid]);
        let right = self.build_balanced(&keys[mid + 1..]);
        self.new_node(keys[mid], left, right)
    }

    /// Builds a maximally unbalanced left chain over `keys` (given in
    /// ascending order the root gets the last key).
    pub fn build_left_chain(&self, keys: &[i64]) -> NodeRef {
        let mut root = NodeRef::NIL;
        for &k in keys {
            root = self.new_node(k, root, NodeRef::NIL);
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphonse::Runtime;

    #[test]
    fn nil_is_nil() {
        assert!(NodeRef::NIL.is_nil());
        assert_eq!(format!("{:?}", NodeRef::NIL), "nil");
    }

    #[test]
    fn new_node_links_children() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let l = store.new_leaf(1);
        let r = store.new_leaf(3);
        let root = store.new_node(2, l, r);
        assert_eq!(store.key(root), 2);
        assert_eq!(store.left(root), l);
        assert_eq!(store.right(root), r);
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
    }

    #[test]
    fn inorder_visits_sorted() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let root = store.build_balanced(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(store.inorder(root), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(store.height_exhaustive(root), 3);
    }

    #[test]
    fn left_chain_has_linear_height() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let root = store.build_left_chain(&[1, 2, 3, 4, 5]);
        assert_eq!(store.height_exhaustive(root), 5);
        assert_eq!(store.inorder(root), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn set_children_relinks() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let a = store.new_leaf(1);
        let b = store.new_leaf(2);
        store.set_right(a, b);
        assert_eq!(store.right(a), b);
        store.set_right(a, NodeRef::NIL);
        assert_eq!(store.right(a), NodeRef::NIL);
        store.set_key(b, 99);
        assert_eq!(store.key(b), 99);
    }

    #[test]
    fn batched_relink_commits_one_frontier() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let a = store.new_leaf(1);
        let b = store.new_leaf(2);
        let c = store.new_leaf(3);
        // Swap b and c between a's child slots in one transaction.
        store.set_left(a, b);
        store.set_right(a, c);
        rt.batch(|tx| {
            store.set_left_in(tx, a, c);
            store.set_right_in(tx, a, b);
            store.set_key_in(tx, a, 10);
        });
        assert_eq!(store.left(a), c);
        assert_eq!(store.right(a), b);
        assert_eq!(store.key(a), 10);
        assert_eq!(rt.stats().batches, 1);
        assert_eq!(rt.stats().batched_writes, 3);
    }

    #[test]
    #[should_panic(expected = "of nil")]
    fn reading_nil_fields_panics() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let _ = store.left(NodeRef::NIL);
    }
}
