//! Property-based testing of the dependency-graph substrate against a
//! naive model.

use alphonse_graph::{DepGraph, HeightQueue, NodeId, UnionFind};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum GraphOp {
    AddNode,
    /// Add edge between existing nodes (indices mod node count).
    AddEdge(usize, usize),
    /// Remove all pred edges of a node.
    RemovePreds(usize),
}

fn op_strategy() -> impl Strategy<Value = GraphOp> {
    prop_oneof![
        2 => Just(GraphOp::AddNode),
        4 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GraphOp::AddEdge(a, b)),
        2 => any::<usize>().prop_map(GraphOp::RemovePreds),
    ]
}

/// Naive reference model: multiset of edges.
#[derive(Default)]
struct Model {
    nodes: usize,
    edges: Vec<(usize, usize)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The intrusive edge lists agree with a simple edge-multiset model
    /// under arbitrary interleavings of insertion and pred-removal.
    #[test]
    fn graph_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut g = DepGraph::new();
        let mut m = Model::default();
        // Seed with one node so index arithmetic is defined.
        g.add_node();
        m.nodes = 1;
        for op in ops {
            match op {
                GraphOp::AddNode => {
                    g.add_node();
                    m.nodes += 1;
                }
                GraphOp::AddEdge(a, b) => {
                    let (a, b) = (a % m.nodes, b % m.nodes);
                    // Only add forward edges (a < b) to keep the graph
                    // acyclic, as the runtime guarantees.
                    if a < b {
                        g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                        m.edges.push((a, b));
                    }
                }
                GraphOp::RemovePreds(v) => {
                    let v = v % m.nodes;
                    g.remove_pred_edges(NodeId::from_index(v));
                    m.edges.retain(|&(_, dst)| dst != v);
                }
            }
            prop_assert_eq!(g.edge_count(), m.edges.len());
            prop_assert!(!g.cycle_suspected());
        }
        // Full adjacency audit.
        let mut model_succs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut model_preds: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &m.edges {
            model_succs.entry(a).or_default().push(b);
            model_preds.entry(b).or_default().push(a);
        }
        for i in 0..m.nodes {
            let n = NodeId::from_index(i);
            let mut got_s: Vec<usize> = g.succs(n).map(|x| x.index()).collect();
            let mut want_s = model_succs.get(&i).cloned().unwrap_or_default();
            got_s.sort_unstable();
            want_s.sort_unstable();
            prop_assert_eq!(got_s, want_s, "succs of {}", i);
            let mut got_p: Vec<usize> = g.preds(n).map(|x| x.index()).collect();
            let mut want_p = model_preds.get(&i).cloned().unwrap_or_default();
            got_p.sort_unstable();
            want_p.sort_unstable();
            prop_assert_eq!(got_p, want_p, "preds of {}", i);
        }
        // Heights respect every edge (topological consistency).
        for &(a, b) in &m.edges {
            prop_assert!(
                g.height(NodeId::from_index(a)) < g.height(NodeId::from_index(b)),
                "height({a}) must be below height({b})"
            );
        }
    }

    /// The height queue drains exactly the set of inserted nodes, in
    /// non-decreasing height order.
    #[test]
    fn height_queue_is_an_ordered_set(
        items in proptest::collection::vec((0usize..64, 0u32..16), 1..60)
    ) {
        let mut g = DepGraph::new();
        for _ in 0..64 {
            g.add_node();
        }
        let mut q = HeightQueue::new();
        let mut expected = BTreeSet::new();
        let mut height_of = BTreeMap::new();
        for (n, h) in items {
            let node = NodeId::from_index(n);
            if expected.insert(n) {
                q.insert(node, h);
                height_of.insert(n, h);
            } else {
                q.insert(node, h); // duplicate: ignored, original height kept
            }
        }
        prop_assert_eq!(q.len(), expected.len());
        let mut drained = Vec::new();
        let mut last_h = 0;
        while let Some(n) = q.pop() {
            let h = height_of[&n.index()];
            prop_assert!(h >= last_h, "heights must be non-decreasing");
            last_h = h;
            drained.push(n.index());
        }
        let drained_set: BTreeSet<usize> = drained.iter().copied().collect();
        prop_assert_eq!(drained_set, expected);
    }

    /// Union-find partitions match a naive connected-components model.
    #[test]
    fn union_find_matches_components(
        unions in proptest::collection::vec((0usize..40, 0usize..40), 0..60)
    ) {
        let mut g = DepGraph::new();
        let nodes: Vec<NodeId> = (0..40).map(|_| g.add_node()).collect();
        let mut uf = UnionFind::new();
        for &n in &nodes {
            uf.ensure(n);
        }
        // Naive model: component label per node.
        let mut label: Vec<usize> = (0..40).collect();
        for (a, b) in unions {
            uf.union(nodes[a], nodes[b]);
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for i in 0..40 {
            for j in 0..40 {
                let same_model = label[i] == label[j];
                let same_uf = uf.find(nodes[i]) == uf.find(nodes[j]);
                prop_assert_eq!(same_model, same_uf, "nodes {} and {}", i, j);
            }
        }
    }
}
