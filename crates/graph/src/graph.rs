//! The dependency graph arena.

use alphonse_mem as mem;
use std::fmt;

/// Identifies a node of a [`DepGraph`].
///
/// Node ids are small dense indices; they are never reused within one graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Returns the dense index of this node, suitable for indexing
    /// caller-side side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id back from an index produced by [`NodeId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 32 bits.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflow"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Sentinel index meaning "no edge".
const NIL: u32 = u32::MAX;

/// One bidirectional dependency edge `src -> dst` ("dst depends on src").
///
/// Edges live simultaneously on two intrusive doubly-linked lists: the
/// successor (out) list of `src` and the predecessor (in) list of `dst`.
/// This is the Rust equivalent of the paper's "doubly linked list of
/// bidirectional edges" (Section 9.2) and gives O(1) unlinking.
#[derive(Clone, Copy)]
struct Edge {
    src: u32,
    dst: u32,
    prev_out: u32,
    next_out: u32,
    prev_in: u32,
    next_in: u32,
}

#[derive(Clone, Copy)]
struct NodeRec {
    first_out: u32,
    first_in: u32,
    /// Longest-path height from source nodes; used as evaluation priority.
    height: u32,
}

/// A directed dependency graph with O(1) edge removal and online
/// longest-path heights.
///
/// An edge `u -> v` states that the value represented by `v` was computed
/// from the value represented by `u`: change to `u` must be propagated to
/// `v`. The graph itself is policy-free; the Alphonse runtime decides what
/// nodes mean (storage locations vs. incremental procedure instances).
///
/// # Example
///
/// ```
/// use alphonse_graph::DepGraph;
/// let mut g = DepGraph::new();
/// let (a, b, c) = (g.add_node(), g.add_node(), g.add_node());
/// g.add_edge(a, b);
/// g.add_edge(b, c);
/// assert_eq!(g.preds(c).collect::<Vec<_>>(), vec![b]);
/// g.remove_pred_edges(c);
/// assert_eq!(g.preds(c).count(), 0);
/// assert_eq!(g.succs(b).count(), 0);
/// ```
pub struct DepGraph {
    nodes: Vec<NodeRec>,
    edges: Vec<Edge>,
    /// Head of the free list threaded through `edges[i].next_out`.
    free_edge: u32,
    edges_live: usize,
    edges_created: u64,
    edges_removed: u64,
    /// Node-height increases performed by online propagation (each node
    /// whose height rose counts once per rise). Static height seeding
    /// exists to shrink this number.
    height_raises: u64,
    /// Set when height propagation exceeds its budget, which can only
    /// happen if the dependency relation is cyclic (a violation of the
    /// paper's DET/termination assumptions).
    cycle_suspected: bool,
    /// Scratch work-list reused by height propagation.
    scratch: Vec<u32>,
}

impl fmt::Debug for DepGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DepGraph")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges_live)
            .finish()
    }
}

impl Default for DepGraph {
    fn default() -> Self {
        DepGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            free_edge: NIL,
            edges_live: 0,
            edges_created: 0,
            edges_removed: 0,
            height_raises: 0,
            cycle_suspected: false,
            scratch: Vec::new(),
        }
    }
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh node with no edges and height 0.
    pub fn add_node(&mut self) -> NodeId {
        let _mem = mem::scope(mem::Tag::GraphCore);
        let id = u32::try_from(self.nodes.len()).expect("too many graph nodes");
        self.nodes.push(NodeRec {
            first_out: NIL,
            first_in: NIL,
            height: 0,
        });
        NodeId(id)
    }

    /// Number of nodes ever created.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (not removed) edges.
    pub fn edge_count(&self) -> usize {
        self.edges_live
    }

    /// Total number of edges created over the graph's lifetime.
    pub fn edges_created(&self) -> u64 {
        self.edges_created
    }

    /// Total number of edges removed over the graph's lifetime.
    pub fn edges_removed(&self) -> u64 {
        self.edges_removed
    }

    /// Evaluation priority of `n`: the length of the longest known
    /// dependency path ending at `n`.
    pub fn height(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].height
    }

    /// Total node-height increases performed by online propagation
    /// ([`DepGraph::add_edge`]'s raise step) over the graph's lifetime.
    pub fn height_raises(&self) -> u64 {
        self.height_raises
    }

    /// Lifts `n`'s height to at least `h`, returning `true` if it rose.
    ///
    /// This seeds a *fresh* node with a statically computed stratum so the
    /// online raise step has nothing left to do when its dependence edges
    /// arrive. It performs no forward propagation, so the caller must only
    /// use it on nodes that have no successors yet — lifting a node other
    /// nodes already depend on would break the height invariant.
    pub fn set_min_height(&mut self, n: NodeId, h: u32) -> bool {
        debug_assert!(
            self.nodes[n.index()].first_out == NIL,
            "set_min_height on a node with successors"
        );
        let rec = &mut self.nodes[n.index()];
        if rec.height >= h {
            return false;
        }
        rec.height = h;
        true
    }

    /// Returns `true` if height propagation ever blew its budget, which
    /// indicates a dependency cycle (illegal per the paper's DET
    /// restriction, Section 3.5).
    pub fn cycle_suspected(&self) -> bool {
        self.cycle_suspected
    }

    fn alloc_edge(&mut self, e: Edge) -> u32 {
        self.edges_created += 1;
        self.edges_live += 1;
        if self.free_edge != NIL {
            let id = self.free_edge;
            self.free_edge = self.edges[id as usize].next_out;
            self.edges[id as usize] = e;
            id
        } else {
            let _mem = mem::scope(mem::Tag::GraphCore);
            let id = u32::try_from(self.edges.len()).expect("too many graph edges");
            self.edges.push(e);
            id
        }
    }

    /// Adds the dependency edge `u -> v` ("v depends on u") and raises `v`'s
    /// height above `u`'s if needed, propagating to `v`'s transitive
    /// successors.
    ///
    /// Duplicate edges are permitted (the runtime deduplicates per
    /// execution); each call creates a distinct edge record.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let e = self.alloc_edge(Edge {
            src: u.0,
            dst: v.0,
            prev_out: NIL,
            next_out: self.nodes[u.index()].first_out,
            prev_in: NIL,
            next_in: self.nodes[v.index()].first_in,
        });
        let old_out = self.nodes[u.index()].first_out;
        if old_out != NIL {
            self.edges[old_out as usize].prev_out = e;
        }
        self.nodes[u.index()].first_out = e;
        let old_in = self.nodes[v.index()].first_in;
        if old_in != NIL {
            self.edges[old_in as usize].prev_in = e;
        }
        self.nodes[v.index()].first_in = e;
        self.raise_height(u, v);
    }

    /// Ensures `height(v) > height(u)`, propagating increases forward.
    fn raise_height(&mut self, u: NodeId, v: NodeId) {
        let hu = self.nodes[u.index()].height;
        if self.nodes[v.index()].height > hu {
            return;
        }
        // Budget: in a DAG a single edge insertion can raise each node's
        // height at most once per level; a generous budget distinguishes
        // legal propagation from a cycle-induced infinite loop.
        let budget = (self.nodes.len() as u64 + 8) * 4;
        let mut steps = 0u64;
        let _mem = mem::scope(mem::Tag::GraphCore);
        let mut work = std::mem::take(&mut self.scratch);
        work.clear();
        self.nodes[v.index()].height = hu + 1;
        self.height_raises += 1;
        work.push(v.0);
        while let Some(x) = work.pop() {
            steps += 1;
            if steps > budget {
                self.cycle_suspected = true;
                break;
            }
            let hx = self.nodes[x as usize].height;
            let mut e = self.nodes[x as usize].first_out;
            while e != NIL {
                let edge = self.edges[e as usize];
                if self.nodes[edge.dst as usize].height <= hx {
                    self.nodes[edge.dst as usize].height = hx + 1;
                    self.height_raises += 1;
                    work.push(edge.dst);
                }
                e = edge.next_out;
            }
        }
        self.scratch = work;
    }

    fn unlink(&mut self, e: u32) {
        let edge = self.edges[e as usize];
        // Out list of src.
        if edge.prev_out != NIL {
            self.edges[edge.prev_out as usize].next_out = edge.next_out;
        } else {
            self.nodes[edge.src as usize].first_out = edge.next_out;
        }
        if edge.next_out != NIL {
            self.edges[edge.next_out as usize].prev_out = edge.prev_out;
        }
        // In list of dst.
        if edge.prev_in != NIL {
            self.edges[edge.prev_in as usize].next_in = edge.next_in;
        } else {
            self.nodes[edge.dst as usize].first_in = edge.next_in;
        }
        if edge.next_in != NIL {
            self.edges[edge.next_in as usize].prev_in = edge.prev_in;
        }
        // Return to free list.
        self.edges[e as usize].next_out = self.free_edge;
        self.free_edge = e;
        self.edges_live -= 1;
        self.edges_removed += 1;
    }

    /// Removes every incoming edge of `v` — the `RemovePredEdges` step run
    /// before re-executing an incremental procedure (paper Algorithm 5).
    ///
    /// Cost is O(1) per removed edge.
    pub fn remove_pred_edges(&mut self, v: NodeId) {
        let mut e = self.nodes[v.index()].first_in;
        while e != NIL {
            let next = self.edges[e as usize].next_in;
            self.unlink(e);
            e = next;
        }
        debug_assert_eq!(self.nodes[v.index()].first_in, NIL);
    }

    /// Returns `true` if `u` has at least one successor (some node depends
    /// on it).
    pub fn has_succs(&self, u: NodeId) -> bool {
        self.nodes[u.index()].first_out != NIL
    }

    /// Iterates over the successors of `u` (nodes depending on `u`),
    /// including duplicates if parallel edges exist.
    pub fn succs(&self, u: NodeId) -> Succs<'_> {
        Succs {
            graph: self,
            edge: self.nodes[u.index()].first_out,
        }
    }

    /// Iterates over the predecessors of `v` (nodes `v` depends on),
    /// including duplicates if parallel edges exist.
    pub fn preds(&self, v: NodeId) -> Preds<'_> {
        Preds {
            graph: self,
            edge: self.nodes[v.index()].first_in,
        }
    }

    /// Calls `f` once per successor of `u` (including duplicates from
    /// parallel edges), without constructing an iterator adapter chain.
    ///
    /// This is the fan-out primitive of the propagation drain loop: callers
    /// that must release a borrow of the graph before acting on the
    /// successors pair it with [`DepGraph::succs_into`] and a reusable
    /// scratch buffer instead of collecting into a fresh `Vec`.
    #[inline]
    pub fn for_each_succ(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        let mut e = self.nodes[u.index()].first_out;
        while e != NIL {
            let edge = self.edges[e as usize];
            f(NodeId(edge.dst));
            e = edge.next_out;
        }
    }

    /// Clears `out` and fills it with the successors of `u` (duplicates
    /// included). Reusing one caller-owned buffer across calls makes the
    /// steady-state fan-out allocation-free: once the buffer's capacity
    /// covers the widest fan-out seen, no further heap traffic occurs.
    #[inline]
    pub fn succs_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        self.for_each_succ(u, |s| out.push(s));
    }

    /// Calls `f` once per predecessor of `v` (including duplicates from
    /// parallel edges), without constructing an iterator adapter chain —
    /// the fan-in counterpart of [`DepGraph::for_each_succ`].
    #[inline]
    pub fn for_each_pred(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        let mut e = self.nodes[v.index()].first_in;
        while e != NIL {
            let edge = self.edges[e as usize];
            f(NodeId(edge.src));
            e = edge.next_in;
        }
    }

    /// Clears `out` and fills it with the predecessors of `v` (duplicates
    /// included) — the fan-in counterpart of [`DepGraph::succs_into`], used
    /// by diagnostic paths that want to reuse one scratch buffer instead of
    /// collecting a fresh `Vec` per node.
    #[inline]
    pub fn preds_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        self.for_each_pred(v, |p| out.push(p));
    }

    /// Approximate heap footprint of the graph arena in bytes, computed from
    /// vector capacities (so it reflects what the allocator actually holds,
    /// not just live entries). Feeds the runtime's memory-footprint gauges.
    pub fn approx_bytes(&self) -> u64 {
        let nodes = self.nodes.capacity() * std::mem::size_of::<NodeRec>();
        let edges = self.edges.capacity() * std::mem::size_of::<Edge>();
        let scratch = self.scratch.capacity() * std::mem::size_of::<u32>();
        (nodes + edges + scratch + std::mem::size_of::<DepGraph>()) as u64
    }
}

/// Iterator over successor nodes, created by [`DepGraph::succs`].
pub struct Succs<'g> {
    graph: &'g DepGraph,
    edge: u32,
}

impl Iterator for Succs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.edge == NIL {
            return None;
        }
        let e = self.graph.edges[self.edge as usize];
        self.edge = e.next_out;
        Some(NodeId(e.dst))
    }
}

/// Iterator over predecessor nodes, created by [`DepGraph::preds`].
pub struct Preds<'g> {
    graph: &'g DepGraph,
    edge: u32,
}

impl Iterator for Preds<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.edge == NIL {
            return None;
        }
        let e = self.graph.edges[self.edge as usize];
        self.edge = e.next_in;
        Some(NodeId(e.src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DepGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.cycle_suspected());
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        assert_eq!(g.edge_count(), 3);
        let mut s: Vec<_> = g.succs(a).collect();
        s.sort();
        assert_eq!(s, vec![b, c]);
        let mut p: Vec<_> = g.preds(c).collect();
        p.sort();
        assert_eq!(p, vec![a, b]);
    }

    #[test]
    fn preds_into_reuses_buffer() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, c);
        g.add_edge(b, c);
        let mut buf = vec![a]; // stale content must be cleared
        g.preds_into(c, &mut buf);
        buf.sort();
        assert_eq!(buf, vec![a, b]);
        g.preds_into(a, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn approx_bytes_grows_with_graph() {
        let mut g = DepGraph::new();
        let empty = g.approx_bytes();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        assert!(g.approx_bytes() > empty);
    }

    #[test]
    fn heights_follow_longest_path() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, d);
        g.add_edge(d, c); // c: max(a->b->c, a->d->c) = 2
        assert_eq!(g.height(a), 0);
        assert_eq!(g.height(b), 1);
        assert_eq!(g.height(d), 1);
        assert_eq!(g.height(c), 2);
    }

    #[test]
    fn height_raises_propagate_through_chain() {
        let mut g = DepGraph::new();
        let chain: Vec<_> = (0..5).map(|_| g.add_node()).collect();
        for w in chain.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        // New deep predecessor of the chain head raises the whole chain.
        let deep: Vec<_> = (0..4).map(|_| g.add_node()).collect();
        for w in deep.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge(deep[3], chain[0]);
        assert_eq!(g.height(chain[0]), 4);
        assert_eq!(g.height(chain[4]), 8);
        assert!(!g.cycle_suspected());
    }

    #[test]
    fn remove_pred_edges_clears_both_directions() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, c);
        g.add_edge(b, c);
        g.add_edge(a, b);
        g.remove_pred_edges(c);
        assert_eq!(g.preds(c).count(), 0);
        assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.succs(b).count(), 0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges_removed(), 2);
    }

    #[test]
    fn edge_slots_are_reused_after_removal() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        for _ in 0..10 {
            g.add_edge(a, b);
            g.remove_pred_edges(b);
        }
        assert_eq!(g.edges.len(), 1, "freelist should recycle the single slot");
        assert_eq!(g.edges_created(), 10);
        assert_eq!(g.edges_removed(), 10);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.succs(a).count(), 2);
        g.remove_pred_edges(b);
        assert_eq!(g.succs(a).count(), 0);
    }

    #[test]
    fn cycle_is_detected_by_height_budget() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(g.cycle_suspected());
    }

    #[test]
    fn for_each_succ_matches_iterator() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(a, b); // parallel edge preserved by both forms
        let mut via_fn = Vec::new();
        g.for_each_succ(a, |s| via_fn.push(s));
        assert_eq!(via_fn, g.succs(a).collect::<Vec<_>>());
        assert_eq!(via_fn.len(), 3);
    }

    #[test]
    fn succs_into_reuses_buffer_capacity() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let targets: Vec<_> = (0..8).map(|_| g.add_node()).collect();
        for &t in &targets {
            g.add_edge(a, t);
        }
        let mut buf = Vec::new();
        g.succs_into(a, &mut buf);
        assert_eq!(buf.len(), 8);
        let cap = buf.capacity();
        g.succs_into(a, &mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
        g.succs_into(targets[0], &mut buf);
        assert!(buf.is_empty(), "clears stale contents for leaf nodes");
    }

    #[test]
    fn node_id_round_trips_through_index() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(NodeId::from_index(a.index()), a);
        assert_eq!(NodeId::from_index(b.index()), b);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        assert_eq!(format!("{a:?}"), "n0");
        assert!(format!("{g:?}").contains("DepGraph"));
    }

    #[test]
    fn seeded_heights_preempt_online_raises() {
        // Unseeded: building loc -> a -> b raises a once and b twice
        // (b first rises above a at height 1, then again when a rises).
        let mut g = DepGraph::new();
        let (loc, a, b) = (g.add_node(), g.add_node(), g.add_node());
        g.add_edge(a, b);
        g.add_edge(loc, a);
        let unseeded = g.height_raises();
        assert!(unseeded >= 3);

        // Seeded at their static strata, the same insertion order does no
        // raise work at all.
        let mut g = DepGraph::new();
        let (loc, a, b) = (g.add_node(), g.add_node(), g.add_node());
        assert!(g.set_min_height(a, 1));
        assert!(g.set_min_height(b, 2));
        assert!(!g.set_min_height(b, 2), "second lift is a no-op");
        g.add_edge(a, b);
        g.add_edge(loc, a);
        assert_eq!(g.height_raises(), 0);
        assert_eq!(g.height(b), 2);
        assert_eq!(g.height(loc), 0);
    }

    #[test]
    fn remove_middle_edge_keeps_lists_consistent() {
        // Exercise unlink of an edge that is in the middle of both lists.
        let mut g = DepGraph::new();
        let s1 = g.add_node();
        let s2 = g.add_node();
        let s3 = g.add_node();
        let t = g.add_node();
        g.add_edge(s1, t);
        g.add_edge(s2, t);
        g.add_edge(s3, t);
        // t's in-list: s3, s2, s1 (head insertion). Remove all; then rebuild.
        g.remove_pred_edges(t);
        g.add_edge(s2, t);
        assert_eq!(g.preds(t).collect::<Vec<_>>(), vec![s2]);
        assert_eq!(g.succs(s1).count(), 0);
        assert_eq!(g.succs(s3).count(), 0);
    }
}
