//! Strongly-connected components and condensation.
//!
//! The static-analysis layers of the workspace need the *shape* of a
//! dependency relation before any value flows through it: the effect
//! fixpoint iterates the call graph callee-first, and the static
//! dependency graph reports cycle candidates and strata (compile-time
//! shadows of the runtime's `F_ON_STACK` cycle error and online heights).
//! Both reduce to one primitive — Tarjan's strongly-connected-components
//! algorithm plus the condensation DAG it induces — so it lives here in
//! the graph crate, next to the runtime graph it approximates.
//!
//! The API is deliberately untied to [`DepGraph`](crate::DepGraph): callers
//! pass a node count and a successor enumerator, so call graphs keyed by
//! arbitrary dense indices condense without building an arena first.
//!
//! # Example
//!
//! ```
//! use alphonse_graph::scc::condense;
//!
//! // 0 -> 1 <-> 2, 3 isolated with a self-loop.
//! let adj: Vec<Vec<usize>> = vec![vec![1], vec![2], vec![1], vec![3]];
//! let c = condense(4, |v, f| adj[v].iter().for_each(|&w| f(w)));
//! assert_eq!(c.components.len(), 3);
//! assert!(c.is_cyclic(c.comp_of(1)));
//! assert!(!c.is_cyclic(c.comp_of(0)));
//! assert!(c.is_cyclic(c.comp_of(3))); // self-loop counts
//! assert!(c.comp_of(0) < c.comp_of(1)); // ids are topologically sorted
//! ```

/// The strongly-connected components of a directed graph, with component
/// ids numbered in **topological order** of the condensation DAG: for
/// every edge `u -> v` with `comp_of(u) != comp_of(v)`,
/// `comp_of(u) < comp_of(v)`.
///
/// Produced by [`condense`].
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Maps each node index to its component id.
    comp: Vec<u32>,
    /// Component members, indexed by component id. Members keep the order
    /// in which Tarjan's stack popped them (reversed, so DFS-ish order).
    pub components: Vec<Vec<usize>>,
    /// Per-component flag: `true` if the component contains a cycle — it
    /// has more than one member, or its single member has a self-edge.
    cyclic: Vec<bool>,
}

impl Condensation {
    /// Component id of node `v`.
    #[inline]
    pub fn comp_of(&self, v: usize) -> usize {
        self.comp[v] as usize
    }

    /// Number of components.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the underlying graph had no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// `true` if component `c` contains a cycle (size > 1, or a self-loop).
    #[inline]
    pub fn is_cyclic(&self, c: usize) -> bool {
        self.cyclic[c]
    }

    /// `true` if any component contains a cycle, i.e. the graph is not a DAG.
    pub fn has_cycle(&self) -> bool {
        self.cyclic.iter().any(|&c| c)
    }

    /// Longest-path height of every component in the condensation DAG,
    /// counting each edge as length 1 and every member of a source
    /// component as height 0 — the static analogue of the runtime graph's
    /// online node heights. Cyclic components collapse to a single height
    /// (the runtime would reject them anyway).
    ///
    /// `succs` re-enumerates the original graph's successor relation.
    pub fn heights(&self, mut succs: impl FnMut(usize, &mut dyn FnMut(usize))) -> Vec<u32> {
        let mut h = vec![0u32; self.components.len()];
        // Component ids are topologically sorted, so one forward pass
        // relaxes every condensation edge after its source is final.
        for (c, members) in self.components.iter().enumerate() {
            for &v in members {
                succs(v, &mut |w| {
                    let cw = self.comp[w] as usize;
                    if cw != c && h[cw] < h[c] + 1 {
                        h[cw] = h[c] + 1;
                    }
                });
            }
        }
        h
    }
}

/// Tarjan frame state, kept in flat arrays indexed by node.
const UNVISITED: u32 = u32::MAX;

/// Computes the strongly-connected components of the graph with nodes
/// `0..n` and the successor relation enumerated by `succs` (called as
/// `succs(v, &mut |w| ...)` for each node `v`; duplicate edges are fine).
///
/// Runs Tarjan's algorithm iteratively (no recursion, so deep graphs are
/// safe) and renumbers components so ids are topologically sorted —
/// sources first, sinks last. See [`Condensation`].
pub fn condense(n: usize, mut succs: impl FnMut(usize, &mut dyn FnMut(usize))) -> Condensation {
    // Materialize adjacency once: the iterative DFS needs to pause halfway
    // through a node's successor list, which a callback enumerator cannot.
    let mut adj_heads = vec![0u32; n + 1];
    let mut self_loop = vec![false; n];
    for v in 0..n {
        let mut deg = 0u32;
        succs(v, &mut |w| {
            debug_assert!(w < n, "successor {w} out of range 0..{n}");
            if w == v {
                self_loop[v] = true;
            }
            deg += 1;
        });
        adj_heads[v + 1] = adj_heads[v] + deg;
    }
    let mut adj = vec![0u32; adj_heads[n] as usize];
    let mut fill = adj_heads.clone();
    for v in 0..n {
        succs(v, &mut |w| {
            adj[fill[v] as usize] = w as u32;
            fill[v] += 1;
        });
    }

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    // DFS frames: (node, next successor offset into `adj`).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root as u32, adj_heads[root]));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let v = v as usize;
            if (*cursor as usize) < adj_heads[v + 1] as usize {
                let w = adj[*cursor as usize] as usize;
                *cursor += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, adj_heads[w]));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v roots a component: pop the stack down to it.
                    let cid = components.len() as u32;
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow") as usize;
                        on_stack[w] = false;
                        comp[w] = cid;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(members);
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order (a component is
    // finished only after everything it reaches); flip the numbering so
    // ids read sources-first.
    let total = components.len();
    components.reverse();
    for c in comp.iter_mut() {
        debug_assert_ne!(*c, UNVISITED);
        *c = (total as u32 - 1) - *c;
    }
    let cyclic = components
        .iter()
        .map(|members| members.len() > 1 || self_loop[members[0]])
        .collect();
    Condensation {
        comp,
        components,
        cyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn condense_adj(adj: &[Vec<usize>]) -> Condensation {
        condense(adj.len(), |v, f| adj[v].iter().for_each(|&w| f(w)))
    }

    #[test]
    fn empty_graph() {
        let c = condense_adj(&[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(!c.has_cycle());
    }

    #[test]
    fn dag_is_all_singletons_in_topo_order() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 (diamond)
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let c = condense_adj(&adj);
        assert_eq!(c.len(), 4);
        assert!(!c.has_cycle());
        for (v, tos) in adj.iter().enumerate() {
            for &w in tos {
                assert!(
                    c.comp_of(v) < c.comp_of(w),
                    "edge {v}->{w} must respect topological ids"
                );
            }
        }
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let c = condense_adj(&adj);
        assert_eq!(c.len(), 3);
        assert_eq!(c.comp_of(1), c.comp_of(2));
        assert!(c.is_cyclic(c.comp_of(1)));
        assert!(!c.is_cyclic(c.comp_of(0)));
        assert!(!c.is_cyclic(c.comp_of(3)));
        assert!(c.comp_of(0) < c.comp_of(1));
        assert!(c.comp_of(1) < c.comp_of(3));
        assert!(c.has_cycle());
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let adj = vec![vec![0], vec![]];
        let c = condense_adj(&adj);
        assert_eq!(c.len(), 2);
        assert!(c.is_cyclic(c.comp_of(0)));
        assert!(!c.is_cyclic(c.comp_of(1)));
    }

    #[test]
    fn two_independent_cycles() {
        // {0,1} and {2,3} disjoint cycles.
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let c = condense_adj(&adj);
        assert_eq!(c.len(), 2);
        assert_ne!(c.comp_of(0), c.comp_of(2));
        assert!(c.is_cyclic(c.comp_of(0)));
        assert!(c.is_cyclic(c.comp_of(2)));
    }

    #[test]
    fn members_cover_all_nodes_exactly_once() {
        let adj = vec![vec![1], vec![2, 4], vec![0], vec![2], vec![]];
        let c = condense_adj(&adj);
        let mut seen = vec![false; adj.len()];
        for (cid, members) in c.components.iter().enumerate() {
            for &v in members {
                assert!(!seen[v]);
                seen[v] = true;
                assert_eq!(c.comp_of(v), cid);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn heights_follow_condensation_longest_path() {
        // 0 -> 1 -> 2, 0 -> 2: heights 0,1,2. Plus a cycle {3,4} fed by 2.
        let adj = vec![vec![1, 2], vec![2], vec![3], vec![4], vec![3]];
        let c = condense_adj(&adj);
        let h = c.heights(|v, f| adj[v].iter().for_each(|&w| f(w)));
        assert_eq!(h[c.comp_of(0)], 0);
        assert_eq!(h[c.comp_of(1)], 1);
        assert_eq!(h[c.comp_of(2)], 2);
        assert_eq!(h[c.comp_of(3)], 3);
        assert_eq!(h[c.comp_of(3)], h[c.comp_of(4)], "cycle shares a height");
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node path: recursion would blow the thread stack.
        let n = 100_000;
        let c = condense(n, |v, f| {
            if v + 1 < n {
                f(v + 1)
            }
        });
        assert_eq!(c.len(), n);
        assert!(!c.has_cycle());
        assert_eq!(c.comp_of(0), 0);
        assert_eq!(c.comp_of(n - 1), n - 1);
    }

    #[test]
    fn parallel_edges_are_tolerated() {
        let adj = vec![vec![1, 1, 1], vec![]];
        let c = condense_adj(&adj);
        assert_eq!(c.len(), 2);
        assert!(!c.has_cycle());
    }
}
