//! Dependency-graph substrate for the Alphonse incremental-computation
//! runtime.
//!
//! This crate implements the low-level machinery described in Sections 4.1
//! and 9.2 of *Alphonse: Incremental Computation as a Programming
//! Abstraction* (Hoover, PLDI 1992):
//!
//! * [`DepGraph`] — an arena of dependency nodes connected by bidirectional
//!   edges stored in intrusive doubly-linked lists, so that removing all
//!   predecessor edges of a node (the `RemovePredEdges` step of the paper's
//!   Algorithm 5) costs O(1) per edge, which Section 9.2 relies on for the
//!   overall O(T) translation bound.
//! * Longest-path **heights** maintained online per node, used to process the
//!   inconsistent set in (approximate) topological order as suggested in
//!   Section 4.5.
//! * [`UnionFind`] — the disjoint-set structure used by the dynamic graph
//!   partitioning optimization of Section 6.3.
//! * [`HeightQueue`] — the *inconsistent set*: a priority queue of dirty
//!   nodes ordered by height, with set semantics (re-inserting a queued node
//!   is a no-op).
//! * [`scc`] — Tarjan strongly-connected components and condensation, the
//!   compile-time counterpart of the online heights: static strata, cycle
//!   candidates, and callee-first scheduling for the effect fixpoint.
//!
//! The graph stores topology only. Cached values, consistency flags and
//! evaluation strategies live in the `alphonse` runtime crate layered on
//! top.
//!
//! # Example
//!
//! ```
//! use alphonse_graph::DepGraph;
//!
//! let mut g = DepGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b); // b depends on a
//! assert_eq!(g.succs(b).count(), 0);
//! assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b]);
//! assert!(g.height(b) > g.height(a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod queue;
pub mod scc;
mod union_find;

pub use graph::{DepGraph, NodeId, Preds, Succs};
pub use queue::HeightQueue;
pub use scc::{condense, Condensation};
pub use union_find::UnionFind;
