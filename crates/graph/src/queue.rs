//! The inconsistent set: a height-ordered priority queue with set semantics.

use crate::NodeId;
use alphonse_mem as mem;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A set of dirty dependency-graph nodes drained in ascending height order.
///
/// This realizes the paper's *inconsistent set* (Section 4.4) together with
/// the topological-order selection policy of Section 4.5: draining nodes in
/// ascending longest-path height approximates a topological order of the
/// dependency DAG, which minimizes redundant re-executions during quiescence
/// propagation.
///
/// Inserting a node that is already queued is a no-op, so the structure
/// behaves as a set. Heights are captured at insertion time; if a node's
/// height changes while queued the stale priority is tolerated (correctness
/// of quiescence propagation does not depend on the order, only its
/// efficiency does).
///
/// # Example
///
/// ```
/// use alphonse_graph::{DepGraph, HeightQueue};
/// let mut g = DepGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b);
/// let mut q = HeightQueue::new();
/// q.insert(b, g.height(b));
/// q.insert(a, g.height(a));
/// q.insert(a, g.height(a)); // duplicate, ignored
/// assert_eq!(q.pop(), Some(a));
/// assert_eq!(q.pop(), Some(b));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct HeightQueue {
    heap: BinaryHeap<(Reverse<u32>, NodeId)>,
    members: HashSet<NodeId>,
}

impl HeightQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate heap bytes held by the queue, from container capacities
    /// (hash-set overhead charged per element). Feeds the runtime's
    /// `mem_bytes_hwm` gauge.
    pub fn approx_bytes(&self) -> u64 {
        let heap = self.heap.capacity() * std::mem::size_of::<(Reverse<u32>, NodeId)>();
        let members = self.members.capacity() * std::mem::size_of::<NodeId>();
        (heap + members) as u64
    }

    /// Inserts `n` with priority `height` unless it is already queued.
    /// Returns `true` if the node was newly inserted.
    pub fn insert(&mut self, n: NodeId, height: u32) -> bool {
        let _mem = mem::scope(mem::Tag::Queues);
        if self.members.insert(n) {
            self.heap.push((Reverse(height), n));
            true
        } else {
            false
        }
    }

    /// Removes and returns the queued node with the smallest height.
    pub fn pop(&mut self) -> Option<NodeId> {
        while let Some((_, n)) = self.heap.pop() {
            if self.members.remove(&n) {
                return Some(n);
            }
            // Stale heap entry for a node removed via `remove`; skip.
        }
        None
    }

    /// Drains every queued node at the current minimum height into `out`,
    /// returning that height (or `None` if the queue is empty).
    ///
    /// The batch is removed from the set *before* the caller sees it, so a
    /// node re-inserted at the drained height while the batch is being
    /// processed lands in a subsequent level, never in the in-flight one.
    /// Within the level, nodes come out in the same order repeated [`pop`]
    /// calls would produce (descending `NodeId` — the heap's tie order),
    /// which keeps a level-at-a-time drain a stable reordering of the
    /// one-at-a-time drain.
    ///
    /// [`pop`]: HeightQueue::pop
    pub fn pop_level(&mut self, out: &mut Vec<NodeId>) -> Option<u32> {
        let _mem = mem::scope(mem::Tag::Queues);
        let mut level: Option<u32> = None;
        while let Some(&(Reverse(h), n)) = self.heap.peek() {
            if let Some(l) = level {
                if h != l {
                    break;
                }
            }
            self.heap.pop();
            if self.members.remove(&n) {
                level = Some(h);
                out.push(n);
            }
            // Stale heap entries (nodes removed via `remove`) are skipped
            // without pinning the level height.
        }
        level
    }

    /// Removes `n` from the set if queued. Returns `true` if it was present.
    pub fn remove(&mut self, n: NodeId) -> bool {
        self.members.remove(&n)
    }

    /// Returns `true` if `n` is currently queued.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.contains(&n)
    }

    /// Visits every queued node, in no particular order.
    pub fn for_each_member(&self, mut f: impl FnMut(NodeId)) {
        for &n in &self.members {
            f(n);
        }
    }

    /// Number of queued nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if no nodes are queued.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Moves every element of `other` into `self` (used when two graph
    /// partitions are unioned, Section 6.3).
    pub fn absorb(&mut self, other: &mut HeightQueue) {
        let _mem = mem::scope(mem::Tag::Queues);
        for (h, n) in other.heap.drain() {
            if other.members.remove(&n) && self.members.insert(n) {
                self.heap.push((h, n));
            }
        }
        other.members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DepGraph;

    fn nodes(n: usize) -> Vec<NodeId> {
        let mut g = DepGraph::new();
        (0..n).map(|_| g.add_node()).collect()
    }

    #[test]
    fn pops_in_height_order() {
        let ns = nodes(4);
        let mut q = HeightQueue::new();
        q.insert(ns[0], 7);
        q.insert(ns[1], 1);
        q.insert(ns[2], 4);
        q.insert(ns[3], 0);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![ns[3], ns[1], ns[2], ns[0]]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let ns = nodes(1);
        let mut q = HeightQueue::new();
        assert!(q.insert(ns[0], 3));
        assert!(!q.insert(ns[0], 5));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(ns[0]));
        assert!(q.is_empty());
    }

    #[test]
    fn remove_cancels_queued_node() {
        let ns = nodes(2);
        let mut q = HeightQueue::new();
        q.insert(ns[0], 0);
        q.insert(ns[1], 1);
        assert!(q.remove(ns[0]));
        assert!(!q.remove(ns[0]));
        assert_eq!(q.pop(), Some(ns[1]));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn contains_tracks_membership() {
        let ns = nodes(1);
        let mut q = HeightQueue::new();
        assert!(!q.contains(ns[0]));
        q.insert(ns[0], 0);
        assert!(q.contains(ns[0]));
        q.pop();
        assert!(!q.contains(ns[0]));
    }

    #[test]
    fn absorb_merges_and_empties_other() {
        let ns = nodes(4);
        let mut a = HeightQueue::new();
        let mut b = HeightQueue::new();
        a.insert(ns[0], 2);
        b.insert(ns[1], 0);
        b.insert(ns[0], 9); // duplicate of a's element
        b.insert(ns[2], 1);
        a.absorb(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.len(), 3);
        assert_eq!(a.pop(), Some(ns[1]));
        assert_eq!(a.pop(), Some(ns[2]));
        assert_eq!(a.pop(), Some(ns[0]));
    }

    #[test]
    fn pop_level_drains_one_height_at_a_time() {
        let ns = nodes(5);
        let mut q = HeightQueue::new();
        q.insert(ns[0], 1);
        q.insert(ns[1], 0);
        q.insert(ns[2], 1);
        q.insert(ns[3], 0);
        q.insert(ns[4], 2);
        let mut batch = Vec::new();
        assert_eq!(q.pop_level(&mut batch), Some(0));
        batch.sort();
        assert_eq!(batch, vec![ns[1], ns[3]]);
        batch.clear();
        assert_eq!(q.pop_level(&mut batch), Some(1));
        batch.sort();
        assert_eq!(batch, vec![ns[0], ns[2]]);
        batch.clear();
        assert_eq!(q.pop_level(&mut batch), Some(2));
        assert_eq!(batch, vec![ns[4]]);
        batch.clear();
        assert_eq!(q.pop_level(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_level_matches_pop_order_within_a_level() {
        // The level drain must be a stable reordering of the one-at-a-time
        // drain: same members, same within-level sequence.
        let ns = nodes(6);
        let mut a = HeightQueue::new();
        let mut b = HeightQueue::new();
        for (i, &n) in ns.iter().enumerate() {
            a.insert(n, (i % 2) as u32);
            b.insert(n, (i % 2) as u32);
        }
        let mut level_order = Vec::new();
        while a.pop_level(&mut level_order).is_some() {}
        let pop_order: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(level_order, pop_order);
    }

    #[test]
    fn same_height_reinsert_during_drain_joins_next_level() {
        // A node re-queued at the height currently being drained must NOT
        // join the in-flight batch: pop_level removed the batch from the
        // set before the caller processes it.
        let ns = nodes(3);
        let mut q = HeightQueue::new();
        q.insert(ns[0], 4);
        q.insert(ns[1], 4);
        let mut batch = Vec::new();
        assert_eq!(q.pop_level(&mut batch), Some(4));
        assert_eq!(batch.len(), 2);
        // "While the batch executes", ns[2] and a batch member are dirtied
        // at the very height just drained.
        assert!(q.insert(ns[2], 4));
        assert!(q.insert(ns[0], 4));
        let mut next = Vec::new();
        assert_eq!(q.pop_level(&mut next), Some(4));
        next.sort();
        assert_eq!(next, vec![ns[0], ns[2]]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_level_skips_stale_entries() {
        let ns = nodes(3);
        let mut q = HeightQueue::new();
        q.insert(ns[0], 0);
        q.insert(ns[1], 1);
        q.insert(ns[2], 1);
        assert!(q.remove(ns[0])); // leaves a stale heap entry at height 0
        assert!(q.remove(ns[2])); // stale entry inside the next level
        let mut batch = Vec::new();
        // The stale height-0 entry must not pin the level to height 0.
        assert_eq!(q.pop_level(&mut batch), Some(1));
        assert_eq!(batch, vec![ns[1]]);
        assert_eq!(q.pop_level(&mut batch), None);
    }

    #[test]
    fn reinsert_after_pop_works() {
        let ns = nodes(1);
        let mut q = HeightQueue::new();
        q.insert(ns[0], 1);
        assert_eq!(q.pop(), Some(ns[0]));
        assert!(q.insert(ns[0], 2));
        assert_eq!(q.pop(), Some(ns[0]));
    }
}
