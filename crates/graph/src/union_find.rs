//! Disjoint-set forest used for dynamic dependency-graph partitioning.

use crate::NodeId;

/// Union-find with union by size and path halving.
///
/// Section 6.3 of the paper refines static graph partitioning with a dynamic
/// analysis: "we keep disjoint sets of unconnected nodes using the
/// union/find algorithm. New dependency graph nodes are placed in their own
/// unique set. Upon adding an edge from x to y, we perform a union between
/// the sets that contain x and y." Each resulting component carries its own
/// inconsistent set, so a demand for a value in one component is never
/// blocked on changes pending in another. Section 9.2 notes the cost: the
/// translation bound becomes O(T · α(M)) where α is the inverse Ackermann
/// function.
///
/// # Example
///
/// ```
/// use alphonse_graph::{DepGraph, UnionFind};
/// let mut g = DepGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// let mut uf = UnionFind::new();
/// for n in [a, b, c] { uf.ensure(n); }
/// assert_ne!(uf.find(a), uf.find(b));
/// uf.union(a, b);
/// assert_eq!(uf.find(a), uf.find(b));
/// assert_ne!(uf.find(a), uf.find(c));
/// ```
#[derive(Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes sure `n` has a singleton set (no-op if already present).
    pub fn ensure(&mut self, n: NodeId) {
        let i = n.index();
        while self.parent.len() <= i {
            let next = u32::try_from(self.parent.len()).expect("too many nodes");
            self.parent.push(next);
            self.size.push(1);
        }
    }

    /// Returns the canonical representative of `n`'s component.
    ///
    /// # Panics
    ///
    /// Panics if `n` was never passed to [`UnionFind::ensure`].
    pub fn find(&mut self, n: NodeId) -> NodeId {
        let mut x = n.index();
        assert!(x < self.parent.len(), "find on unknown node {n:?}");
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp; // path halving
            x = gp as usize;
        }
        NodeId::from_index(x)
    }

    /// Merges the components of `a` and `b`.
    ///
    /// Returns `Some((winner, loser))` — the surviving root and the root
    /// absorbed into it — so callers can merge per-component auxiliary data
    /// (e.g. inconsistent sets). Returns `None` if they were already in the
    /// same component.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> Option<(NodeId, NodeId)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (win, lose) = if self.size[ra.index()] >= self.size[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lose.index()] = u32::try_from(win.index()).expect("node index overflow");
        self.size[win.index()] += self.size[lose.index()];
        Some((win, lose))
    }

    /// Size of the component containing `n`.
    pub fn component_size(&mut self, n: NodeId) -> usize {
        let r = self.find(n);
        self.size[r.index()] as usize
    }

    /// Number of nodes known to the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DepGraph;

    fn nodes(n: usize) -> Vec<NodeId> {
        let mut g = DepGraph::new();
        (0..n).map(|_| g.add_node()).collect()
    }

    #[test]
    fn singletons_start_separate() {
        let ns = nodes(3);
        let mut uf = UnionFind::new();
        for &n in &ns {
            uf.ensure(n);
        }
        assert_ne!(uf.find(ns[0]), uf.find(ns[1]));
        assert_eq!(uf.component_size(ns[0]), 1);
    }

    #[test]
    fn union_merges_and_reports_roots() {
        let ns = nodes(4);
        let mut uf = UnionFind::new();
        for &n in &ns {
            uf.ensure(n);
        }
        let (w1, l1) = uf.union(ns[0], ns[1]).unwrap();
        assert_ne!(w1, l1);
        assert_eq!(uf.find(ns[0]), uf.find(ns[1]));
        // Second union of same sets is a no-op.
        assert!(uf.union(ns[0], ns[1]).is_none());
        // Union by size: the pair should absorb the singleton.
        let (w2, _) = uf.union(ns[2], ns[0]).unwrap();
        assert_eq!(w2, uf.find(ns[0]));
        assert_eq!(uf.component_size(ns[2]), 3);
        assert_eq!(uf.component_size(ns[3]), 1);
    }

    #[test]
    fn ensure_is_idempotent_and_sparse() {
        let ns = nodes(10);
        let mut uf = UnionFind::new();
        uf.ensure(ns[7]); // fills 0..=7
        uf.ensure(ns[3]);
        assert_eq!(uf.len(), 8);
        assert_eq!(uf.find(ns[3]), ns[3]);
    }

    #[test]
    fn long_chain_compresses() {
        let ns = nodes(100);
        let mut uf = UnionFind::new();
        for &n in &ns {
            uf.ensure(n);
        }
        for w in ns.windows(2) {
            uf.union(w[0], w[1]);
        }
        let root = uf.find(ns[0]);
        for &n in &ns {
            assert_eq!(uf.find(n), root);
        }
        assert_eq!(uf.component_size(ns[50]), 100);
    }
}
