//! Attribute grammars as Alphonse programs (paper Section 7.1).
//!
//! The paper shows that Alphonse *subsumes* attribute-grammar systems: each
//! production becomes an object type, synthesized attribute equations become
//! zero-argument `(*MAINTAINED*)` methods, and inherited equations become
//! one-argument maintained methods that dispatch on the asking child. This
//! crate packages that translation as a reusable toolkit:
//!
//! * [`Grammar`] / [`GrammarBuilder`] — declare productions, synthesized and
//!   inherited attributes, and their equations (plain Rust closures).
//! * [`AgTree`] — derivation trees whose structure (child links, parent
//!   pointers, terminal values) is tracked storage, so tree edits invalidate
//!   exactly the affected attribute instances.
//! * [`AgEvaluator`] — the incremental evaluator: attribute instances are
//!   maintained method instances of the Alphonse runtime.
//! * [`ExhaustiveAg`] — the conventional-execution baseline, for experiment
//!   E6.
//! * [`LetLang`] — the paper's let-expression grammar (Algorithms 6–9),
//!   with a parser and a reference evaluator.
//!
//! # Example
//!
//! ```
//! use alphonse::Runtime;
//! use alphonse_agkit::{AgEvaluator, LetLang, parse_let};
//!
//! let rt = Runtime::new();
//! let (tree, lang) = LetLang::tree(&rt);
//! let expr = parse_let("let x = 20 in x + x + 2 ni").unwrap();
//! let (root, _) = expr.instantiate(&tree, &lang);
//! let eval = AgEvaluator::new(&rt, tree);
//! assert_eq!(eval.syn(root, lang.value).as_int(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod grammar;
mod let_lang;
mod tree;
mod value;

pub use eval::{AgEvaluator, ExhaustiveAg};
pub use grammar::{
    AttrBackend, Grammar, GrammarBuilder, InhCtx, InhEq, InhId, ProdId, SynCtx, SynEq, SynId,
};
pub use let_lang::{parse_let, LetExpr, LetLang};
pub use tree::{AgNodeId, AgTree};
pub use value::{AttrVal, Env};
