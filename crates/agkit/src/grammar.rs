//! Attribute-grammar definitions.
//!
//! Following the paper's Section 7.1 translation, a grammar is a set of
//! productions; each production instance becomes an object; synthesized
//! attributes become zero-argument maintained methods and inherited
//! attributes become one-argument maintained methods whose argument selects
//! the child context. Equations are Rust closures evaluated against a
//! [`SynCtx`] / [`InhCtx`] that routes attribute references through
//! whichever evaluator (incremental or exhaustive) is running them.

use crate::tree::{AgNodeId, AgTree};
use crate::value::AttrVal;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a production.
pub type ProdId = usize;
/// Index of a synthesized attribute.
pub type SynId = usize;
/// Index of an inherited attribute.
pub type InhId = usize;

/// How attribute references are answered during equation evaluation.
/// Implemented by both the Alphonse evaluator and the exhaustive baseline.
pub trait AttrBackend {
    /// Value of synthesized attribute `attr` at `node`.
    fn syn(&self, node: AgNodeId, attr: SynId) -> AttrVal;
    /// Value of inherited attribute `attr` at `node`.
    fn inh(&self, node: AgNodeId, attr: InhId) -> AttrVal;
    /// The attributed tree.
    fn tree(&self) -> &AgTree;
}

/// Evaluation context of a synthesized-attribute equation at a production
/// instance (the paper's object `o`).
pub struct SynCtx<'a> {
    pub(crate) backend: &'a dyn AttrBackend,
    pub(crate) node: AgNodeId,
}

impl SynCtx<'_> {
    /// Synthesized attribute of the `i`-th child (`o.p(Ni).a()`).
    pub fn child_syn(&self, i: usize, attr: SynId) -> AttrVal {
        let child = self
            .backend
            .tree()
            .child(self.node, i)
            .expect("equation references a missing child");
        self.backend.syn(child, attr)
    }

    /// Own inherited attribute (`o.parent.a(o)` in the paper's encoding).
    pub fn inh(&self, attr: InhId) -> AttrVal {
        self.backend.inh(self.node, attr)
    }

    /// Terminal symbol value `i` of this production instance.
    pub fn terminal(&self, i: usize) -> AttrVal {
        self.backend.tree().terminal(self.node, i)
    }
}

/// Evaluation context of an inherited-attribute equation: evaluated *at the
/// parent* production instance for a specific child position — the
/// one-argument method with context dispatch of Section 7.1.
pub struct InhCtx<'a> {
    pub(crate) backend: &'a dyn AttrBackend,
    /// The parent production instance (the paper's `o`).
    pub(crate) parent: AgNodeId,
    /// Which child of the parent is asking (resolved from the paper's
    /// `IF c = o.expl THEN …` case analysis).
    pub(crate) child_index: usize,
}

impl InhCtx<'_> {
    /// The child position whose attribute is being defined.
    pub fn child_index(&self) -> usize {
        self.child_index
    }

    /// The parent's own inherited attribute (`o.parent.env(o)`).
    pub fn parent_inh(&self, attr: InhId) -> AttrVal {
        self.backend.inh(self.parent, attr)
    }

    /// Synthesized attribute of the `i`-th child of the parent
    /// (`o.expl.value()`).
    pub fn child_syn(&self, i: usize, attr: SynId) -> AttrVal {
        let child = self
            .backend
            .tree()
            .child(self.parent, i)
            .expect("equation references a missing child");
        self.backend.syn(child, attr)
    }

    /// Terminal symbol value `i` of the parent production instance.
    pub fn terminal(&self, i: usize) -> AttrVal {
        self.backend.tree().terminal(self.parent, i)
    }
}

/// Signature of a synthesized equation.
pub type SynEq = Arc<dyn Fn(&SynCtx<'_>) -> AttrVal + Send + Sync>;
/// Signature of an inherited equation.
pub type InhEq = Arc<dyn Fn(&InhCtx<'_>) -> AttrVal + Send + Sync>;

pub(crate) struct ProdSpec {
    pub(crate) name: String,
    pub(crate) arity: usize,
    pub(crate) terminals: usize,
}

/// A complete attribute grammar: productions, attributes and equations.
pub struct Grammar {
    pub(crate) prods: Vec<ProdSpec>,
    pub(crate) syn_names: Vec<String>,
    pub(crate) inh_names: Vec<String>,
    pub(crate) syn_eqs: HashMap<(ProdId, SynId), SynEq>,
    pub(crate) inh_eqs: HashMap<(ProdId, usize, InhId), InhEq>,
}

impl fmt::Debug for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grammar")
            .field("productions", &self.prods.len())
            .field("synthesized", &self.syn_names)
            .field("inherited", &self.inh_names)
            .finish()
    }
}

impl Grammar {
    /// Starts building a grammar.
    pub fn builder() -> GrammarBuilder {
        GrammarBuilder::default()
    }

    /// Production name (for diagnostics).
    pub fn prod_name(&self, p: ProdId) -> &str {
        &self.prods[p].name
    }

    /// Number of children of production `p`.
    pub fn arity(&self, p: ProdId) -> usize {
        self.prods[p].arity
    }

    /// Number of productions.
    pub fn prod_count(&self) -> usize {
        self.prods.len()
    }

    pub(crate) fn syn_eq(&self, p: ProdId, a: SynId) -> &SynEq {
        self.syn_eqs.get(&(p, a)).unwrap_or_else(|| {
            panic!(
                "no equation for synthesized attribute {} on production {}",
                self.syn_names[a], self.prods[p].name
            )
        })
    }

    pub(crate) fn inh_eq(&self, p: ProdId, child: usize, a: InhId) -> &InhEq {
        self.inh_eqs.get(&(p, child, a)).unwrap_or_else(|| {
            panic!(
                "no equation for inherited attribute {} of child {} in production {}",
                self.inh_names[a], child, self.prods[p].name
            )
        })
    }
}

/// Incremental builder for [`Grammar`].
///
/// # Example
///
/// ```
/// use alphonse_agkit::{AttrVal, Grammar};
/// let mut g = Grammar::builder();
/// let value = g.synthesized("value");
/// let num = g.production("Num", 0, 1); // no children, one terminal
/// let add = g.production("Add", 2, 0);
/// g.syn_eq(num, value, |ctx| ctx.terminal(0));
/// g.syn_eq(add, value, move |ctx| {
///     AttrVal::Int(ctx.child_syn(0, value).as_int() + ctx.child_syn(1, value).as_int())
/// });
/// let grammar = g.build();
/// assert_eq!(grammar.prod_count(), 2);
/// ```
#[derive(Default)]
pub struct GrammarBuilder {
    prods: Vec<ProdSpec>,
    syn_names: Vec<String>,
    inh_names: Vec<String>,
    syn_eqs: HashMap<(ProdId, SynId), SynEq>,
    inh_eqs: HashMap<(ProdId, usize, InhId), InhEq>,
}

impl GrammarBuilder {
    /// Declares a synthesized attribute.
    pub fn synthesized(&mut self, name: &str) -> SynId {
        self.syn_names.push(name.to_string());
        self.syn_names.len() - 1
    }

    /// Declares an inherited attribute.
    pub fn inherited(&mut self, name: &str) -> InhId {
        self.inh_names.push(name.to_string());
        self.inh_names.len() - 1
    }

    /// Declares a production with `arity` nonterminal children and
    /// `terminals` terminal-value slots.
    pub fn production(&mut self, name: &str, arity: usize, terminals: usize) -> ProdId {
        self.prods.push(ProdSpec {
            name: name.to_string(),
            arity,
            terminals,
        });
        self.prods.len() - 1
    }

    /// Defines the equation for synthesized attribute `a` of production `p`.
    pub fn syn_eq(
        &mut self,
        p: ProdId,
        a: SynId,
        eq: impl Fn(&SynCtx<'_>) -> AttrVal + Send + Sync + 'static,
    ) {
        self.syn_eqs.insert((p, a), Arc::new(eq));
    }

    /// Defines the equation for inherited attribute `a` of child `child` in
    /// production `p`.
    pub fn inh_eq(
        &mut self,
        p: ProdId,
        child: usize,
        a: InhId,
        eq: impl Fn(&InhCtx<'_>) -> AttrVal + Send + Sync + 'static,
    ) {
        self.inh_eqs.insert((p, child, a), Arc::new(eq));
    }

    /// Finishes the grammar.
    ///
    /// # Panics
    ///
    /// Panics if an inherited equation names a child position out of range.
    pub fn build(self) -> Grammar {
        for (p, child, _) in self.inh_eqs.keys() {
            assert!(
                *child < self.prods[*p].arity,
                "inherited equation for child {child} of {} (arity {})",
                self.prods[*p].name,
                self.prods[*p].arity
            );
        }
        Grammar {
            prods: self.prods,
            syn_names: self.syn_names,
            inh_names: self.inh_names,
            syn_eqs: self.syn_eqs,
            inh_eqs: self.inh_eqs,
        }
    }
}
