//! Attribute values, including persistent environments.
//!
//! The paper's let-expression grammar (Algorithm 6) assumes "a
//! representation of environments with EmptyEnv, UpdateEnv and LookupEnv
//! operations" — a keyed set of (identifier, value) pairs. [`Env`] provides
//! that as a persistent association list, so environment values can be
//! cached and compared for quiescence cutoff like any other value.

use std::fmt;
use std::sync::Arc;

/// A value of an attribute instance.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrVal {
    /// Integer attribute.
    Int(i64),
    /// Text attribute.
    Text(Arc<str>),
    /// Boolean attribute.
    Bool(bool),
    /// Environment attribute (for inherited contexts).
    Env(Env),
    /// Absent / unit value.
    Unit,
}

impl AttrVal {
    /// Text helper.
    pub fn text(s: &str) -> AttrVal {
        AttrVal::Text(Arc::from(s))
    }

    /// Extracts an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`AttrVal::Int`].
    pub fn as_int(&self) -> i64 {
        match self {
            AttrVal::Int(v) => *v,
            other => panic!("expected Int attribute, found {other:?}"),
        }
    }

    /// Extracts an environment.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`AttrVal::Env`].
    pub fn as_env(&self) -> Env {
        match self {
            AttrVal::Env(e) => e.clone(),
            other => panic!("expected Env attribute, found {other:?}"),
        }
    }

    /// Extracts a text.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`AttrVal::Text`].
    pub fn as_text(&self) -> Arc<str> {
        match self {
            AttrVal::Text(s) => Arc::clone(s),
            other => panic!("expected Text attribute, found {other:?}"),
        }
    }
}

impl fmt::Display for AttrVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrVal::Int(v) => write!(f, "{v}"),
            AttrVal::Text(s) => write!(f, "{s}"),
            AttrVal::Bool(b) => write!(f, "{b}"),
            AttrVal::Env(e) => write!(f, "{e}"),
            AttrVal::Unit => write!(f, "()"),
        }
    }
}

struct EnvFrame {
    name: Arc<str>,
    value: AttrVal,
    rest: Env,
}

/// A persistent environment: `EmptyEnv` / `UpdateEnv` / `LookupEnv` of the
/// paper's Algorithm 6.
///
/// # Example
///
/// ```
/// use alphonse_agkit::{AttrVal, Env};
/// let e = Env::empty().update("x", AttrVal::Int(1)).update("y", AttrVal::Int(2));
/// assert_eq!(e.lookup("x"), Some(AttrVal::Int(1)));
/// let shadowed = e.update("x", AttrVal::Int(9));
/// assert_eq!(shadowed.lookup("x"), Some(AttrVal::Int(9)));
/// assert_eq!(e.lookup("x"), Some(AttrVal::Int(1)), "persistence");
/// ```
#[derive(Clone, Default)]
pub struct Env(Option<Arc<EnvFrame>>);

impl Env {
    /// `EmptyEnv()`.
    pub fn empty() -> Env {
        Env(None)
    }

    /// `UpdateEnv(env, name, value)` — returns an extended environment; the
    /// original is unchanged.
    #[must_use]
    pub fn update(&self, name: &str, value: AttrVal) -> Env {
        Env(Some(Arc::new(EnvFrame {
            name: Arc::from(name),
            value,
            rest: self.clone(),
        })))
    }

    /// `LookupEnv(env, name)` — innermost binding wins.
    pub fn lookup(&self, name: &str) -> Option<AttrVal> {
        let mut cur = self;
        while let Some(frame) = &cur.0 {
            if &*frame.name == name {
                return Some(frame.value.clone());
            }
            cur = &frame.rest;
        }
        None
    }

    /// Number of (possibly shadowed) bindings.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(frame) = &cur.0 {
            n += 1;
            cur = &frame.rest;
        }
        n
    }

    /// Returns `true` for the empty environment.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

impl PartialEq for Env {
    fn eq(&self, other: &Self) -> bool {
        // Fast path: same spine.
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                a.name == b.name && a.value == b.value && a.rest == b.rest
            }
            _ => false,
        }
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut cur = self;
        let mut first = true;
        while let Some(frame) = &cur.0 {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", frame.name, frame.value)?;
            first = false;
            cur = &frame.rest;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookup_is_none() {
        assert_eq!(Env::empty().lookup("x"), None);
        assert!(Env::empty().is_empty());
    }

    #[test]
    fn update_shadows() {
        let e = Env::empty()
            .update("x", AttrVal::Int(1))
            .update("x", AttrVal::Int(2));
        assert_eq!(e.lookup("x"), Some(AttrVal::Int(2)));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn structural_equality() {
        let a = Env::empty().update("x", AttrVal::Int(1));
        let b = Env::empty().update("x", AttrVal::Int(1));
        let c = Env::empty().update("x", AttrVal::Int(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.clone(), a, "ptr-eq fast path");
    }

    #[test]
    fn attr_val_accessors() {
        assert_eq!(AttrVal::Int(3).as_int(), 3);
        assert_eq!(&*AttrVal::text("hi").as_text(), "hi");
        let e = Env::empty().update("k", AttrVal::Unit);
        assert_eq!(AttrVal::Env(e.clone()).as_env(), e);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_env() {
        AttrVal::Env(Env::empty()).as_int();
    }

    #[test]
    fn display_forms() {
        let e = Env::empty().update("x", AttrVal::Int(1));
        assert_eq!(format!("{e}"), "{x=1}");
        assert_eq!(AttrVal::Unit.to_string(), "()");
    }
}
