//! Attributed derivation trees with tracked structure.
//!
//! A node is a production instance (the paper's dynamically allocated
//! object). Parent pointers, child links and terminal values are all
//! Alphonse variables, so the incremental evaluator's equations
//! automatically depend on exactly the structure they traverse, and
//! editing the tree (subtree replacement, terminal edits) invalidates
//! precisely the affected attribute instances.

use crate::grammar::{Grammar, ProdId};
use crate::value::AttrVal;
use alphonse::{Runtime, Var};
use alphonse_mem as mem;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

/// Locks the node table. The arena is used from one thread at a time, so
/// contention means a method body re-entered the store while a guard was
/// live — fail stop, mirroring the `RefCell` panic this lock replaced.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => panic!("attributed tree re-entered while locked"),
    }
}

/// A production instance in the attributed tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgNodeId(u32);

impl AgNodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ag{}", self.0)
    }
}

struct NodeData {
    prod: ProdId,
    parent: Var<Option<AgNodeId>>,
    children: Vec<Var<Option<AgNodeId>>>,
    terminals: Vec<Var<AttrVal>>,
}

/// The attributed tree: an arena of production instances.
pub struct AgTree {
    rt: Runtime,
    grammar: Arc<Grammar>,
    nodes: Mutex<Vec<NodeData>>,
}

impl fmt::Debug for AgTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AgTree")
            .field("nodes", &lock(&self.nodes).len())
            .finish()
    }
}

impl AgTree {
    /// Creates an empty tree over `grammar`, tracked in `rt`.
    pub fn new(rt: &Runtime, grammar: Arc<Grammar>) -> Arc<AgTree> {
        let _mem = mem::scope(mem::Tag::Substrate);
        Arc::new(AgTree {
            rt: rt.clone(),
            grammar,
            nodes: Mutex::new(Vec::new()),
        })
    }

    /// The runtime structure edits are tracked in.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The grammar this tree instantiates.
    pub fn grammar(&self) -> &Arc<Grammar> {
        &self.grammar
    }

    /// Number of production instances.
    pub fn len(&self) -> usize {
        lock(&self.nodes).len()
    }

    /// Returns `true` if no nodes exist.
    pub fn is_empty(&self) -> bool {
        lock(&self.nodes).is_empty()
    }

    /// Allocates an instance of production `prod` with the given terminal
    /// values and no children attached.
    ///
    /// # Panics
    ///
    /// Panics if the terminal count does not match the production.
    pub fn new_node(&self, prod: ProdId, terminals: Vec<AttrVal>) -> AgNodeId {
        let spec_arity = self.grammar.arity(prod);
        let spec_terms = self.grammar.prods[prod].terminals;
        assert_eq!(
            terminals.len(),
            spec_terms,
            "production {} takes {spec_terms} terminal(s)",
            self.grammar.prod_name(prod)
        );
        let mut nodes = lock(&self.nodes);
        let _mem = mem::scope(mem::Tag::Substrate);
        let id = AgNodeId(u32::try_from(nodes.len()).expect("too many AG nodes"));
        let data = if self.rt.tracing() {
            // Trace labels name each structural var after the production and
            // slot ("Plus#4.child0") so graph exports stay readable. Skipped
            // entirely on untraced runtimes.
            let name = self.grammar.prod_name(prod);
            let base = format!("{}#{}", name, id.0);
            NodeData {
                prod,
                parent: self.rt.var_named(&format!("{base}.parent"), None),
                children: (0..spec_arity)
                    .map(|i| self.rt.var_named(&format!("{base}.child{i}"), None))
                    .collect(),
                terminals: terminals
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| self.rt.var_named(&format!("{base}.term{i}"), v))
                    .collect(),
            }
        } else {
            NodeData {
                prod,
                parent: self.rt.var(None),
                children: (0..spec_arity).map(|_| self.rt.var(None)).collect(),
                terminals: terminals.into_iter().map(|v| self.rt.var(v)).collect(),
            }
        };
        nodes.push(data);
        id
    }

    /// Builds a node and attaches children in one step.
    pub fn build(&self, prod: ProdId, terminals: Vec<AttrVal>, children: &[AgNodeId]) -> AgNodeId {
        let n = self.new_node(prod, terminals);
        for (i, &c) in children.iter().enumerate() {
            self.set_child(n, i, Some(c));
        }
        n
    }

    /// Production of a node.
    pub fn prod(&self, n: AgNodeId) -> ProdId {
        lock(&self.nodes)[n.index()].prod
    }

    /// Parent of a node (tracked read).
    pub fn parent(&self, n: AgNodeId) -> Option<AgNodeId> {
        let var = lock(&self.nodes)[n.index()].parent;
        // Borrow-based read: attribute rules chase these links constantly.
        var.with(&self.rt, |&p| p)
    }

    /// Child `i` of a node (tracked read).
    pub fn child(&self, n: AgNodeId, i: usize) -> Option<AgNodeId> {
        let var = lock(&self.nodes)[n.index()].children[i];
        var.with(&self.rt, |&c| c)
    }

    /// Terminal value `i` of a node (tracked read).
    pub fn terminal(&self, n: AgNodeId, i: usize) -> AttrVal {
        let var = lock(&self.nodes)[n.index()].terminals[i];
        var.get(&self.rt)
    }

    /// Attaches (or detaches with `None`) child `i` of `n`, maintaining the
    /// parent pointer — the tree edit that drives incremental re-attribution.
    pub fn set_child(&self, n: AgNodeId, i: usize, child: Option<AgNodeId>) {
        let (child_var, old) = {
            let nodes = lock(&self.nodes);
            let var = nodes[n.index()].children[i];
            (var, var.get(&self.rt))
        };
        if let Some(old) = old {
            let pvar = lock(&self.nodes)[old.index()].parent;
            // Only sever the back pointer if it still points here: the old
            // child may have been re-parented first (e.g. grafting a node
            // into a wider structure before swapping it in).
            if pvar.with(&self.rt, |&p| p == Some(n)) {
                pvar.set(&self.rt, None);
            }
        }
        child_var.set(&self.rt, child);
        if let Some(c) = child {
            let pvar = lock(&self.nodes)[c.index()].parent;
            pvar.set(&self.rt, Some(n));
        }
    }

    /// Overwrites terminal `i` of `n` (e.g. editing a literal in place).
    pub fn set_terminal(&self, n: AgNodeId, i: usize, v: AttrVal) {
        let var = lock(&self.nodes)[n.index()].terminals[i];
        var.set(&self.rt, v);
    }

    /// Index of `n` among the children of its parent, if attached.
    pub fn child_index(&self, n: AgNodeId) -> Option<(AgNodeId, usize)> {
        let p = self.parent(n)?;
        let arity = self.grammar.arity(self.prod(p));
        // The paper's context dispatch: `IF c = o.expl THEN …` — comparing
        // the asking child against each child link (tracked reads).
        (0..arity).find_map(|i| (self.child(p, i) == Some(n)).then_some((p, i)))
    }

    /// Number of nodes in the subtree rooted at `n`.
    pub fn subtree_size(&self, n: AgNodeId) -> usize {
        let arity = self.grammar.arity(self.prod(n));
        1 + (0..arity)
            .filter_map(|i| self.child(n, i))
            .map(|c| self.subtree_size(c))
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;

    fn toy() -> (Runtime, Arc<AgTree>, ProdId, ProdId) {
        let mut g = Grammar::builder();
        let _v = g.synthesized("value");
        let leaf = g.production("Leaf", 0, 1);
        let pair = g.production("Pair", 2, 0);
        let rt = Runtime::new();
        let tree = AgTree::new(&rt, Arc::new(g.build()));
        (rt, tree, leaf, pair)
    }

    #[test]
    fn build_links_children_and_parents() {
        let (_rt, tree, leaf, pair) = toy();
        let a = tree.new_node(leaf, vec![AttrVal::Int(1)]);
        let b = tree.new_node(leaf, vec![AttrVal::Int(2)]);
        let p = tree.build(pair, vec![], &[a, b]);
        assert_eq!(tree.child(p, 0), Some(a));
        assert_eq!(tree.child(p, 1), Some(b));
        assert_eq!(tree.parent(a), Some(p));
        assert_eq!(tree.child_index(b), Some((p, 1)));
        assert_eq!(tree.subtree_size(p), 3);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn set_child_detaches_old_child() {
        let (_rt, tree, leaf, pair) = toy();
        let a = tree.new_node(leaf, vec![AttrVal::Int(1)]);
        let b = tree.new_node(leaf, vec![AttrVal::Int(2)]);
        let p = tree.build(pair, vec![], &[a, b]);
        let c = tree.new_node(leaf, vec![AttrVal::Int(3)]);
        tree.set_child(p, 0, Some(c));
        assert_eq!(tree.parent(a), None, "old child detached");
        assert_eq!(tree.parent(c), Some(p));
        tree.set_child(p, 1, None);
        assert_eq!(tree.parent(b), None);
        assert_eq!(tree.child(p, 1), None);
    }

    #[test]
    fn reparent_before_swap_keeps_new_parent() {
        // Grafting a child into a new structure and then replacing it at
        // its old position must not clobber the fresh parent pointer.
        let (_rt, tree, leaf, pair) = toy();
        let a = tree.new_node(leaf, vec![AttrVal::Int(1)]);
        let b = tree.new_node(leaf, vec![AttrVal::Int(2)]);
        let old_parent = tree.build(pair, vec![], &[a, b]);
        // Re-parent `a` under a wider pair first…
        let c = tree.new_node(leaf, vec![AttrVal::Int(3)]);
        let wider = tree.build(pair, vec![], &[a, c]);
        assert_eq!(tree.parent(a), Some(wider));
        // …then install the wider pair where `a` used to be.
        tree.set_child(old_parent, 0, Some(wider));
        assert_eq!(tree.parent(a), Some(wider), "not clobbered by the swap");
        assert_eq!(tree.parent(wider), Some(old_parent));
        assert_eq!(tree.child_index(a), Some((wider, 0)));
    }

    #[test]
    fn terminals_read_back() {
        let (_rt, tree, leaf, _) = toy();
        let a = tree.new_node(leaf, vec![AttrVal::Int(7)]);
        assert_eq!(tree.terminal(a, 0), AttrVal::Int(7));
        tree.set_terminal(a, 0, AttrVal::Int(9));
        assert_eq!(tree.terminal(a, 0), AttrVal::Int(9));
    }

    #[test]
    #[should_panic(expected = "takes 1 terminal")]
    fn terminal_count_is_checked() {
        let (_rt, tree, leaf, _) = toy();
        tree.new_node(leaf, vec![]);
    }
}
