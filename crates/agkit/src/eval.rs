//! Attribute evaluators: incremental (Alphonse) and exhaustive baseline.

use crate::grammar::{AttrBackend, Grammar, InhCtx, InhId, SynCtx, SynId};
use crate::tree::{AgNodeId, AgTree};
use crate::value::AttrVal;
use alphonse::{Memo, Runtime, Strategy};
use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Incremental attribute evaluator — the Section 7.1 translation running on
/// the Alphonse runtime.
///
/// Synthesized attributes are maintained methods keyed by `(node, attr)`;
/// inherited attributes are maintained methods keyed by `(child, attr)`
/// whose body performs the paper's context dispatch at the parent. After a
/// tree edit, re-querying an attribute re-executes only the instances whose
/// dependencies changed.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// use alphonse_agkit::{AgEvaluator, AgTree, AttrVal, Grammar};
/// use std::sync::Arc;
///
/// let mut g = Grammar::builder();
/// let value = g.synthesized("value");
/// let num = g.production("Num", 0, 1);
/// let add = g.production("Add", 2, 0);
/// g.syn_eq(num, value, |ctx| ctx.terminal(0));
/// g.syn_eq(add, value, move |ctx| {
///     AttrVal::Int(ctx.child_syn(0, value).as_int() + ctx.child_syn(1, value).as_int())
/// });
/// let rt = Runtime::new();
/// let tree = AgTree::new(&rt, Arc::new(g.build()));
/// let one = tree.new_node(num, vec![AttrVal::Int(1)]);
/// let two = tree.new_node(num, vec![AttrVal::Int(2)]);
/// let sum = tree.build(add, vec![], &[one, two]);
/// let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
/// assert_eq!(eval.syn(sum, value), AttrVal::Int(3));
/// tree.set_terminal(one, 0, AttrVal::Int(10));
/// assert_eq!(eval.syn(sum, value), AttrVal::Int(12));
/// ```
pub struct AgEvaluator {
    rt: Runtime,
    tree: Arc<AgTree>,
    syn: Memo<(AgNodeId, SynId), AttrVal>,
    inh: Memo<(AgNodeId, InhId), AttrVal>,
}

impl fmt::Debug for AgEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AgEvaluator")
            .field("syn_instances", &self.syn.instance_count())
            .field("inh_instances", &self.inh.instance_count())
            .finish()
    }
}

struct Backend {
    tree: Arc<AgTree>,
    syn: Memo<(AgNodeId, SynId), AttrVal>,
    inh: Memo<(AgNodeId, InhId), AttrVal>,
    rt: Runtime,
}

impl AttrBackend for Backend {
    fn syn(&self, node: AgNodeId, attr: SynId) -> AttrVal {
        self.syn.call(&self.rt, (node, attr))
    }

    fn inh(&self, node: AgNodeId, attr: InhId) -> AttrVal {
        self.inh.call(&self.rt, (node, attr))
    }

    fn tree(&self) -> &AgTree {
        &self.tree
    }
}

impl AgEvaluator {
    /// Creates a demand-evaluated evaluator for `tree` (see
    /// [`AgEvaluator::with_strategy`]).
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime `tree` was created in.
    pub fn new(rt: &Runtime, tree: Arc<AgTree>) -> AgEvaluator {
        Self::with_strategy(rt, tree, Strategy::Demand)
    }

    /// Creates the evaluator with an explicit evaluation strategy for the
    /// attribute methods. [`Strategy::Eager`] gives quiescence cutoff during
    /// propagation — an edit that leaves an attribute's value unchanged
    /// stops there instead of conservatively invalidating all dependents.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime `tree` was created in.
    pub fn with_strategy(rt: &Runtime, tree: Arc<AgTree>, strategy: Strategy) -> AgEvaluator {
        // The two memos are mutually recursive: tie the knot through a cell
        // that the closures read at call time.
        type Cellule<T> = Arc<Mutex<Option<T>>>;
        let syn_cell: Cellule<Memo<(AgNodeId, SynId), AttrVal>> = Arc::default();
        let inh_cell: Cellule<Memo<(AgNodeId, InhId), AttrVal>> = Arc::default();

        let grammar: Arc<Grammar> = Arc::clone(tree.grammar());
        let t = Arc::clone(&tree);
        let (sc, ic) = (Arc::clone(&syn_cell), Arc::clone(&inh_cell));
        let g = Arc::clone(&grammar);
        let syn = rt.memo_recursive_with(
            "ag_syn",
            strategy,
            move |rt, _me, &(node, attr): &(AgNodeId, SynId)| {
                let backend = Backend {
                    tree: Arc::clone(&t),
                    syn: sc
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .expect("evaluator fully constructed"),
                    inh: ic
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .expect("evaluator fully constructed"),
                    rt: rt.clone(),
                };
                let prod = t.prod(node);
                let eq = Arc::clone(g.syn_eq(prod, attr));
                eq(&SynCtx {
                    backend: &backend,
                    node,
                })
            },
        );
        let t = Arc::clone(&tree);
        let (sc, ic) = (Arc::clone(&syn_cell), Arc::clone(&inh_cell));
        let g = Arc::clone(&grammar);
        let inh = rt.memo_recursive_with(
            "ag_inh",
            strategy,
            move |rt, _me, &(node, attr): &(AgNodeId, InhId)| {
                let backend = Backend {
                    tree: Arc::clone(&t),
                    syn: sc
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .expect("evaluator fully constructed"),
                    inh: ic
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone()
                        .expect("evaluator fully constructed"),
                    rt: rt.clone(),
                };
                // Context dispatch at the parent (paper Section 7.1).
                let (parent, child_index) = t.child_index(node).unwrap_or_else(|| {
                    panic!(
                        "inherited attribute {} demanded at detached node {node}",
                        t.grammar().inh_names[attr]
                    )
                });
                let prod = t.prod(parent);
                let eq = Arc::clone(g.inh_eq(prod, child_index, attr));
                eq(&InhCtx {
                    backend: &backend,
                    parent,
                    child_index,
                })
            },
        );
        syn_cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .replace(syn.clone());
        inh_cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .replace(inh.clone());
        AgEvaluator {
            rt: rt.clone(),
            tree,
            syn,
            inh,
        }
    }

    /// The attributed tree.
    pub fn tree(&self) -> &Arc<AgTree> {
        &self.tree
    }

    /// Demands synthesized attribute `attr` at `node`.
    pub fn syn(&self, node: AgNodeId, attr: SynId) -> AttrVal {
        self.syn.call(&self.rt, (node, attr))
    }

    /// Demands inherited attribute `attr` at `node`.
    pub fn inh(&self, node: AgNodeId, attr: InhId) -> AttrVal {
        self.inh.call(&self.rt, (node, attr))
    }

    /// Number of attribute instances materialized so far.
    pub fn instance_count(&self) -> usize {
        self.syn.instance_count() + self.inh.instance_count()
    }
}

/// Exhaustive baseline evaluator: every attribute demand re-evaluates the
/// full equation tree below/above it, with no caching — the conventional
/// execution an attribute-grammar system replaces.
pub struct ExhaustiveAg {
    tree: Arc<AgTree>,
    evaluations: Cell<u64>,
}

impl fmt::Debug for ExhaustiveAg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExhaustiveAg")
            .field("evaluations", &self.evaluations.get())
            .finish()
    }
}

impl AttrBackend for ExhaustiveAg {
    fn syn(&self, node: AgNodeId, attr: SynId) -> AttrVal {
        self.evaluations.set(self.evaluations.get() + 1);
        let prod = self.tree.prod(node);
        let eq = Arc::clone(self.tree.grammar().syn_eq(prod, attr));
        eq(&SynCtx {
            backend: self,
            node,
        })
    }

    fn inh(&self, node: AgNodeId, attr: InhId) -> AttrVal {
        self.evaluations.set(self.evaluations.get() + 1);
        let (parent, child_index) = self
            .tree
            .child_index(node)
            .unwrap_or_else(|| panic!("inherited attribute demanded at detached node {node}"));
        let prod = self.tree.prod(parent);
        let eq = Arc::clone(self.tree.grammar().inh_eq(prod, child_index, attr));
        eq(&InhCtx {
            backend: self,
            parent,
            child_index,
        })
    }

    fn tree(&self) -> &AgTree {
        &self.tree
    }
}

impl ExhaustiveAg {
    /// Creates the baseline evaluator over `tree`.
    pub fn new(tree: Arc<AgTree>) -> ExhaustiveAg {
        ExhaustiveAg {
            tree,
            evaluations: Cell::new(0),
        }
    }

    /// Evaluates synthesized attribute `attr` at `node` from scratch.
    pub fn syn(&self, node: AgNodeId, attr: SynId) -> AttrVal {
        AttrBackend::syn(self, node, attr)
    }

    /// Evaluates inherited attribute `attr` at `node` from scratch.
    pub fn inh(&self, node: AgNodeId, attr: InhId) -> AttrVal {
        AttrBackend::inh(self, node, attr)
    }

    /// Total equation evaluations performed (work counter).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// Resets the work counter.
    pub fn reset_counters(&self) {
        self.evaluations.set(0);
    }
}
