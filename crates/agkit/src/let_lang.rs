//! The paper's let-expression attribute grammar (Algorithms 6–9).
//!
//! ```text
//! ROOT ::= EXP            ROOT.value = EXP.value        EXP.env = EmptyEnv()
//! EXP0 ::= EXP1 + EXP2    EXP0.value = EXP1.value + EXP2.value
//!                         EXP1.env = EXP0.env           EXP2.env = EXP0.env
//! EXP0 ::= let ID = EXP1 in EXP2 ni
//!                         EXP0.value = EXP2.value
//!                         EXP1.env = EXP0.env
//!                         EXP2.env = UpdateEnv(EXP0.env, ID, EXP1.value)
//! EXP  ::= ID             EXP.value = LookupEnv(EXP.env, ID)
//! EXP  ::= INT            EXP.value = INT
//! ```
//!
//! Unbound identifiers evaluate to 0 (the paper leaves `LookupEnv` failure
//! unspecified; a total definition keeps differential tests simple).

use crate::grammar::{Grammar, InhId, ProdId, SynId};
use crate::tree::{AgNodeId, AgTree};
use crate::value::{AttrVal, Env};
use alphonse::Runtime;
use std::collections::HashMap;
use std::sync::Arc;

/// Handles for the let-language grammar: production and attribute ids.
#[derive(Debug, Clone, Copy)]
pub struct LetLang {
    /// `ROOT ::= EXP`
    pub root: ProdId,
    /// `EXP ::= EXP + EXP`
    pub plus: ProdId,
    /// `EXP ::= let ID = EXP in EXP ni`
    pub let_: ProdId,
    /// `EXP ::= ID`
    pub id: ProdId,
    /// `EXP ::= INT`
    pub int: ProdId,
    /// Synthesized `value`.
    pub value: SynId,
    /// Inherited `env`.
    pub env: InhId,
}

impl LetLang {
    /// Builds the Algorithm 6 grammar.
    pub fn grammar() -> (Arc<Grammar>, LetLang) {
        let mut g = Grammar::builder();
        let value = g.synthesized("value");
        let env = g.inherited("env");
        let root = g.production("Root", 1, 0);
        let plus = g.production("Plus", 2, 0);
        let let_ = g.production("Let", 2, 1); // terminal 0: the identifier
        let id = g.production("Id", 0, 1);
        let int = g.production("Int", 0, 1);

        // ROOT.value = EXP.value ; EXP.env = EmptyEnv()
        g.syn_eq(root, value, move |ctx| ctx.child_syn(0, value));
        g.inh_eq(root, 0, env, |_ctx| AttrVal::Env(Env::empty()));

        // Plus: value = v0 + v1 ; both children inherit the env (PassEnv).
        g.syn_eq(plus, value, move |ctx| {
            AttrVal::Int(
                ctx.child_syn(0, value)
                    .as_int()
                    .wrapping_add(ctx.child_syn(1, value).as_int()),
            )
        });
        g.inh_eq(plus, 0, env, move |ctx| ctx.parent_inh(env));
        g.inh_eq(plus, 1, env, move |ctx| ctx.parent_inh(env));

        // Let: value = body value; binder env = own env; body env extended
        // (the paper's LetEnv with its `IF c = o.expl` dispatch realized by
        // per-child equations).
        g.syn_eq(let_, value, move |ctx| ctx.child_syn(1, value));
        g.inh_eq(let_, 0, env, move |ctx| ctx.parent_inh(env));
        g.inh_eq(let_, 1, env, move |ctx| {
            let base = ctx.parent_inh(env).as_env();
            let name = ctx.terminal(0).as_text();
            let bound = ctx.child_syn(0, value);
            AttrVal::Env(base.update(&name, bound))
        });

        // Id: value = LookupEnv(env, id), 0 when unbound.
        g.syn_eq(id, value, move |ctx| {
            let e = ctx.inh(env).as_env();
            let name = ctx.terminal(0).as_text();
            e.lookup(&name).unwrap_or(AttrVal::Int(0))
        });

        // Int: value = terminal.
        g.syn_eq(int, value, |ctx| ctx.terminal(0));

        (
            Arc::new(g.build()),
            LetLang {
                root,
                plus,
                let_,
                id,
                int,
                value,
                env,
            },
        )
    }

    /// Convenience: grammar + fresh tree in `rt`.
    pub fn tree(rt: &Runtime) -> (Arc<AgTree>, LetLang) {
        let (g, lang) = Self::grammar();
        (AgTree::new(rt, g), lang)
    }
}

/// Surface expression for building/parsing let-programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LetExpr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Id(String),
    /// Addition.
    Plus(Box<LetExpr>, Box<LetExpr>),
    /// `let name = bound in body ni`.
    Let(String, Box<LetExpr>, Box<LetExpr>),
}

impl LetExpr {
    /// Instantiates this expression as production instances under a fresh
    /// `Root` node; returns (root, expression node).
    pub fn instantiate(&self, tree: &AgTree, lang: &LetLang) -> (AgNodeId, AgNodeId) {
        let e = self.node(tree, lang);
        let root = tree.build(lang.root, vec![], &[e]);
        (root, e)
    }

    /// Builds the production instance for this expression (no root).
    pub fn node(&self, tree: &AgTree, lang: &LetLang) -> AgNodeId {
        match self {
            LetExpr::Int(v) => tree.new_node(lang.int, vec![AttrVal::Int(*v)]),
            LetExpr::Id(n) => tree.new_node(lang.id, vec![AttrVal::text(n)]),
            LetExpr::Plus(a, b) => {
                let a = a.node(tree, lang);
                let b = b.node(tree, lang);
                tree.build(lang.plus, vec![], &[a, b])
            }
            LetExpr::Let(n, bound, body) => {
                let bound = bound.node(tree, lang);
                let body = body.node(tree, lang);
                tree.build(lang.let_, vec![AttrVal::text(n)], &[bound, body])
            }
        }
    }

    /// Reference semantics: direct environment-passing evaluation, used as
    /// the oracle in differential tests.
    pub fn eval_oracle(&self, env: &HashMap<String, i64>) -> i64 {
        match self {
            LetExpr::Int(v) => *v,
            LetExpr::Id(n) => env.get(n).copied().unwrap_or(0),
            LetExpr::Plus(a, b) => a.eval_oracle(env).wrapping_add(b.eval_oracle(env)),
            LetExpr::Let(n, bound, body) => {
                let v = bound.eval_oracle(env);
                let mut inner = env.clone();
                inner.insert(n.clone(), v);
                body.eval_oracle(&inner)
            }
        }
    }
}

/// Parses `let x = 1 + 2 in x + x ni` style expressions.
///
/// Grammar: `expr := term { '+' term }` ;
/// `term := INT | IDENT | '(' expr ')' | 'let' IDENT '=' expr 'in' expr 'ni'`.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_let(src: &str) -> Result<LetExpr, String> {
    let tokens = let_tokens(src)?;
    let mut p = LetParser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(format!("trailing input at token {}", p.pos));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum LetTok {
    Int(i64),
    Ident(String),
    Plus,
    Eq,
    LPar,
    RPar,
    Let,
    In,
    Ni,
}

fn let_tokens(src: &str) -> Result<Vec<LetTok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(LetTok::Plus);
                i += 1;
            }
            '=' => {
                out.push(LetTok::Eq);
                i += 1;
            }
            '(' => {
                out.push(LetTok::LPar);
                i += 1;
            }
            ')' => {
                out.push(LetTok::RPar);
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(LetTok::Int(
                    text.parse().map_err(|_| format!("bad integer {text}"))?,
                ));
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(match word.as_str() {
                    "let" => LetTok::Let,
                    "in" => LetTok::In,
                    "ni" => LetTok::Ni,
                    _ => LetTok::Ident(word),
                });
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct LetParser {
    tokens: Vec<LetTok>,
    pos: usize,
}

impl LetParser {
    fn peek(&self) -> Option<&LetTok> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &LetTok) -> Result<(), String> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn expr(&mut self) -> Result<LetExpr, String> {
        let mut e = self.term()?;
        while self.peek() == Some(&LetTok::Plus) {
            self.pos += 1;
            let rhs = self.term()?;
            e = LetExpr::Plus(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<LetExpr, String> {
        match self.peek().cloned() {
            Some(LetTok::Int(v)) => {
                self.pos += 1;
                Ok(LetExpr::Int(v))
            }
            Some(LetTok::Ident(n)) => {
                self.pos += 1;
                Ok(LetExpr::Id(n))
            }
            Some(LetTok::LPar) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat(&LetTok::RPar)?;
                Ok(e)
            }
            Some(LetTok::Let) => {
                self.pos += 1;
                let name = match self.peek().cloned() {
                    Some(LetTok::Ident(n)) => {
                        self.pos += 1;
                        n
                    }
                    other => return Err(format!("expected identifier after let, found {other:?}")),
                };
                self.eat(&LetTok::Eq)?;
                let bound = self.expr()?;
                self.eat(&LetTok::In)?;
                let body = self.expr()?;
                self.eat(&LetTok::Ni)?;
                Ok(LetExpr::Let(name, Box::new(bound), Box::new(body)))
            }
            other => Err(format!("expected an expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{AgEvaluator, ExhaustiveAg};

    fn eval_str(src: &str) -> i64 {
        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let expr = parse_let(src).unwrap();
        let (root, _) = expr.instantiate(&tree, &lang);
        let eval = AgEvaluator::new(&rt, tree);
        eval.syn(root, lang.value).as_int()
    }

    #[test]
    fn literals_and_addition() {
        assert_eq!(eval_str("1 + 2 + 3"), 6);
        assert_eq!(eval_str("(1 + 2) + (3 + 4)"), 10);
    }

    #[test]
    fn let_binding_and_shadowing() {
        assert_eq!(eval_str("let x = 5 in x + x ni"), 10);
        assert_eq!(eval_str("let x = 1 in let x = x + 1 in x ni ni"), 2);
        assert_eq!(eval_str("let x = 1 in let y = 2 in x + y ni ni"), 3);
    }

    #[test]
    fn unbound_identifier_is_zero() {
        assert_eq!(eval_str("y + 1"), 1);
    }

    #[test]
    fn exhaustive_and_incremental_agree() {
        let src = "let a = 3 + 4 in let b = a + a in a + b + (let a = 1 in a + b ni) ni ni";
        let expr = parse_let(src).unwrap();
        let oracle = expr.eval_oracle(&HashMap::new());

        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let (root, _) = expr.instantiate(&tree, &lang);
        let exhaustive = ExhaustiveAg::new(Arc::clone(&tree));
        let incremental = AgEvaluator::new(&rt, tree);
        assert_eq!(exhaustive.syn(root, lang.value).as_int(), oracle);
        assert_eq!(incremental.syn(root, lang.value).as_int(), oracle);
        assert!(exhaustive.evaluations() > 0);
    }

    #[test]
    fn terminal_edit_reattributes_incrementally() {
        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let expr = parse_let("let x = 7 in x + x + x ni").unwrap();
        let (root, letn) = expr.instantiate(&tree, &lang);
        let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
        assert_eq!(eval.syn(root, lang.value), AttrVal::Int(21));
        // Edit the bound literal: the Int node is child 0 of the Let.
        let bound = tree.child(letn, 0).unwrap();
        tree.set_terminal(bound, 0, AttrVal::Int(10));
        assert_eq!(eval.syn(root, lang.value), AttrVal::Int(30));
    }

    #[test]
    fn subtree_replacement_reattributes() {
        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let expr = parse_let("let x = 2 in x + 1 ni").unwrap();
        let (root, letn) = expr.instantiate(&tree, &lang);
        let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
        assert_eq!(eval.syn(root, lang.value), AttrVal::Int(3));
        // Replace the body `x + 1` with `x + x`.
        let new_body = parse_let("x + x").unwrap().node(&tree, &lang);
        tree.set_child(letn, 1, Some(new_body));
        assert_eq!(eval.syn(root, lang.value), AttrVal::Int(4));
    }

    #[test]
    fn untouched_siblings_stay_cached() {
        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        // Wide sum of independent lets; edit one literal and count work.
        let mut src = String::from("let a = 1 in a ni");
        for _ in 0..20 {
            src = format!("({src}) + (let b = 2 in b + b ni)");
        }
        let expr = parse_let(&src).unwrap();
        let (root, _) = expr.instantiate(&tree, &lang);
        let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
        let total = eval.syn(root, lang.value).as_int();
        assert_eq!(total, 1 + 20 * 4);
        let before = rt.stats();
        // Find an Int(2) literal to bump: walk the tree.
        let mut stack = vec![root];
        let mut lit = None;
        while let Some(n) = stack.pop() {
            if tree.prod(n) == lang.int && tree.terminal(n, 0) == AttrVal::Int(2) {
                lit = Some(n);
                break;
            }
            for i in 0..tree.grammar().arity(tree.prod(n)) {
                if let Some(c) = tree.child(n, i) {
                    stack.push(c);
                }
            }
        }
        tree.set_terminal(lit.expect("found a literal"), 0, AttrVal::Int(5));
        let total2 = eval.syn(root, lang.value).as_int();
        assert_eq!(total2, total + 6, "one let of 2+2 became 5+5");
        let d = rt.stats().delta_since(&before);
        // Only the spine above the edited literal re-executes, roughly the
        // path length, not the ~150 attribute instances of the whole tree.
        assert!(
            d.executions < 40,
            "expected path-local re-attribution, got {} executions",
            d.executions
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_let("let = 3 in x ni").is_err());
        assert!(parse_let("1 +").is_err());
        assert!(parse_let("(1").is_err());
        assert!(parse_let("1 2").is_err());
        assert!(parse_let("let x = 1 in x").is_err(), "missing ni");
    }
}
