//! Property-based testing of the attribute-grammar toolkit.

use alphonse::Runtime;
use alphonse_agkit::{AgEvaluator, AttrVal, ExhaustiveAg, LetExpr, LetLang};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Random let-expressions over a small variable universe.
fn expr_strategy() -> impl Strategy<Value = LetExpr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(LetExpr::Int),
        (0u8..4).prop_map(|v| LetExpr::Id(format!("v{v}"))),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| LetExpr::Plus(Box::new(a), Box::new(b))),
            (0u8..4, inner.clone(), inner).prop_map(|(v, bound, body)| LetExpr::Let(
                format!("v{v}"),
                Box::new(bound),
                Box::new(body)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental and exhaustive attribution agree with the reference
    /// evaluator on arbitrary expressions.
    #[test]
    fn evaluators_agree_on_random_expressions(expr in expr_strategy()) {
        let oracle = expr.eval_oracle(&HashMap::new());
        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let (root, _) = expr.instantiate(&tree, &lang);
        let inc = AgEvaluator::new(&rt, Arc::clone(&tree));
        prop_assert_eq!(inc.syn(root, lang.value).as_int(), oracle);
        let ex = ExhaustiveAg::new(Arc::clone(&tree));
        prop_assert_eq!(ex.syn(root, lang.value).as_int(), oracle);
    }

    /// After arbitrary literal edits, incremental re-attribution matches a
    /// from-scratch instantiation of the edited expression.
    #[test]
    fn edits_reattribute_correctly(
        expr in expr_strategy(),
        edits in proptest::collection::vec((any::<usize>(), -50i64..50), 1..8),
    ) {
        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let (root, _) = expr.instantiate(&tree, &lang);
        let inc = AgEvaluator::new(&rt, Arc::clone(&tree));
        inc.syn(root, lang.value);

        // Collect the Int literal nodes (they are editable terminals).
        let mut literals = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if tree.prod(n) == lang.int {
                literals.push(n);
            }
            for i in 0..tree.grammar().arity(tree.prod(n)) {
                if let Some(c) = tree.child(n, i) {
                    stack.push(c);
                }
            }
        }
        // Mirror the edits on a shadow LetExpr by re-deriving it afterwards:
        // simpler — apply edits to the live tree, then compare against the
        // exhaustive evaluator over the SAME tree (shared ground truth).
        for (pick, v) in edits {
            if literals.is_empty() {
                break;
            }
            let lit = literals[pick % literals.len()];
            tree.set_terminal(lit, 0, AttrVal::Int(v));
            let incremental = inc.syn(root, lang.value).as_int();
            let exhaustive = ExhaustiveAg::new(Arc::clone(&tree))
                .syn(root, lang.value)
                .as_int();
            prop_assert_eq!(incremental, exhaustive, "after editing {}", lit);
        }
    }
}
