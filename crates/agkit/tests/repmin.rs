//! The classic *repmin* attribute grammar — a stress test for circular-free
//! synthesized/inherited interplay.
//!
//! `repmin` replaces every leaf of a tree with the tree's global minimum:
//! the minimum flows *up* as a synthesized attribute and back *down* as an
//! inherited one; each leaf's output value depends on every other leaf.
//! This is the canonical example of non-local attribute flow that the
//! paper's Section 10 says grammar-based systems struggle with ("the local
//! communication and aggregation problems") and Alphonse handles naturally.

use alphonse::{Runtime, Strategy};
use alphonse_agkit::{AgEvaluator, AgNodeId, AgTree, AttrVal, Grammar, InhId, ProdId, SynId};
use std::sync::Arc;

struct RepMin {
    leaf: ProdId,
    fork: ProdId,
    root: ProdId,
    /// Synthesized: minimum of the subtree.
    min: SynId,
    /// Inherited: the global minimum, flowing back down. Only the equations
    /// capture it; kept here to document the attribute set.
    #[allow(dead_code)]
    global: InhId,
    /// Synthesized: the leaf's replacement value (= global minimum).
    rep: SynId,
}

fn grammar() -> (Arc<Grammar>, RepMin) {
    let mut g = Grammar::builder();
    let min = g.synthesized("min");
    let rep = g.synthesized("rep");
    let global = g.inherited("global");
    let leaf = g.production("Leaf", 0, 1);
    let fork = g.production("Fork", 2, 0);
    let root = g.production("Root", 1, 0);

    g.syn_eq(leaf, min, |ctx| ctx.terminal(0));
    g.syn_eq(fork, min, move |ctx| {
        AttrVal::Int(
            ctx.child_syn(0, min)
                .as_int()
                .min(ctx.child_syn(1, min).as_int()),
        )
    });
    g.syn_eq(root, min, move |ctx| ctx.child_syn(0, min));

    // The root turns the synthesized minimum around into the inherited
    // global; forks pass it through.
    g.inh_eq(root, 0, global, move |ctx| ctx.child_syn(0, min));
    g.inh_eq(fork, 0, global, move |ctx| ctx.parent_inh(global));
    g.inh_eq(fork, 1, global, move |ctx| ctx.parent_inh(global));

    // Leaves replace themselves with the global minimum; forks aggregate a
    // checksum of replaced leaves so the whole output is one queryable
    // value.
    g.syn_eq(leaf, rep, move |ctx| ctx.inh(global));
    g.syn_eq(fork, rep, move |ctx| {
        AttrVal::Int(
            ctx.child_syn(0, rep)
                .as_int()
                .wrapping_add(ctx.child_syn(1, rep).as_int()),
        )
    });
    g.syn_eq(root, rep, move |ctx| ctx.child_syn(0, rep));

    (
        Arc::new(g.build()),
        RepMin {
            leaf,
            fork,
            root,
            min,
            global,
            rep,
        },
    )
}

fn build_complete(tree: &AgTree, lang: &RepMin, values: &[i64]) -> (AgNodeId, Vec<AgNodeId>) {
    assert!(values.len().is_power_of_two());
    let mut leaves = Vec::new();
    let mut level: Vec<AgNodeId> = values
        .iter()
        .map(|&v| {
            let n = tree.new_node(lang.leaf, vec![AttrVal::Int(v)]);
            leaves.push(n);
            n
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| tree.build(lang.fork, vec![], &[pair[0], pair[1]]))
            .collect();
    }
    let root = tree.build(lang.root, vec![], &[level[0]]);
    (root, leaves)
}

#[test]
fn repmin_computes_global_minimum_everywhere() {
    let rt = Runtime::new();
    let (g, lang) = grammar();
    let tree = AgTree::new(&rt, g);
    let values = [5i64, 3, 9, 7, 4, 8, 2, 6];
    let (root, _) = build_complete(&tree, &lang, &values);
    let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
    assert_eq!(eval.syn(root, lang.min).as_int(), 2);
    // Every leaf is replaced by 2; the checksum is 8 * 2.
    assert_eq!(eval.syn(root, lang.rep).as_int(), 16);
}

#[test]
fn repmin_updates_incrementally_on_leaf_edit() {
    // Eager evaluation: value comparison at re-execution gives quiescence
    // cutoff, so a change that leaves the minimum alone stays local.
    let rt = Runtime::new();
    let (g, lang) = grammar();
    let tree = AgTree::new(&rt, g);
    let values: Vec<i64> = (1..=32).collect();
    let (root, leaves) = build_complete(&tree, &lang, &values);
    let eval = AgEvaluator::with_strategy(&rt, Arc::clone(&tree), Strategy::Eager);
    assert_eq!(eval.syn(root, lang.min).as_int(), 1);
    assert_eq!(eval.syn(root, lang.rep).as_int(), 32);

    // Lower a middle leaf below the current minimum: *everything* changes
    // (the global min flows to every leaf) — repmin's worst case.
    tree.set_terminal(leaves[17], 0, AttrVal::Int(-5));
    assert_eq!(eval.syn(root, lang.min).as_int(), -5);
    assert_eq!(eval.syn(root, lang.rep).as_int(), 32 * -5);

    // Raise a non-minimal leaf: the min is untouched; quiescence stops the
    // propagation high in the tree, so almost nothing re-executes.
    rt.propagate(); // settle the previous edit eagerly
    let before = rt.stats();
    tree.set_terminal(leaves[3], 0, AttrVal::Int(100));
    rt.propagate();
    assert_eq!(eval.syn(root, lang.rep).as_int(), 32 * -5);
    let d = rt.stats().delta_since(&before);
    assert!(
        d.executions <= 14,
        "non-minimal edit must stay path-local, got {} executions",
        d.executions
    );
}

#[test]
fn repmin_handles_all_equal_values() {
    let rt = Runtime::new();
    let (g, lang) = grammar();
    let tree = AgTree::new(&rt, g);
    let (root, leaves) = build_complete(&tree, &lang, &[7, 7, 7, 7]);
    let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
    assert_eq!(eval.syn(root, lang.min).as_int(), 7);
    assert_eq!(eval.syn(root, lang.rep).as_int(), 28);
    tree.set_terminal(leaves[0], 0, AttrVal::Int(7));
    assert_eq!(eval.syn(root, lang.rep).as_int(), 28, "no-op edit");
}
