//! Persistent worker pool for level-parallel wave propagation.
//!
//! The paper's evaluator is sequential; its Section 4.5 observation that
//! height-order draining visits nodes "in a topological order with respect
//! to the graph" is also what makes one step of that order parallelizable:
//! all dirty nodes at the current minimum height are mutually independent
//! (an edge between them would force a height difference), so their
//! executors may run concurrently. This module supplies the threads; the
//! level scheduler itself lives in `runtime.rs` (`drain_levels`).
//!
//! The pool is deliberately minimal — std threads and one shared `mpsc`
//! job queue, no external dependencies:
//!
//! * Workers are **persistent**: spawned once when a runtime first needs
//!   them and reused across levels, waves and propagations, so steady-state
//!   parallel draining spawns nothing.
//! * Jobs are drained from a single shared queue (receiver behind a mutex),
//!   so a level whose executors have uneven costs load-balances dynamically
//!   instead of committing to a static per-worker split.
//! * Each worker stamps a thread-local identity `(pool id, slot)` at
//!   startup. The runtime routes execution frames through this identity
//!   (`Inner::worker_stacks`), giving every worker its own call stack for
//!   dependence recording while all other node state stays behind the
//!   runtime's single lock.
//!
//! A job that panics is caught so the worker survives; the level scheduler
//! notices the missing result and propagates the failure on the driver
//! thread (the runtime is documented as unspecified-but-memory-safe after a
//! panic unwinds out of an executor).

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::metrics::RuntimeMetrics;

/// A unit of work for one worker: runs on the worker thread, communicates
/// its result through whatever channel the submitter captured in it.
pub(crate) type Job = Box<dyn FnOnce() + Send>;

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker slot)` of the current thread, set once at worker
    /// startup; `None` on every non-pool thread. The pool id keeps a worker
    /// of one runtime from being mistaken for a worker of another (a body
    /// running on runtime A's pool may legally touch runtime B).
    static WORKER_IDENTITY: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// The `(pool id, slot)` identity of the current thread, if it is an
/// executor-pool worker.
pub(crate) fn worker_identity() -> Option<(u64, usize)> {
    WORKER_IDENTITY.with(Cell::get)
}

/// A fixed-size set of persistent executor threads owned by one runtime.
pub(crate) struct ExecPool {
    id: u64,
    workers: usize,
    /// Dropping the sender is the shutdown signal: `recv` errors out and
    /// every worker exits its loop.
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// The owning runtime's telemetry registry: workers tally busy/idle
    /// time and job counts into its per-slot gauges, `submit` maintains the
    /// queue-depth gauge. Recording is compiled in by the `metrics`
    /// feature; the handle itself is always carried so the constructor
    /// signature is feature-independent.
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: Arc<RuntimeMetrics>,
}

impl ExecPool {
    /// Spawns `workers` (>= 1) persistent threads, all draining one shared
    /// job queue.
    pub(crate) fn new(workers: usize, metrics: Arc<RuntimeMetrics>) -> ExecPool {
        assert!(workers >= 1, "a worker pool needs at least one thread");
        let _mem = alphonse_mem::scope(alphonse_mem::Tag::ExecPool);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::<Job>();
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for slot in 0..workers {
            let rx = Arc::clone(&rx);
            #[cfg_attr(not(feature = "metrics"), allow(unused_variables))]
            let metrics = Arc::clone(&metrics);
            let handle = std::thread::Builder::new()
                .name(format!("alphonse-exec-{id}-{slot}"))
                .spawn(move || {
                    WORKER_IDENTITY.with(|c| c.set(Some((id, slot))));
                    loop {
                        // Clock reads bracket the queue wait and the job
                        // run; both are skipped while recording is off.
                        #[cfg(feature = "metrics")]
                        let wait_t0 = crate::metrics::enabled().then(std::time::Instant::now);
                        // Take the next job while holding the queue mutex,
                        // then release it before running, so other workers
                        // keep draining while this one executes.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(job) = job else { break };
                        #[cfg(feature = "metrics")]
                        let (idle_ns, run_t0) = match wait_t0 {
                            Some(t0) => {
                                metrics.queue_pop();
                                (
                                    t0.elapsed().as_nanos() as u64,
                                    Some(std::time::Instant::now()),
                                )
                            }
                            None => (0, None),
                        };
                        let _ = catch_unwind(AssertUnwindSafe(job));
                        #[cfg(feature = "metrics")]
                        if let Some(t0) = run_t0 {
                            metrics.record_worker_job(
                                slot,
                                t0.elapsed().as_nanos() as u64,
                                idle_ns,
                            );
                        }
                    }
                })
                .expect("spawning executor worker thread");
            handles.push(handle);
        }
        ExecPool {
            id,
            workers,
            tx: Some(tx),
            handles,
            metrics,
        }
    }

    /// This pool's globally unique id (matches worker identities).
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues one job. Never blocks (the queue is unbounded); the job
    /// starts as soon as a worker frees up.
    pub(crate) fn submit(&self, job: Job) {
        // The job box itself was billed at the caller's `Box::new`; this
        // covers the channel's internal queue blocks.
        let _mem = alphonse_mem::scope(alphonse_mem::Tag::ExecPool);
        #[cfg(feature = "metrics")]
        if crate::metrics::enabled() {
            self.metrics.queue_push();
        }
        self.tx
            .as_ref()
            .expect("pool alive until dropped")
            .send(job)
            .expect("workers outlive the pool handle");
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("id", &self.id)
            .field("workers", &self.workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = ExecPool::new(3, Arc::new(RuntimeMetrics::new()));
        let (tx, rx) = channel();
        for i in 0..32usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i * 2).unwrap();
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn workers_have_distinct_identities() {
        let pool = ExecPool::new(2, Arc::new(RuntimeMetrics::new()));
        let (tx, rx) = channel();
        // Hold both workers long enough that each runs at least one job.
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                tx.send(worker_identity().expect("on a pool thread"))
                    .unwrap();
            }));
        }
        drop(tx);
        let ids: std::collections::HashSet<(u64, usize)> = rx.iter().collect();
        assert!(!ids.is_empty());
        for &(pool_id, slot) in &ids {
            assert_eq!(pool_id, pool.id());
            assert!(slot < pool.workers());
        }
        assert_eq!(worker_identity(), None, "driver thread has no identity");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = ExecPool::new(1, Arc::new(RuntimeMetrics::new()));
        let (tx, rx) = channel();
        pool.submit(Box::new(|| panic!("boom")));
        let tx2 = tx.clone();
        pool.submit(Box::new(move || tx2.send(7u32).unwrap()));
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![7]);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        drop(pool); // joins: the job above must have run
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
