//! Dynamically-typed cached values.

use alphonse_mem as mem;
use std::any::Any;
use std::fmt;

/// A value that can be cached in the dependency graph.
///
/// Quiescence propagation (paper Section 2) requires comparing a newly
/// computed result against the previously cached one to decide whether
/// dependents must be notified, so every cached value must support equality;
/// function caching requires handing out copies of cached results, so it
/// must support cloning; and sessions are movable across threads
/// ([`Runtime`](crate::Runtime) is `Send`), so every cached value must be
/// `Send` too. The blanket implementation covers every `'static` type that
/// is `Debug + PartialEq + Clone + Send`, which is what user code should
/// rely on — implementing this trait by hand is never necessary.
pub trait Value: Any + fmt::Debug + Send {
    /// Compares against another cached value; values of different concrete
    /// types are unequal.
    fn dyn_eq(&self, other: &dyn Value) -> bool;
    /// Clones into a fresh box.
    fn dyn_clone(&self) -> Box<dyn Value>;
    /// Upcast used for downcasting to the concrete type.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast: lets a buffered value be overwritten in place when a
    /// later write of the same concrete type coalesces onto it, reusing the
    /// existing allocation instead of boxing a fresh one.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Consuming upcast: lets an owned boxed value be downcast to its
    /// concrete type without cloning.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + fmt::Debug + PartialEq + Clone + Send> Value for T {
    fn dyn_eq(&self, other: &dyn Value) -> bool {
        other.as_any().downcast_ref::<T>() == Some(self)
    }

    fn dyn_clone(&self) -> Box<dyn Value> {
        // Clones of cached results (handed out by `Memo::call` etc.) are
        // value-slab memory, including the clone's own heap payload.
        mem::with(mem::Tag::ValueSlab, || Box::new(self.clone()))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Downcasts a cached value to its concrete type, cloning it out.
///
/// The production read paths are borrow-based ([`downcast_ref`]) or
/// consuming via `into_any`; this cloning form survives for tests.
///
/// # Panics
///
/// Panics if the cached value has a different concrete type, which indicates
/// a typed handle (`Var`/`Memo`) was forged for the wrong node.
#[cfg(test)]
pub(crate) fn downcast_value<T: Clone + 'static>(v: &dyn Value, what: &str) -> T {
    downcast_ref::<T>(v, what).clone()
}

/// Downcasts a borrowed cached value to its concrete type without cloning —
/// the borrow-based read path.
///
/// # Panics
///
/// Panics if the cached value has a different concrete type, which indicates
/// a typed handle (`Var`/`Memo`) was forged for the wrong node.
pub(crate) fn downcast_ref<'a, T: 'static>(v: &'a dyn Value, what: &str) -> &'a T {
    v.as_any().downcast_ref::<T>().unwrap_or_else(|| {
        panic!(
            "type mismatch reading {what}: expected {}, found {v:?}",
            std::any::type_name::<T>()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_same_type() {
        let a: Box<dyn Value> = Box::new(42i64);
        let b: Box<dyn Value> = Box::new(42i64);
        let c: Box<dyn Value> = Box::new(7i64);
        assert!(a.dyn_eq(&*b));
        assert!(!a.dyn_eq(&*c));
    }

    #[test]
    fn eq_across_types_is_false() {
        let a: Box<dyn Value> = Box::new(42i64);
        let b: Box<dyn Value> = Box::new(42i32);
        assert!(!a.dyn_eq(&*b));
        assert!(!b.dyn_eq(&*a));
    }

    #[test]
    fn clone_preserves_value() {
        let a: Box<dyn Value> = Box::new(String::from("hi"));
        let b = a.dyn_clone();
        assert!(a.dyn_eq(&*b));
        assert_eq!(downcast_value::<String>(&*b, "test"), "hi");
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn downcast_wrong_type_panics() {
        let a: Box<dyn Value> = Box::new(1u8);
        let _: i64 = downcast_value(&*a, "test");
    }

    #[test]
    fn structs_work_via_blanket_impl() {
        #[derive(Debug, PartialEq, Clone)]
        struct P(i32, i32);
        let a: Box<dyn Value> = Box::new(P(1, 2));
        assert!(a.dyn_eq(&*a.dyn_clone()));
    }
}
