//! The Alphonse runtime: dynamic dependence analysis and incremental
//! evaluation.
//!
//! This module implements the paper's Sections 4 and 5 as a library instead
//! of a source transformation: the three instrumented operations
//! `access` / `modify` / `call` (Algorithms 3, 4 and 5) are the methods
//! [`Runtime::raw_read`], [`Runtime::raw_write`] and
//! [`Memo::call`](crate::Memo::call), and the evaluation routine of
//! Section 4.5 is [`Runtime::propagate`] plus the internal evaluation that
//! runs before incremental calls.

use crate::dirty::{DirtySet, Scheduling};
use crate::fxhash::FxHashMap;
use crate::stats::Stats;
#[cfg(feature = "trace")]
use crate::trace::TraceEvent;
use crate::trace::{DirtyReason, GraphSnapshot, SnapshotNode, TraceSink};
use crate::value::Value;
use alphonse_graph::{DepGraph, NodeId, UnionFind};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(1);

/// Delivers an event to the installed trace sink, if any.
///
/// The event expression is only evaluated inside the sink-present branch, so
/// with no sink each site costs a single untaken, well-predicted branch;
/// without the `trace` feature the sites compile out entirely. The sink is
/// cloned out of the slot first (an `Rc` bump) so the event may borrow the
/// same `Inner` the slot lives in.
macro_rules! emit {
    ($inner:expr, $ev:expr) => {
        #[cfg(feature = "trace")]
        {
            if let Some(sink) = $inner.sink.as_ref().map(Rc::clone) {
                sink.event(&$ev);
            }
        }
    };
}

/// The re-execution closure of an incremental procedure instance: runs the
/// body against the runtime and returns the fresh cached value.
pub(crate) type Executor = Rc<dyn Fn(&Runtime) -> Box<dyn Value>>;

/// Evaluation strategy of an incremental procedure (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Update lazily, upon calls to the procedure (the `DEMAND` pragma
    /// argument). This is the default.
    #[default]
    Demand,
    /// Re-execute during change propagation, before the next call request
    /// (the `EAGER` pragma argument). Requires the procedure to satisfy the
    /// paper's OBS restriction: spurious executions must not be observable.
    Eager,
}

/// What kind of entity a dependency-graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A storage location (top-level variable, object field, …).
    Location,
    /// An incremental procedure instance — one (procedure, argument-vector)
    /// pair of a cached procedure or maintained method.
    Computation,
}

pub(crate) struct CompState {
    pub(crate) consistent: bool,
    pub(crate) strategy: Strategy,
    pub(crate) executor: Executor,
    /// Number of executions of this node currently on the call stack.
    /// Greater than 1 when a procedure re-entrantly re-executes while an
    /// older execution of it is still running — the paper's AVL `balance`
    /// does this after a rotation (Section 7.3).
    pub(crate) on_stack: u32,
    /// Set when the evaluator wanted to re-execute this eager node while it
    /// was still running; it is re-queued when the execution finishes.
    pub(crate) requeue: bool,
    /// Generation stamp of the most recently *started* execution. An
    /// execution only commits its value to the cache if it is still the
    /// latest when it finishes; superseded (outer, stale) executions hand
    /// their value to their caller but leave the cache to the fresher run.
    pub(crate) cur_gen: u64,
}

pub(crate) struct NodeData {
    pub(crate) value: Option<Box<dyn Value>>,
    pub(crate) comp: Option<CompState>,
    pub(crate) name: Option<Rc<str>>,
}

/// Buffered batch writes: one `(location, final value)` entry per distinct
/// written location, in first-write order.
pub(crate) type PendingWrites = Vec<(NodeId, Box<dyn Value>)>;

struct Frame {
    node: NodeId,
    /// This execution's stamp in the runtime-wide `last_accessed` table.
    /// Per-execution edge deduplication checks a node's stamp against this
    /// epoch instead of probing a per-frame hash set, so starting a frame
    /// allocates nothing.
    epoch: u64,
    /// Stamps this frame overwrote that may belong to a live enclosing
    /// frame; restored LIFO when this frame pops so the enclosing
    /// execution's dedup set survives nested (incl. re-entrant) calls.
    overflow: Vec<(NodeId, u64)>,
    /// Depth of nested `untracked` regions active in this frame
    /// (the `(*UNCHECKED*)` pragma of Section 6.4).
    suppress: u32,
    /// Set when a fresher execution of the same node started while this one
    /// was still running. A stale execution's result will be discarded, so
    /// recording further dependence edges for it would only pollute the
    /// fresher execution's edge set.
    stale: bool,
}

enum DirtyStore {
    Global(DirtySet),
    /// One inconsistent set per dependency-graph partition, keyed by the
    /// partition's current union-find root (Section 6.3).
    Partitioned(FxHashMap<NodeId, DirtySet>),
}

pub(crate) struct Inner {
    graph: DepGraph,
    nodes: Vec<NodeData>,
    stack: Vec<Frame>,
    dirty: DirtyStore,
    partition: Option<UnionFind>,
    scheduling: Scheduling,
    dedup_edges: bool,
    evaluating: bool,
    /// Monotone propagation-wave counter: incremented every time the
    /// evaluation routine starts a (non-nested) run. Never reset — unlike
    /// [`Stats::waves`] — so trace wave ids stay unique across
    /// [`Runtime::reset_stats`].
    wave: u64,
    exec_gen: u64,
    /// Frame-epoch stamp per node (indexed by dense `NodeId`): the epoch of
    /// the execution frame that most recently recorded a dependence on the
    /// node. Epoch 0 is reserved for "never accessed". Epochs are globally
    /// unique per frame, so a stale stamp can never be mistaken for the
    /// current frame's.
    last_accessed: Vec<u64>,
    /// Epoch of the most recently started execution frame.
    frame_epoch: u64,
    /// Reusable buffer for successor fan-out during propagation. Taken and
    /// returned around each use so steady-state drains allocate nothing;
    /// its capacity high-water mark is tracked in `stats.scratch_hwm`.
    succ_scratch: Vec<NodeId>,
    /// Reusable buffers for [`Runtime::batch`]: the pending-write list and
    /// the `NodeId`-indexed coalescing slot map (`slot + 1`, `0` = none).
    /// Taken at batch start and returned cleared (capacity kept) at commit,
    /// so steady-state batches allocate nothing for their bookkeeping.
    batch_pending: PendingWrites,
    batch_slots: Vec<usize>,
    /// Installed trace sink ([`crate::trace`]). `None` — the default — keeps
    /// every emission site down to one untaken branch.
    #[cfg(feature = "trace")]
    sink: Option<Rc<dyn TraceSink>>,
    stats: Stats,
}

/// Configures and builds a [`Runtime`].
///
/// # Example
///
/// ```
/// use alphonse::{Runtime, Scheduling};
/// let rt = Runtime::builder()
///     .partitioning(true)
///     .scheduling(Scheduling::HeightOrder)
///     .build();
/// assert!(rt.is_partitioned());
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    partitioning: bool,
    scheduling: Scheduling,
    dedup_edges: bool,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            partitioning: false,
            scheduling: Scheduling::HeightOrder,
            dedup_edges: true,
        }
    }
}

impl RuntimeBuilder {
    /// Enables dependency-graph partitioning with per-partition inconsistent
    /// sets (paper Section 6.3). Off by default.
    pub fn partitioning(mut self, on: bool) -> Self {
        self.partitioning = on;
        self
    }

    /// Chooses the order in which dirty nodes are processed
    /// (paper Section 4.5). Height order by default.
    pub fn scheduling(mut self, mode: Scheduling) -> Self {
        self.scheduling = mode;
        self
    }

    /// Controls per-execution deduplication of dependency edges. On by
    /// default; turning it off reproduces the paper's literal algorithm,
    /// which may record parallel edges.
    pub fn dedup_edges(mut self, on: bool) -> Self {
        self.dedup_edges = on;
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> Runtime {
        let dirty = if self.partitioning {
            DirtyStore::Partitioned(FxHashMap::default())
        } else {
            DirtyStore::Global(DirtySet::new(self.scheduling))
        };
        Runtime {
            inner: Rc::new(RefCell::new(Inner {
                graph: DepGraph::new(),
                nodes: Vec::new(),
                stack: Vec::new(),
                dirty,
                partition: self.partitioning.then(UnionFind::new),
                scheduling: self.scheduling,
                dedup_edges: self.dedup_edges,
                evaluating: false,
                wave: 0,
                exec_gen: 0,
                last_accessed: Vec::new(),
                frame_epoch: 0,
                succ_scratch: Vec::new(),
                batch_pending: Vec::new(),
                batch_slots: Vec::new(),
                #[cfg(feature = "trace")]
                sink: crate::trace::default_sink(),
                stats: Stats::default(),
            })),
            id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// The Alphonse incremental-computation runtime.
///
/// A `Runtime` owns the dependency graph, the call stack of executing
/// incremental procedure instances, the inconsistent set(s), and all cached
/// values. It is a cheap handle (`Clone` shares the same underlying state)
/// and is single-threaded by design — the paper's evaluator is sequential
/// and lists parallel execution as future work.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// let rt = Runtime::new();
/// let a = rt.var(2i64);
/// let b = rt.var(3i64);
/// let product = rt.memo("product", move |rt, &(): &()| a.get(rt) * b.get(rt));
/// assert_eq!(product.call(&rt, ()), 6);
/// a.set(&rt, 10);
/// assert_eq!(product.call(&rt, ()), 30); // recomputed
/// assert_eq!(product.call(&rt, ()), 30); // cached
/// ```
///
/// # Panics
///
/// Runtime operations panic if the program violates the paper's
/// restrictions (Section 3.5): a dependency cycle (a procedure transitively
/// depending on its own result, which breaks DET) is reported as soon as it
/// is detected. A panic unwinding out of an incremental procedure body
/// leaves the runtime in an unspecified (but memory-safe) state; it must not
/// be reused afterwards.
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Rc<RefCell<Inner>>,
    pub(crate) id: u64,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Runtime")
            .field("id", &self.id)
            .field("nodes", &inner.nodes.len())
            .field("edges", &inner.graph.edge_count())
            .field("dirty", &inner.dirty_len())
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Inner {
    fn dirty_len(&self) -> usize {
        match &self.dirty {
            DirtyStore::Global(s) => s.len(),
            DirtyStore::Partitioned(m) => m.values().map(DirtySet::len).sum(),
        }
    }

    /// Inserts `n` into the inconsistent set of its partition. `cause` is
    /// the predecessor that fanned dirt here ([`DirtyReason::Fanout`]),
    /// `None` when `n` itself originates the dirt.
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    fn insert_dirty(&mut self, n: NodeId, reason: DirtyReason, cause: Option<NodeId>) {
        let height = self.graph.height(n);
        let scheduling = self.scheduling;
        let root = self.partition.as_mut().map(|uf| uf.find(n));
        let fresh = match &mut self.dirty {
            DirtyStore::Global(s) => s.insert(n, height),
            DirtyStore::Partitioned(m) => m
                .entry(root.expect("partitioned store implies union-find"))
                .or_insert_with(|| DirtySet::new(scheduling))
                .insert(n, height),
        };
        if fresh {
            self.stats.dirtied += 1;
            emit!(
                self,
                TraceEvent::Dirtied {
                    node: n,
                    reason,
                    cause,
                }
            );
        }
    }

    /// Records the edge `n -> top-of-stack` if an incremental procedure is
    /// executing (paper Algorithm 3's `CreateEdge` step), merging partitions
    /// as Section 6.3 prescribes.
    fn record_dependence(&mut self, n: NodeId) {
        let depth = self.stack.len();
        let Some(frame) = self.stack.last_mut() else {
            return;
        };
        if frame.stale {
            return;
        }
        if frame.suppress > 0 {
            self.stats.untracked_reads += 1;
            return;
        }
        if self.dedup_edges {
            // O(1) per-execution dedup: the edge was already recorded iff
            // the node's stamp equals this frame's epoch. Epochs are
            // globally unique, so stamps left by finished frames can never
            // be mistaken for the current one.
            let slot = &mut self.last_accessed[n.index()];
            if *slot == frame.epoch {
                self.stats.dedup_hits += 1;
                return;
            }
            if *slot != 0 && depth > 1 {
                // The stamp may belong to a live enclosing frame; remember
                // it so popping this frame restores the enclosing
                // execution's dedup set.
                frame.overflow.push((n, *slot));
            }
            *slot = frame.epoch;
        }
        let v = frame.node;
        self.graph.add_edge(n, v);
        self.stats.edges_created += 1;
        emit!(self, TraceEvent::EdgeAdded { from: n, to: v });
        assert!(
            !self.graph.cycle_suspected(),
            "dependency cycle detected at {} -> {} ({}): incremental procedures must be \
             deterministic and acyclic (paper restriction DET)",
            n,
            v,
            self.nodes[v.index()].name.as_deref().unwrap_or("<unnamed>"),
        );
        if let Some(uf) = self.partition.as_mut() {
            uf.ensure(n);
            uf.ensure(v);
            if let Some((win, lose)) = uf.union(n, v) {
                if let DirtyStore::Partitioned(m) = &mut self.dirty {
                    if let Some(mut lost) = m.remove(&lose) {
                        let scheduling = self.scheduling;
                        m.entry(win)
                            .or_insert_with(|| DirtySet::new(scheduling))
                            .absorb(&mut lost);
                    }
                }
            }
        }
    }

    /// Marks every successor of `u` dirty — the fan-out step of the
    /// Section 4.5 marking rule. Successors are staged through the
    /// runtime-owned scratch buffer (the graph borrow must end before
    /// `insert_dirty` can mutate heights/partitions), so at steady state
    /// this performs zero heap allocations; `stats.scratch_hwm` records the
    /// buffer's capacity high-water mark as evidence.
    fn dirty_succs_of(&mut self, u: NodeId) {
        let mut scratch = std::mem::take(&mut self.succ_scratch);
        self.graph.succs_into(u, &mut scratch);
        self.stats.scratch_hwm = self.stats.scratch_hwm.max(scratch.capacity() as u64);
        for &s in &scratch {
            self.insert_dirty(s, DirtyReason::Fanout, Some(u));
        }
        self.succ_scratch = scratch;
    }

    /// Stores `value` into location `n` — the shared tail of `modify`
    /// (Algorithm 4) used by both `raw_write` and batch commit: record the
    /// writer's dependence, compare against the stored value (the cutoff
    /// comparison is only charged when a prior value exists), and dirty the
    /// location's readers when the value actually changed.
    fn write_location(&mut self, n: NodeId, value: Box<dyn Value>) {
        self.record_dependence(n);
        let nd = &mut self.nodes[n.index()];
        debug_assert!(nd.comp.is_none(), "write on a computation node");
        let (changed, compared) = match &nd.value {
            Some(old) => (!old.dyn_eq(&*value), true),
            None => (true, false),
        };
        nd.value = Some(value);
        if compared {
            self.stats.comparisons += 1;
        }
        emit!(self, TraceEvent::Write { node: n, changed });
        #[cfg(feature = "trace")]
        if compared && !changed {
            emit!(self, TraceEvent::CutoffStop { node: n });
        }
        if changed {
            self.stats.changes += 1;
            // Only locations some incremental instance has actually read
            // need propagation — the paper's Algorithm 4 guards with
            // `nodeptr(l) # NIL` for the same reason. Skipping reader-less
            // locations is not merely an optimization: dirt queued before
            // the first reader exists would be processed *after* that
            // reader consumed the post-write value, spuriously marking it
            // mid-construction and breaking the frontier invariant of the
            // Section 4.5 marking rule.
            if self.graph.has_succs(n) {
                self.insert_dirty(n, DirtyReason::WriteChanged, None);
            }
        }
    }

    fn alloc_node(&mut self, data: NodeData) -> NodeId {
        let n = self.graph.add_node();
        debug_assert_eq!(n.index(), self.nodes.len());
        #[cfg(feature = "trace")]
        let (kind, label) = (
            if data.comp.is_some() {
                NodeKind::Computation
            } else {
                NodeKind::Location
            },
            data.name.clone(),
        );
        self.nodes.push(data);
        self.last_accessed.push(0);
        if let Some(uf) = self.partition.as_mut() {
            uf.ensure(n);
        }
        self.stats.nodes_created += 1;
        emit!(
            self,
            TraceEvent::NodeCreated {
                node: n,
                kind,
                label
            }
        );
        n
    }
}

/// What the evaluator decided to do with one dirty node.
enum Step {
    Idle,
    Continue,
    Execute(NodeId),
}

impl Runtime {
    /// Creates a runtime with default configuration (no partitioning,
    /// height-order scheduling, edge deduplication on).
    pub fn new() -> Self {
        RuntimeBuilder::default().build()
    }

    /// Starts configuring a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Returns `true` if this runtime maintains per-partition inconsistent
    /// sets (Section 6.3).
    pub fn is_partitioned(&self) -> bool {
        self.inner.borrow().partition.is_some()
    }

    /// The dirty-node draining order in use.
    pub fn scheduling(&self) -> Scheduling {
        self.inner.borrow().scheduling
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> Stats {
        self.inner.borrow().stats
    }

    /// Resets all work counters to zero.
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = Stats::default();
    }

    /// Total propagation waves run since the runtime was built. Unlike
    /// [`Stats::waves`] this is never reset, so it matches the `wave` ids
    /// stamped on [`crate::trace::TraceEvent::PropagateBegin`] events.
    pub fn waves(&self) -> u64 {
        self.inner.borrow().wave
    }

    // ------------------------------------------------------------------
    // Observability (see `crate::trace` for the event taxonomy).
    // ------------------------------------------------------------------

    /// Installs `sink` as this runtime's trace sink, returning the previous
    /// one; pass `None` to detach. Events are delivered synchronously while
    /// the runtime is internally borrowed — see [`crate::trace`] for the
    /// sink contract (in short: a sink must never re-enter runtime
    /// operations).
    #[cfg(feature = "trace")]
    pub fn set_sink(&self, sink: Option<Rc<dyn TraceSink>>) -> Option<Rc<dyn TraceSink>> {
        std::mem::replace(&mut self.inner.borrow_mut().sink, sink)
    }

    /// Without the `trace` feature sinks cannot be attached: this stub
    /// ignores `sink` and returns `None`, keeping callers source-compatible
    /// across feature configurations.
    #[cfg(not(feature = "trace"))]
    pub fn set_sink(&self, _sink: Option<Rc<dyn TraceSink>>) -> Option<Rc<dyn TraceSink>> {
        None
    }

    /// Runs `f` with `sink` installed, then restores the previously
    /// installed sink (a scoped form of [`Runtime::set_sink`]).
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::trace::Recorder;
    /// use alphonse::Runtime;
    /// use std::rc::Rc;
    ///
    /// let rt = Runtime::new();
    /// let x = rt.var(1i64);
    /// let rec = Rc::new(Recorder::new(64));
    /// rt.with_trace(rec.clone(), || x.set(&rt, 2));
    /// assert!(!rec.is_empty());
    /// ```
    pub fn with_trace<R>(&self, sink: Rc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
        let prev = self.set_sink(Some(sink));
        let out = f();
        self.set_sink(prev);
        out
    }

    /// Returns `true` if a trace sink is currently installed (always
    /// `false` without the `trace` feature). Substrates consult this before
    /// allocating diagnostic labels on hot construction paths, keeping the
    /// no-observer configuration allocation-free.
    pub fn tracing(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.borrow().sink.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Assigns a diagnostic label to node `n`, visible in
    /// [`Runtime::explain`], [`Runtime::dump_graph`], graph snapshots and
    /// the trace stream ([`crate::trace::TraceEvent::Labeled`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn set_label(&self, n: NodeId, label: &str) {
        let mut inner = self.inner.borrow_mut();
        let label: Rc<str> = Rc::from(label);
        inner.nodes[n.index()].name = Some(Rc::clone(&label));
        emit!(inner, TraceEvent::Labeled { node: n, label });
    }

    /// The diagnostic label of node `n`, if one was assigned (memo names
    /// are assigned automatically; [`Runtime::var_named`] and
    /// [`Runtime::set_label`] cover the rest).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn node_label(&self, n: NodeId) -> Option<String> {
        self.inner.borrow().nodes[n.index()]
            .name
            .as_deref()
            .map(str::to_owned)
    }

    /// A point-in-time copy of the dependency graph with full runtime
    /// fidelity — kind, label, consistency flag, dirty-queue membership,
    /// partition root and execution recency per node — renderable with
    /// [`crate::trace::render_dot`]. Prefer this over
    /// [`crate::trace::GraphSink`] while the runtime is still alive.
    pub fn graph_snapshot(&self) -> GraphSnapshot {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        let n_nodes = inner.nodes.len();
        let mut queued = vec![false; n_nodes];
        match &inner.dirty {
            DirtyStore::Global(s) => s.for_each_member(|m| queued[m.index()] = true),
            DirtyStore::Partitioned(map) => {
                for s in map.values() {
                    s.for_each_member(|m| queued[m.index()] = true);
                }
            }
        }
        let roots: Vec<Option<NodeId>> = match inner.partition.as_mut() {
            Some(uf) => (0..n_nodes)
                .map(|i| Some(uf.find(NodeId::from_index(i))))
                .collect(),
            None => vec![None; n_nodes],
        };
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut edges = Vec::new();
        for (i, nd) in inner.nodes.iter().enumerate() {
            let id = NodeId::from_index(i);
            let (kind, consistent, last_exec) = match &nd.comp {
                None => (NodeKind::Location, true, 0),
                Some(c) => (NodeKind::Computation, c.consistent, c.cur_gen),
            };
            nodes.push(SnapshotNode {
                id,
                kind,
                label: nd.name.as_deref().map(str::to_owned),
                consistent,
                queued: queued[i],
                partition: roots[i],
                last_exec,
                execs: 0,
            });
            for s in inner.graph.succs(id) {
                edges.push((id, s));
            }
        }
        GraphSnapshot { nodes, edges }
    }

    /// Verifies the runtime's internal data-structure invariants. Debug
    /// builds only — release builds compile this to a no-op, so harnesses
    /// (like the E11 differential tests) can call it unconditionally.
    ///
    /// Checked invariants:
    ///
    /// * the call stack is empty (only call this between top-level
    ///   operations) and every node's `on_stack` counter is zero;
    /// * edge symmetry: the graph's successor and predecessor lists agree
    ///   as edge multisets;
    /// * every queued dirty node is a node of this runtime, and with
    ///   partitioning on it is queued under its own partition root;
    /// * at quiescence (no dirty nodes anywhere), the Section 4.5 marking
    ///   frontier invariant: every computation that depends on an
    ///   inconsistent computation is itself inconsistent.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) describing the first violated invariant.
    pub fn check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            let mut guard = self.inner.borrow_mut();
            let inner = &mut *guard;
            assert!(
                inner.stack.is_empty(),
                "check_invariants: {} execution frame(s) still active; only call between \
                 top-level operations",
                inner.stack.len()
            );
            let n_nodes = inner.nodes.len();
            for (i, nd) in inner.nodes.iter().enumerate() {
                if let Some(c) = &nd.comp {
                    assert_eq!(
                        c.on_stack, 0,
                        "check_invariants: node {i} has on_stack={} with an empty call stack",
                        c.on_stack
                    );
                }
            }
            // Edge symmetry: every succ edge must have a matching pred edge
            // and vice versa, as multisets.
            let mut balance: FxHashMap<(NodeId, NodeId), i64> = FxHashMap::default();
            for i in 0..n_nodes {
                let u = NodeId::from_index(i);
                for v in inner.graph.succs(u) {
                    *balance.entry((u, v)).or_insert(0) += 1;
                }
                for p in inner.graph.preds(u) {
                    *balance.entry((p, u)).or_insert(0) -= 1;
                }
            }
            for ((u, v), count) in balance {
                assert_eq!(
                    count, 0,
                    "check_invariants: edge {u} -> {v} appears {count:+} more time(s) in the \
                     successor lists than in the predecessor lists"
                );
            }
            // Dirty-set sanity.
            let mut dirty_total = 0usize;
            let mut uf = inner.partition.as_mut();
            match &inner.dirty {
                DirtyStore::Global(s) => s.for_each_member(|m| {
                    assert!(
                        m.index() < n_nodes,
                        "check_invariants: dirty set contains unknown node {m}"
                    );
                    dirty_total += 1;
                }),
                DirtyStore::Partitioned(map) => {
                    for (&root, s) in map {
                        s.for_each_member(|m| {
                            assert!(
                                m.index() < n_nodes,
                                "check_invariants: dirty set contains unknown node {m}"
                            );
                            if let Some(uf) = uf.as_deref_mut() {
                                assert_eq!(
                                    uf.find(m),
                                    root,
                                    "check_invariants: node {m} queued under stale partition \
                                     root {root}"
                                );
                            }
                            dirty_total += 1;
                        });
                    }
                }
            }
            // Marking frontier (Section 4.5): once all dirt has drained,
            // nothing consistent may sit downstream of anything inconsistent.
            if dirty_total == 0 {
                for i in 0..n_nodes {
                    let u = NodeId::from_index(i);
                    let stale = inner.nodes[i].comp.as_ref().is_some_and(|c| !c.consistent);
                    if !stale {
                        continue;
                    }
                    for v in inner.graph.succs(u) {
                        if let Some(c) = inner.nodes[v.index()].comp.as_ref() {
                            assert!(
                                !c.consistent,
                                "check_invariants: marking frontier violated — consistent \
                                 node {v} depends on inconsistent node {u}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Number of dependency-graph nodes (locations + procedure instances).
    pub fn node_count(&self) -> usize {
        self.inner.borrow().graph.node_count()
    }

    /// Number of live dependency edges.
    pub fn edge_count(&self) -> usize {
        self.inner.borrow().graph.edge_count()
    }

    /// Number of nodes currently awaiting propagation.
    pub fn dirty_count(&self) -> usize {
        self.inner.borrow().dirty_len()
    }

    /// Returns `true` while an incremental procedure is executing — i.e.
    /// reads and writes performed now will be recorded as its dependencies.
    pub fn in_tracked_context(&self) -> bool {
        !self.inner.borrow().stack.is_empty()
    }

    /// Returns `true` if a read performed right now would actually record a
    /// dependence edge: an incremental procedure is executing, its frame is
    /// not stale, and no `(*UNCHECKED*)` suppression is active. Useful for
    /// asserting that statically pruned accesses really are irrelevant.
    pub fn recording_context(&self) -> bool {
        let inner = self.inner.borrow();
        matches!(inner.stack.last(), Some(f) if !f.stale && f.suppress == 0)
    }

    /// What kind of entity node `n` represents.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        if self.inner.borrow().nodes[n.index()].comp.is_some() {
            NodeKind::Computation
        } else {
            NodeKind::Location
        }
    }

    /// Runs `f` with dependence recording suppressed for the *current*
    /// incremental procedure — the `(*UNCHECKED*)` pragma of Section 6.4.
    ///
    /// Nested incremental procedures called inside `f` still track their own
    /// dependencies normally; only edges into the procedure executing at the
    /// time of this call are suppressed. Outside any incremental procedure
    /// this is a no-op wrapper.
    pub fn untracked<T>(&self, f: impl FnOnce() -> T) -> T {
        struct Guard<'a> {
            rt: &'a Runtime,
            depth: usize,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                let mut inner = self.rt.inner.borrow_mut();
                if inner.stack.len() == self.depth {
                    if let Some(frame) = inner.stack.last_mut() {
                        frame.suppress -= 1;
                    }
                }
            }
        }
        let depth = {
            let mut inner = self.inner.borrow_mut();
            if let Some(frame) = inner.stack.last_mut() {
                frame.suppress += 1;
            }
            inner.stack.len()
        };
        let _guard = Guard { rt: self, depth };
        f()
    }

    // ------------------------------------------------------------------
    // Low-level location API (the paper's `access`/`modify` operations).
    // ------------------------------------------------------------------

    /// Allocates a tracked storage location holding `initial`.
    ///
    /// This is the low-level API used by [`Var`](crate::Var) and by language
    /// front ends that manage their own storage; prefer
    /// [`Runtime::var`](crate::Runtime::var) in application code.
    pub fn raw_alloc(&self, initial: Box<dyn Value>) -> NodeId {
        self.inner.borrow_mut().alloc_node(NodeData {
            value: Some(initial),
            comp: None,
            name: None,
        })
    }

    /// Reads a location, recording the dependence of the currently executing
    /// incremental procedure (if any) on it — the paper's `access`
    /// (Algorithm 3).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a location of this runtime.
    pub fn raw_read(&self, n: NodeId) -> Box<dyn Value> {
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.reads += 1;
            inner.stats.cloned_reads += 1;
            emit!(inner, TraceEvent::Read { node: n });
            inner.record_dependence(n);
        }
        let inner = self.inner.borrow();
        let nd = &inner.nodes[n.index()];
        debug_assert!(nd.comp.is_none(), "raw_read on a computation node");
        nd.value
            .as_ref()
            .expect("location always holds a value")
            .dyn_clone()
    }

    /// Reads a location in place, without boxing or cloning the value: the
    /// borrow-based form of the paper's `access` (Algorithm 3). The
    /// dependence of the currently executing incremental procedure (if any)
    /// is recorded exactly as for [`Runtime::raw_read`], but the cached
    /// value is handed to `f` by reference instead of being cloned out.
    ///
    /// This is the hot-path read used by [`Var::get`](crate::Var::get) and
    /// [`Var::with`](crate::Var::with). Use [`Runtime::raw_read`] only when
    /// the value must outlive the read (escape the closure).
    ///
    /// The runtime is borrowed for the duration of `f`: the closure must not
    /// re-enter runtime operations that mutate state (writes, memo calls,
    /// propagation) or it will panic on the `RefCell`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a location of this runtime.
    pub fn with_value<R>(&self, n: NodeId, f: impl FnOnce(&dyn Value) -> R) -> R {
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.reads += 1;
            inner.stats.borrow_reads += 1;
            emit!(inner, TraceEvent::Read { node: n });
            inner.record_dependence(n);
        }
        let inner = self.inner.borrow();
        let nd = &inner.nodes[n.index()];
        debug_assert!(nd.comp.is_none(), "with_value on a computation node");
        f(&**nd.value.as_ref().expect("location always holds a value"))
    }

    /// Writes a location — the paper's `modify` (Algorithm 4): the write
    /// first records a dependence (a procedure depends on storage it writes,
    /// Section 4.3), then stores the value, and dirties the node if the
    /// value actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a location of this runtime.
    pub fn raw_write(&self, n: NodeId, value: Box<dyn Value>) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.writes += 1;
        inner.write_location(n, value);
    }

    /// Hands out the runtime-owned batch buffers (empty, warm capacity) for
    /// a new transaction. A nested batch simply gets fresh empty buffers.
    pub(crate) fn take_batch_buffers(&self) -> (PendingWrites, Vec<usize>) {
        let mut inner = self.inner.borrow_mut();
        (
            std::mem::take(&mut inner.batch_pending),
            std::mem::take(&mut inner.batch_slots),
        )
    }

    /// Commits a coalesced write transaction: one borrow of the runtime for
    /// the whole set of writes, each applied with the same `modify`
    /// semantics as [`Runtime::raw_write`]. `pending` holds one entry per
    /// distinct written location (last write wins); `submitted` and
    /// `coalesced` are the transaction's raw tallies for the stats. The
    /// drained buffers are stowed back on the runtime for the next batch.
    pub(crate) fn commit_batch(
        &self,
        mut pending: PendingWrites,
        mut slots: Vec<usize>,
        submitted: u64,
        coalesced: u64,
    ) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.batches += 1;
        inner.stats.batched_writes += submitted;
        inner.stats.coalesced_writes += coalesced;
        emit!(
            inner,
            TraceEvent::BatchCommit {
                writes: submitted,
                coalesced,
                // The wave that will drain the queued dirt: the current one
                // when committing mid-propagation, otherwise the next to
                // begin.
                wave: if inner.evaluating {
                    inner.wave
                } else {
                    inner.wave + 1
                },
            }
        );
        for (n, value) in pending.drain(..) {
            slots[n.index()] = 0; // reset only the touched slots
            inner.stats.writes += 1;
            inner.write_location(n, value);
        }
        inner.batch_pending = pending;
        inner.batch_slots = slots;
    }

    // ------------------------------------------------------------------
    // Computation nodes (used by Memo; crate-internal).
    // ------------------------------------------------------------------

    pub(crate) fn alloc_comp(
        &self,
        name: Rc<str>,
        strategy: Strategy,
        executor: Executor,
    ) -> NodeId {
        self.inner.borrow_mut().alloc_node(NodeData {
            value: None,
            comp: Some(CompState {
                consistent: false,
                strategy,
                executor,
                on_stack: 0,
                requeue: false,
                cur_gen: 0,
            }),
            name: Some(name),
        })
    }

    pub(crate) fn note_call(&self) {
        self.inner.borrow_mut().stats.calls += 1;
    }

    pub(crate) fn record_dependence(&self, n: NodeId) {
        self.inner.borrow_mut().record_dependence(n);
    }

    /// Runs `f` on the cached value if the computation node is consistent,
    /// without cloning it out of the cache. Returns `None` (without calling
    /// `f`) on a miss: inconsistent, or consistent but evicted.
    pub(crate) fn with_cached_if_consistent<R>(
        &self,
        n: NodeId,
        f: impl FnOnce(&dyn Value) -> R,
    ) -> Option<R> {
        let mut inner = self.inner.borrow_mut();
        let nd = &inner.nodes[n.index()];
        let comp = nd.comp.as_ref().expect("computation node");
        if !comp.consistent {
            return None;
        }
        match &nd.value {
            Some(_) => {
                inner.stats.cache_hits += 1;
                emit!(inner, TraceEvent::CacheHit { node: n });
                drop(inner);
                let inner = self.inner.borrow();
                let v = inner.nodes[n.index()]
                    .value
                    .as_ref()
                    .expect("checked above");
                Some(f(&**v))
            }
            // Consistent but value-less: either a self-recursive first
            // execution (DET violation — diagnose) or an evicted value
            // (recompute by reporting a miss).
            None if comp.on_stack > 0 => panic!(
                "incremental procedure {} recursively depends on its own first execution \
                 (violates paper restriction DET)",
                nd.name.as_deref().unwrap_or("<unnamed>")
            ),
            None => None,
        }
    }

    /// Runs `f` on the committed value of a computation node.
    ///
    /// # Panics
    ///
    /// Panics if the node has never committed a value.
    pub(crate) fn with_comp_value<R>(&self, n: NodeId, f: impl FnOnce(&dyn Value) -> R) -> R {
        let inner = self.inner.borrow();
        let v = inner.nodes[n.index()]
            .value
            .as_ref()
            .expect("execution just committed a value");
        f(&**v)
    }

    /// Counts one memo argument-table probe (hash lookup on the call path).
    pub(crate) fn note_probe(&self) {
        self.inner.borrow_mut().stats.memo_probes += 1;
    }

    /// Re-executes computation node `n` per Algorithm 5: drop its old
    /// dependencies, push it on the call stack, run the body, cache the
    /// result. Returns the value only when it was *not* committed to the
    /// cache (`Some` = superseded execution's uncommitted result, which the
    /// caller must consume directly), plus whether the cache changed. The
    /// common committed case returns `(None, changed)` and the value is read
    /// from the cache with [`Runtime::with_comp_value`] — this avoids the
    /// extra `dyn_clone` per execution the old signature forced.
    ///
    /// Re-entrant executions (an instance re-executing while an older
    /// execution of the same instance is still on the stack, as the AVL
    /// `balance` method of Section 7.3 provokes after rotations) are
    /// resolved by generation stamps: only the latest-started execution
    /// commits to the cache; a superseded outer execution still returns its
    /// computed value to its caller but leaves cache, consistency flag and
    /// dependency edges to the fresher run.
    pub(crate) fn execute_node(&self, n: NodeId) -> (Option<Box<dyn Value>>, bool) {
        let (executor, my_gen) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.executions += 1;
            let before = inner.graph.edges_removed();
            inner.graph.remove_pred_edges(n);
            let removed = inner.graph.edges_removed() - before;
            inner.stats.edges_removed += removed;
            inner.exec_gen += 1;
            let my_gen = inner.exec_gen;
            // If an older execution of `n` is still running it is now
            // superseded: its result will be discarded, so stop it from
            // recording any further dependence edges.
            let reentrant = inner.nodes[n.index()]
                .comp
                .as_ref()
                .is_some_and(|c| c.on_stack > 0);
            if reentrant {
                for frame in &mut inner.stack {
                    if frame.node == n {
                        frame.stale = true;
                    }
                }
            }
            let comp = inner.nodes[n.index()].comp.as_mut().expect("computation");
            comp.consistent = true;
            comp.on_stack += 1;
            comp.cur_gen = my_gen;
            let executor = comp.executor.clone();
            inner.frame_epoch += 1;
            let epoch = inner.frame_epoch;
            inner.stack.push(Frame {
                node: n,
                epoch,
                overflow: Vec::new(),
                suppress: 0,
                stale: false,
            });
            #[cfg(feature = "trace")]
            {
                emit!(inner, TraceEvent::ExecuteBegin { node: n });
                if removed > 0 {
                    emit!(
                        inner,
                        TraceEvent::EdgesRemoved {
                            node: n,
                            count: removed,
                        }
                    );
                }
            }
            (executor, my_gen)
        };
        let value = executor(self);
        let mut inner = self.inner.borrow_mut();
        let frame = inner.stack.pop().expect("frame pushed above");
        debug_assert_eq!(frame.node, n, "call stack imbalance");
        // Restore the stamps this frame overwrote, newest first, so the
        // enclosing execution's dedup set is exactly what it was before the
        // nested call (a node stamped by several nested frames gets its
        // oldest surviving stamp back).
        for (node, stamp) in frame.overflow.into_iter().rev() {
            inner.last_accessed[node.index()] = stamp;
        }
        let nd = &mut inner.nodes[n.index()];
        let comp = nd.comp.as_mut().expect("computation");
        comp.on_stack -= 1;
        let superseded = comp.cur_gen != my_gen;
        let requeue = if superseded {
            false
        } else {
            std::mem::take(&mut comp.requeue)
        };
        if superseded {
            // A nested execution superseded this one; its cache entry is the
            // one that matches the current program state. Hand our value to
            // the caller without committing it.
            emit!(
                inner,
                TraceEvent::ExecuteEnd {
                    node: n,
                    changed: false,
                }
            );
            return (Some(value), false);
        }
        let nd = &mut inner.nodes[n.index()];
        // A first execution has no previous value: it counts as changed
        // without charging a cutoff comparison.
        let (changed, compared) = match &nd.value {
            Some(old) => (!old.dyn_eq(&*value), true),
            None => (true, false),
        };
        nd.value = Some(value);
        if compared {
            inner.stats.comparisons += 1;
        }
        emit!(inner, TraceEvent::ExecuteEnd { node: n, changed });
        #[cfg(feature = "trace")]
        if compared && !changed {
            emit!(inner, TraceEvent::CutoffStop { node: n });
        }
        if requeue {
            inner.insert_dirty(n, DirtyReason::Requeue, None);
        }
        (None, changed)
    }

    /// If changes are pending that could affect `n`, run the evaluation
    /// routine first (the `Evaluate(Inconsistent)` step of Algorithm 5).
    /// With partitioning only `n`'s component is evaluated.
    pub(crate) fn evaluate_before_call(&self, n: NodeId) {
        let pending = {
            let mut guard = self.inner.borrow_mut();
            let inner = &mut *guard;
            if inner.evaluating {
                false
            } else {
                let root = inner.partition.as_mut().map(|uf| uf.find(n));
                match &mut inner.dirty {
                    DirtyStore::Global(s) => !s.is_empty(),
                    DirtyStore::Partitioned(m) => {
                        let root = root.expect("partitioned store implies union-find");
                        m.get(&root).is_some_and(|s| !s.is_empty())
                    }
                }
            }
        };
        if pending {
            self.evaluate(Some(n));
        }
    }

    /// Explains why a node has its current value: lists its recorded
    /// dependencies (the paper's referenced-argument set `R(p)`), one line
    /// per predecessor with kind, diagnostic name and cached value.
    ///
    /// This realizes the "sophisticated debugging" benefit the paper's
    /// introduction attributes to the maintained dependency information.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn explain(&self, n: NodeId) -> String {
        use std::fmt::Write;
        let inner = self.inner.borrow();
        let describe = |id: NodeId| -> String {
            let nd = &inner.nodes[id.index()];
            let kind = match &nd.comp {
                None => "location".to_string(),
                Some(c) => format!(
                    "instance of {} ({})",
                    nd.name.as_deref().unwrap_or("<unnamed>"),
                    if c.consistent { "consistent" } else { "stale" }
                ),
            };
            let value = nd
                .value
                .as_ref()
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|| "<never computed>".to_string());
            format!("{id}: {kind} = {value}")
        };
        let mut out = describe(n);
        out.push('\n');
        let mut preds: Vec<NodeId> = inner.graph.preds(n).collect();
        preds.sort();
        preds.dedup();
        if preds.is_empty() {
            out.push_str("  (no recorded dependencies)\n");
        }
        for p in preds {
            let _ = writeln!(out, "  depends on {}", describe(p));
        }
        out
    }

    /// Renders the dependency graph in a human-readable form: one line per
    /// node with its kind, diagnostic name, height, consistency and
    /// successors. Intended for debugging and tests.
    pub fn dump_graph(&self) -> String {
        use std::fmt::Write;
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (i, nd) in inner.nodes.iter().enumerate() {
            let n = NodeId::from_index(i);
            let kind = match &nd.comp {
                None => "loc ".to_string(),
                Some(c) => format!(
                    "comp({}{})",
                    if c.consistent { "ok" } else { "dirty" },
                    match c.strategy {
                        Strategy::Demand => "",
                        Strategy::Eager => ",eager",
                    }
                ),
            };
            let name = nd.name.as_deref().unwrap_or("-");
            let succs: Vec<String> = inner.graph.succs(n).map(|s| s.to_string()).collect();
            let _ = writeln!(
                out,
                "{n} {kind} {name} h={} v={:?} -> [{}]",
                inner.graph.height(n),
                nd.value.as_ref().map(|v| format!("{v:?}")),
                succs.join(", ")
            );
        }
        out
    }

    /// Runs quiescence propagation until every inconsistent set is empty —
    /// the paper's evaluation routine, intended to be "called whenever
    /// cycles are available" (Section 4.5). Eager procedures re-execute
    /// here; demand procedures are only marked out-of-date.
    pub fn propagate(&self) {
        self.evaluate_bounded(None, u64::MAX);
    }

    /// Runs at most `max_steps` propagation steps, then yields — the
    /// preemptible form of the evaluation routine (Section 4.5: "can be
    /// preempted when necessary"). Returns `true` if the inconsistent sets
    /// are fully drained, `false` if work remains for a later slice.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::{Runtime, Strategy};
    /// let rt = Runtime::new();
    /// let v = rt.var(0i64);
    /// let m = rt.memo_with("watch", Strategy::Eager, move |rt, &(): &()| v.get(rt));
    /// m.call(&rt, ());
    /// v.set(&rt, 1);
    /// while !rt.propagate_steps(1) {
    ///     // interleave other work here
    /// }
    /// assert_eq!(rt.dirty_count(), 0);
    /// ```
    pub fn propagate_steps(&self, max_steps: u64) -> bool {
        self.evaluate_bounded(None, max_steps);
        self.dirty_count() == 0
    }

    // Capacity / eviction support (used by bounded memos).

    pub(crate) fn node_has_value(&self, n: NodeId) -> bool {
        self.inner.borrow().nodes[n.index()].value.is_some()
    }

    pub(crate) fn node_on_stack(&self, n: NodeId) -> bool {
        self.inner.borrow().nodes[n.index()]
            .comp
            .as_ref()
            .is_some_and(|c| c.on_stack > 0)
    }

    /// Drops the cached value of a computation node, forcing recomputation
    /// on its next call. The consistency flag and dependency edges are
    /// deliberately untouched: flipping the flag without queueing the
    /// node's successors would violate the marking frontier invariant
    /// ("successors of an inconsistent node are already inconsistent"), and
    /// the edges are what keeps change propagation through the evicted
    /// instance sound. An evicted node is thus "consistent but value-less":
    /// its dependents' cached results are still valid, only *its* result
    /// must be recomputed when next demanded.
    pub(crate) fn evict_value(&self, n: NodeId) {
        let mut inner = self.inner.borrow_mut();
        let nd = &mut inner.nodes[n.index()];
        debug_assert!(
            nd.comp.as_ref().is_some_and(|c| c.on_stack == 0),
            "cannot evict an executing instance"
        );
        nd.value = None;
    }

    fn evaluate(&self, origin: Option<NodeId>) {
        self.evaluate_bounded(origin, u64::MAX);
    }

    /// Core evaluation loop (Section 4.5). `origin`: evaluate only the
    /// partition containing this node; `None`: evaluate everything.
    /// `max_steps` bounds the number of dirty nodes processed (preemption).
    fn evaluate_bounded(&self, origin: Option<NodeId>, max_steps: u64) {
        #[cfg(feature = "trace")]
        let steps_before;
        {
            let mut inner = self.inner.borrow_mut();
            if inner.evaluating {
                return;
            }
            inner.evaluating = true;
            inner.wave += 1;
            inner.stats.waves += 1;
            #[cfg(feature = "trace")]
            {
                steps_before = inner.stats.propagation_steps;
            }
            emit!(inner, TraceEvent::PropagateBegin { wave: inner.wave });
        }
        let mut steps = 0u64;
        while steps < max_steps {
            steps += 1;
            let step = {
                let mut inner = self.inner.borrow_mut();
                self.evaluation_step(&mut inner, origin)
            };
            match step {
                Step::Idle => break,
                Step::Continue => {}
                Step::Execute(u) => {
                    let (_, changed) = self.execute_node(u);
                    if changed {
                        self.inner.borrow_mut().dirty_succs_of(u);
                    }
                }
            }
        }
        let mut inner = self.inner.borrow_mut();
        inner.evaluating = false;
        emit!(
            inner,
            TraceEvent::PropagateEnd {
                wave: inner.wave,
                steps: inner.stats.propagation_steps - steps_before,
            }
        );
    }

    /// Pops and processes one dirty node; mutation-only cases are handled
    /// inline, eager re-execution is returned to the caller so the borrow
    /// can be released first.
    fn evaluation_step(&self, inner: &mut Inner, origin: Option<NodeId>) -> Step {
        // Partitions may have merged since the last step; re-find each time.
        let root = match origin {
            Some(o) => inner.partition.as_mut().map(|uf| uf.find(o)),
            None => None,
        };
        let popped = match (&mut inner.dirty, root) {
            (DirtyStore::Global(s), _) => s.pop(),
            (DirtyStore::Partitioned(m), Some(root)) => m.get_mut(&root).and_then(DirtySet::pop),
            (DirtyStore::Partitioned(m), None) => m.values_mut().find_map(|s| s.pop()),
        };
        let Some(u) = popped else {
            return Step::Idle;
        };
        inner.stats.propagation_steps += 1;
        match &mut inner.nodes[u.index()].comp {
            // Storage location: forward the change to everything computed
            // from it.
            None => {
                inner.dirty_succs_of(u);
                Step::Continue
            }
            Some(comp) => match comp.strategy {
                // Demand: just mark out-of-date and propagate (Section 4.5).
                Strategy::Demand => {
                    if comp.consistent {
                        comp.consistent = false;
                        inner.dirty_succs_of(u);
                    }
                    Step::Continue
                }
                // Eager: re-execute now; if the value changes the caller
                // dirties the successors.
                Strategy::Eager => {
                    if comp.on_stack > 0 {
                        // Cannot re-execute a node that is mid-execution;
                        // mark it stale and have it re-queued on completion.
                        comp.consistent = false;
                        comp.requeue = true;
                        inner.dirty_succs_of(u);
                        Step::Continue
                    } else {
                        Step::Execute(u)
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_locations_read_back_written_values() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(5i64));
        assert_eq!(rt.node_kind(n), NodeKind::Location);
        let v = rt.raw_read(n);
        assert!(v.dyn_eq(&5i64));
        rt.raw_write(n, Box::new(9i64));
        assert!(rt.raw_read(n).dyn_eq(&9i64));
    }

    #[test]
    fn writes_outside_procedures_do_not_create_edges() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        rt.raw_write(n, Box::new(2i64));
        let _ = rt.raw_read(n);
        assert_eq!(rt.edge_count(), 0);
        assert_eq!(rt.stats().reads, 1);
        assert_eq!(rt.stats().writes, 1);
    }

    #[test]
    fn unchanged_write_does_not_dirty() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        // Give the location a reader so writes are propagation-relevant.
        let probe = rt.memo("probe", move |rt, &(): &()| {
            crate::value::downcast_value::<i64>(&*rt.raw_read(n), "probe")
        });
        probe.call(&rt, ());
        rt.raw_write(n, Box::new(1i64));
        assert_eq!(rt.dirty_count(), 0, "unchanged value: no propagation");
        rt.raw_write(n, Box::new(2i64));
        assert_eq!(rt.dirty_count(), 1);
        assert_eq!(rt.stats().changes, 1);
    }

    #[test]
    fn readerless_writes_never_dirty() {
        // Algorithm 4 guards with `nodeptr(l) # NIL`: a location no
        // incremental instance has read needs no propagation.
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        rt.raw_write(n, Box::new(2i64));
        rt.raw_write(n, Box::new(3i64));
        assert_eq!(rt.dirty_count(), 0);
        assert_eq!(rt.stats().changes, 2);
    }

    #[test]
    fn untracked_outside_procedure_is_noop() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        let v = rt.untracked(|| rt.raw_read(n));
        assert!(v.dyn_eq(&1i64));
        assert!(!rt.in_tracked_context());
    }

    #[test]
    fn runtime_debug_is_nonempty() {
        let rt = Runtime::new();
        assert!(format!("{rt:?}").contains("Runtime"));
    }

    #[test]
    fn builder_configures_partitioning_and_scheduling() {
        let rt = Runtime::builder()
            .partitioning(true)
            .scheduling(Scheduling::Fifo)
            .dedup_edges(false)
            .build();
        assert!(rt.is_partitioned());
        assert_eq!(rt.scheduling(), Scheduling::Fifo);
    }

    #[test]
    fn distinct_runtimes_have_distinct_ids() {
        let a = Runtime::new();
        let b = Runtime::new();
        assert_ne!(a.id, b.id);
        assert_eq!(a.clone().id, a.id);
    }

    #[test]
    fn propagate_on_clean_runtime_is_noop() {
        let rt = Runtime::new();
        rt.propagate();
        assert_eq!(rt.stats().propagation_steps, 0);
    }
}
