//! The Alphonse runtime: dynamic dependence analysis and incremental
//! evaluation.
//!
//! This module implements the paper's Sections 4 and 5 as a library instead
//! of a source transformation: the three instrumented operations
//! `access` / `modify` / `call` (Algorithms 3, 4 and 5) are the methods
//! [`Runtime::raw_read`], [`Runtime::raw_write`] and
//! [`Memo::call`](crate::Memo::call), and the evaluation routine of
//! Section 4.5 is [`Runtime::propagate`] plus the internal evaluation that
//! runs before incremental calls.
//!
//! # Memory layout
//!
//! Per-node state is stored struct-of-arrays: the evaluator's hot loop only
//! touches the dense `values` / `flags` / `gens` / `last_accessed` vectors
//! (all indexed by `NodeId::index()`), while cold bookkeeping — diagnostic
//! names, executor closures, re-entrant stack depths — lives in out-of-line
//! side tables that propagation never reads. See DESIGN.md ("Memory
//! layout") for the full picture.

use crate::dirty::{DirtySet, Scheduling};
use crate::fxhash::FxHashMap;
use crate::stats::Stats;
#[cfg(feature = "trace")]
use crate::trace::TraceEvent;
use crate::trace::{DirtyReason, GraphSnapshot, SnapshotNode, TraceSink};
use crate::value::Value;
use alphonse_graph::{DepGraph, NodeId, UnionFind};
use alphonse_mem as mem;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(1);

/// Delivers an event to the installed trace sink, if any.
///
/// The event expression is only evaluated inside the sink-present branch, so
/// with no sink each site costs a single untaken, well-predicted branch;
/// without the `trace` feature the sites compile out entirely. The sink is
/// cloned out of the slot first (an `Arc` bump) so the event may borrow the
/// same `Inner` the slot lives in.
macro_rules! emit {
    ($inner:expr, $ev:expr) => {
        #[cfg(feature = "trace")]
        {
            if let Some(sink) = $inner.sink.as_ref().map(Arc::clone) {
                sink.event(&$ev);
            }
        }
    };
}

/// The re-execution closure of an incremental procedure instance: runs the
/// body against the runtime and returns the fresh cached value. `Send +
/// Sync` so a session owning the closure can move between threads.
pub(crate) type Executor = Arc<dyn Fn(&Runtime) -> Box<dyn Value> + Send + Sync>;

/// Evaluation strategy of an incremental procedure (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Update lazily, upon calls to the procedure (the `DEMAND` pragma
    /// argument). This is the default.
    #[default]
    Demand,
    /// Re-execute during change propagation, before the next call request
    /// (the `EAGER` pragma argument). Requires the procedure to satisfy the
    /// paper's OBS restriction: spurious executions must not be observable.
    Eager,
}

/// What kind of entity a dependency-graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A storage location (top-level variable, object field, …).
    Location,
    /// An incremental procedure instance — one (procedure, argument-vector)
    /// pair of a cached procedure or maintained method.
    Computation,
}

// Packed per-node flag bits, one byte per node in `Inner::flags`. The
// evaluator's decision per dirty node ("location or computation? demand or
// eager? consistent? mid-execution?") reads exactly one byte instead of
// walking an `Option<CompState>` indirection.

/// Set iff the node is an incremental procedure instance (else: location).
const F_COMP: u8 = 1 << 0;
/// The paper's consistency bit (computations only; locations are always
/// consistent by definition).
const F_CONSISTENT: u8 = 1 << 1;
/// Strategy bit: set = `Strategy::Eager`, clear = `Strategy::Demand`.
const F_EAGER: u8 = 1 << 2;
/// The evaluator wanted to re-execute this eager node while it was still
/// running; it is re-queued when the execution finishes.
const F_REQUEUE: u8 = 1 << 3;
/// At least one execution of this node is currently on the call stack.
/// Depth beyond one (the paper's AVL `balance` re-entrancy, Section 7.3) is
/// rare and tracked out of line in `Inner::deep_stack`.
const F_ON_STACK: u8 = 1 << 4;

/// Buffered batch writes: one `(location, final value)` entry per distinct
/// written location, in first-write order.
pub(crate) type PendingWrites = Vec<(NodeId, Box<dyn Value>)>;

struct Frame {
    node: NodeId,
    /// This execution's stamp in the runtime-wide `last_accessed` table.
    /// Per-execution edge deduplication checks a node's stamp against this
    /// epoch instead of probing a per-frame hash set, so starting a frame
    /// allocates nothing.
    epoch: u64,
    /// Stamps this frame overwrote that may belong to a live enclosing
    /// frame; restored LIFO when this frame pops so the enclosing
    /// execution's dedup set survives nested (incl. re-entrant) calls.
    overflow: Vec<(NodeId, u64)>,
    /// Depth of nested `untracked` regions active in this frame
    /// (the `(*UNCHECKED*)` pragma of Section 6.4).
    suppress: u32,
    /// Set when a fresher execution of the same node started while this one
    /// was still running. A stale execution's result will be discarded, so
    /// recording further dependence edges for it would only pollute the
    /// fresher execution's edge set.
    stale: bool,
}

enum DirtyStore {
    Global(DirtySet),
    /// One inconsistent set per dependency-graph partition, keyed by the
    /// partition's current union-find root (Section 6.3).
    Partitioned(FxHashMap<NodeId, DirtySet>),
}

pub(crate) struct Inner {
    graph: DepGraph,
    // ------------------------------------------------------------------
    // Hot struct-of-arrays node state, all indexed by `NodeId::index()`.
    // These are the only per-node columns propagation touches.
    // ------------------------------------------------------------------
    /// Dense value slab: the cached value of each location / computation.
    values: Vec<Option<Box<dyn Value>>>,
    /// Packed per-node flag bits (`F_*` constants above).
    flags: Vec<u8>,
    /// Generation stamp of the most recently *started* execution of each
    /// computation node. An execution only commits its value to the cache
    /// if it is still the latest when it finishes; superseded (outer,
    /// stale) executions hand their value to their caller but leave the
    /// cache to the fresher run.
    gens: Vec<u64>,
    /// Frame-epoch stamp per node: the epoch of the execution frame that
    /// most recently recorded a dependence on the node. Epoch 0 is reserved
    /// for "never accessed". Epochs are globally unique per frame, so a
    /// stale stamp can never be mistaken for the current frame's.
    last_accessed: Vec<u64>,
    /// Re-execution closure of each computation node (`None` for
    /// variables). A dense column rather than a side table: the executor
    /// is fetched on *every* execution, and at graph sizes past the cache
    /// a hash probe per execution is a guaranteed random miss.
    executors: Vec<Option<Executor>>,
    // ------------------------------------------------------------------
    // Cold out-of-line side tables, keyed by `NodeId::index()` as u32.
    // ------------------------------------------------------------------
    /// Diagnostic labels (memo names, `var_named`, `set_label`).
    names: FxHashMap<u32, Arc<str>>,
    /// Extra on-stack depth beyond 1 for re-entrantly executing nodes;
    /// an entry `d` means total depth `1 + d`. Empty in steady state.
    deep_stack: FxHashMap<u32, u32>,
    stack: Vec<Frame>,
    /// One call stack per executor-pool worker slot, indexed by the slot in
    /// the worker's thread-local identity. Level-parallel draining gives
    /// each concurrently running executor its own frame stack — dependence
    /// recording on a worker thread targets that worker's innermost frame —
    /// while everything else (values, flags, the graph) stays shared behind
    /// the runtime lock. Empty between levels.
    #[cfg(feature = "parallel")]
    worker_stacks: Vec<Vec<Frame>>,
    /// The `set_parallelism` knob: `0` = sequential evaluator (default),
    /// `1` = level-at-a-time draining with inline execution (the honest
    /// single-worker control), `n >= 2` = dispatch multi-node levels to an
    /// `n`-worker pool.
    #[cfg(feature = "parallel")]
    parallelism: usize,
    /// Lazily created persistent worker pool (first multi-node level with
    /// `parallelism >= 2`). Rebuilt if the knob changes size.
    #[cfg(feature = "parallel")]
    exec_pool: Option<crate::exec_pool::ExecPool>,
    dirty: DirtyStore,
    partition: Option<UnionFind>,
    scheduling: Scheduling,
    dedup_edges: bool,
    evaluating: bool,
    /// Monotone propagation-wave counter: incremented every time the
    /// evaluation routine starts a (non-nested) run. Never reset — unlike
    /// [`Stats::waves`] — so trace wave ids stay unique across
    /// [`Runtime::reset_stats`].
    wave: u64,
    exec_gen: u64,
    /// Epoch of the most recently started execution frame.
    frame_epoch: u64,
    /// Reusable buffer for successor fan-out during propagation. Taken and
    /// returned around each use so steady-state drains allocate nothing;
    /// its capacity high-water mark is tracked in `stats.scratch_hwm`.
    succ_scratch: Vec<NodeId>,
    /// Reusable buffers for [`Runtime::batch`]: the pending-write list and
    /// the `NodeId`-indexed coalescing slot map (`slot + 1`, `0` = none).
    /// Taken at batch start and returned cleared (capacity kept) at commit,
    /// so steady-state batches allocate nothing for their bookkeeping.
    batch_pending: PendingWrites,
    batch_slots: Vec<usize>,
    /// Installed trace sink ([`crate::trace`]). `None` — the default — keeps
    /// every emission site down to one untaken branch.
    #[cfg(feature = "trace")]
    sink: Option<Arc<dyn TraceSink>>,
    stats: Stats,
}

/// Configures and builds a [`Runtime`].
///
/// # Example
///
/// ```
/// use alphonse::{Runtime, Scheduling};
/// let rt = Runtime::builder()
///     .partitioning(true)
///     .scheduling(Scheduling::HeightOrder)
///     .build();
/// assert!(rt.is_partitioned());
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    partitioning: bool,
    scheduling: Scheduling,
    dedup_edges: bool,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            partitioning: false,
            scheduling: Scheduling::HeightOrder,
            dedup_edges: true,
        }
    }
}

impl RuntimeBuilder {
    /// Enables dependency-graph partitioning with per-partition inconsistent
    /// sets (paper Section 6.3). Off by default.
    pub fn partitioning(mut self, on: bool) -> Self {
        self.partitioning = on;
        self
    }

    /// Chooses the order in which dirty nodes are processed
    /// (paper Section 4.5). Height order by default.
    pub fn scheduling(mut self, mode: Scheduling) -> Self {
        self.scheduling = mode;
        self
    }

    /// Controls per-execution deduplication of dependency edges. On by
    /// default; turning it off reproduces the paper's literal algorithm,
    /// which may record parallel edges.
    pub fn dedup_edges(mut self, on: bool) -> Self {
        self.dedup_edges = on;
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> Runtime {
        let dirty = if self.partitioning {
            DirtyStore::Partitioned(FxHashMap::default())
        } else {
            DirtyStore::Global(DirtySet::new(self.scheduling))
        };
        Runtime {
            inner: Arc::new(Mutex::new(Inner {
                graph: DepGraph::new(),
                values: Vec::new(),
                flags: Vec::new(),
                gens: Vec::new(),
                last_accessed: Vec::new(),
                executors: Vec::new(),
                names: FxHashMap::default(),
                deep_stack: FxHashMap::default(),
                stack: Vec::new(),
                #[cfg(feature = "parallel")]
                worker_stacks: Vec::new(),
                #[cfg(feature = "parallel")]
                parallelism: 0,
                #[cfg(feature = "parallel")]
                exec_pool: None,
                dirty,
                partition: self.partitioning.then(UnionFind::new),
                scheduling: self.scheduling,
                dedup_edges: self.dedup_edges,
                evaluating: false,
                wave: 0,
                exec_gen: 0,
                frame_epoch: 0,
                succ_scratch: Vec::new(),
                batch_pending: Vec::new(),
                batch_slots: Vec::new(),
                #[cfg(feature = "trace")]
                sink: crate::trace::default_sink(),
                stats: Stats::default(),
            })),
            exec_depth: Arc::new(AtomicU32::new(0)),
            #[cfg(feature = "parallel")]
            par_active: Arc::new(AtomicU32::new(0)),
            metrics: Arc::new(crate::metrics::RuntimeMetrics::new()),
            id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// The Alphonse incremental-computation runtime.
///
/// A `Runtime` owns the dependency graph, the call stack of executing
/// incremental procedure instances, the inconsistent set(s), and all cached
/// values. It is a cheap handle (`Clone` shares the same underlying state).
///
/// A session is a `Send` value: a whole runtime — including every handle
/// cloned from it — may be *moved* to another thread, which is what
/// [`crate::pool::SessionPool`] does to shard tenants over a fixed set of
/// worker threads. The supported concurrency model is **one thread at a
/// time**: the paper's evaluator is sequential and lists parallel execution
/// of a *single* dependency graph as future work, so invoking operations on
/// one runtime from two threads at once is a program error and trips the
/// same fail-stop re-entrancy check as a sink calling back into the runtime
/// (the internal lock is acquired with `try_lock`, never by blocking).
/// Cross-session parallelism needs no such machinery because independent
/// runtimes share nothing.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// let rt = Runtime::new();
/// let a = rt.var(2i64);
/// let b = rt.var(3i64);
/// let product = rt.memo("product", move |rt, &(): &()| a.get(rt) * b.get(rt));
/// assert_eq!(product.call(&rt, ()), 6);
/// a.set(&rt, 10);
/// assert_eq!(product.call(&rt, ()), 30); // recomputed
/// assert_eq!(product.call(&rt, ()), 30); // cached
/// ```
///
/// # Panics
///
/// Runtime operations panic if the program violates the paper's
/// restrictions (Section 3.5): a dependency cycle (a procedure transitively
/// depending on its own result, which breaks DET) is reported as soon as it
/// is detected. A panic unwinding out of an incremental procedure body
/// leaves the runtime in an unspecified (but memory-safe) state; it must not
/// be reused afterwards.
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<Mutex<Inner>>,
    /// Incremental call-stack depth, shadowed outside the lock so
    /// [`Runtime::in_tracked_context`] — the gate embedded hosts consult on
    /// *every* untracked location read (Section 6.1) — costs one atomic
    /// load instead of a lock round-trip. Updated only while the lock is
    /// held (at frame push/pop), and the runtime is not `Sync`, so a
    /// relaxed load always observes the current thread's latest update.
    exec_depth: Arc<AtomicU32>,
    /// Nonzero while a level of executors is running on the worker pool.
    /// [`Runtime::lock`] consults it on contention: during a parallel level
    /// the lock is legitimately shared between the driver and the workers,
    /// so contention means *wait*; at any other time it means *re-entrancy
    /// bug*, and the fail-stop panic is kept.
    #[cfg(feature = "parallel")]
    par_active: Arc<AtomicU32>,
    /// Lock-free telemetry registry ([`crate::metrics`]): wave/level
    /// histograms and worker gauges, recorded outside the runtime lock.
    /// Always present so `metrics_snapshot` stays source-compatible; the
    /// recording sites are compiled in by the `metrics` feature.
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    pub(crate) metrics: Arc<crate::metrics::RuntimeMetrics>,
    pub(crate) id: u64,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("Runtime")
            .field("id", &self.id)
            .field("nodes", &inner.values.len())
            .field("edges", &inner.graph.edge_count())
            .field("dirty", &inner.dirty_len())
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Inner {
    fn dirty_len(&self) -> usize {
        match &self.dirty {
            DirtyStore::Global(s) => s.len(),
            DirtyStore::Partitioned(m) => m.values().map(DirtySet::len).sum(),
        }
    }

    /// The diagnostic label of `n`, for error messages.
    fn name_of(&self, n: NodeId) -> &str {
        self.names
            .get(&(n.index() as u32))
            .map(|s| &**s)
            .unwrap_or("<unnamed>")
    }

    /// The call stack of the *current thread*: an executor-pool worker of
    /// this runtime gets its own per-slot stack (concurrent executors must
    /// not see each other's frames), every other thread — including the
    /// propagation driver — uses the main stack. Compiles to `&mut
    /// self.stack` without the `parallel` feature.
    #[cfg(feature = "parallel")]
    fn active_stack(&mut self) -> &mut Vec<Frame> {
        if let Some((pool_id, slot)) = crate::exec_pool::worker_identity() {
            if self.exec_pool.as_ref().is_some_and(|p| p.id() == pool_id) {
                return &mut self.worker_stacks[slot];
            }
        }
        &mut self.stack
    }

    #[cfg(not(feature = "parallel"))]
    #[inline(always)]
    fn active_stack(&mut self) -> &mut Vec<Frame> {
        &mut self.stack
    }

    /// Marks every live frame of node `n` stale, on the main stack and —
    /// under level-parallel draining — on every worker stack. A stale
    /// execution's result will be discarded (generation supersession), so
    /// it must stop recording dependence edges.
    fn mark_stale_frames(&mut self, n: NodeId) {
        for frame in &mut self.stack {
            if frame.node == n {
                frame.stale = true;
            }
        }
        #[cfg(feature = "parallel")]
        for stack in &mut self.worker_stacks {
            for frame in stack {
                if frame.node == n {
                    frame.stale = true;
                }
            }
        }
    }

    /// Bumps the on-stack depth of node `i`. Depth 1 lives in the flag
    /// byte; deeper re-entrancy spills to the `deep_stack` side table.
    fn on_stack_inc(&mut self, i: usize) {
        if self.flags[i] & F_ON_STACK == 0 {
            self.flags[i] |= F_ON_STACK;
        } else {
            *self.deep_stack.entry(i as u32).or_insert(0) += 1;
        }
    }

    /// Drops the on-stack depth of node `i`, clearing the flag at zero.
    fn on_stack_dec(&mut self, i: usize) {
        match self.deep_stack.get_mut(&(i as u32)) {
            Some(d) if *d == 1 => {
                self.deep_stack.remove(&(i as u32));
            }
            Some(d) => *d -= 1,
            None => {
                debug_assert!(self.flags[i] & F_ON_STACK != 0, "on_stack underflow");
                self.flags[i] &= !F_ON_STACK;
            }
        }
    }

    /// Approximate heap bytes held by the dependency graph plus the SoA
    /// node columns and side tables, from vector capacities. Feeds the
    /// `mem_bytes_hwm` gauge and E14's memory-per-node metric.
    fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let values = self.values.capacity() * size_of::<Option<Box<dyn Value>>>();
        let flags = self.flags.capacity();
        let gens = self.gens.capacity() * size_of::<u64>();
        let last = self.last_accessed.capacity() * size_of::<u64>();
        let execs = self.executors.capacity() * size_of::<Option<Executor>>();
        // Side tables charged per entry (hash-map overhead not modeled).
        let names = self.names.len() * size_of::<(u32, Arc<str>)>();
        let deep = self.deep_stack.len() * size_of::<(u32, u32)>();
        // Propagation state: the inconsistent set(s) retain capacity across
        // waves, so their footprint belongs to the steady-state bill too.
        let dirty = match &self.dirty {
            DirtyStore::Global(s) => s.approx_bytes(),
            DirtyStore::Partitioned(m) => m.values().map(DirtySet::approx_bytes).sum(),
        };
        self.graph.approx_bytes()
            + dirty
            + (values + flags + gens + last + names + execs + deep) as u64
    }

    /// Inserts `n` into the inconsistent set of its partition. `cause` is
    /// the predecessor that fanned dirt here ([`DirtyReason::Fanout`]),
    /// `None` when `n` itself originates the dirt.
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    fn insert_dirty(&mut self, n: NodeId, reason: DirtyReason, cause: Option<NodeId>) {
        let height = self.graph.height(n);
        let scheduling = self.scheduling;
        let root = self.partition.as_mut().map(|uf| uf.find(n));
        let fresh = match &mut self.dirty {
            DirtyStore::Global(s) => s.insert(n, height),
            DirtyStore::Partitioned(m) => m
                .entry(root.expect("partitioned store implies union-find"))
                .or_insert_with(|| DirtySet::new(scheduling))
                .insert(n, height),
        };
        if fresh {
            self.stats.dirtied += 1;
            emit!(
                self,
                TraceEvent::Dirtied {
                    node: n,
                    reason,
                    cause,
                }
            );
        }
    }

    /// Records the edge `n -> top-of-stack` if an incremental procedure is
    /// executing (paper Algorithm 3's `CreateEdge` step), merging partitions
    /// as Section 6.3 prescribes.
    fn record_dependence(&mut self, n: NodeId) {
        // Copy the top frame's routing state out first: `active_stack`
        // borrows all of `self`, so the frame reference cannot be held
        // across the counter/table updates below.
        let (depth, epoch, v, stale, suppressed) = {
            let stack = self.active_stack();
            let depth = stack.len();
            match stack.last() {
                None => return,
                Some(f) => (depth, f.epoch, f.node, f.stale, f.suppress > 0),
            }
        };
        if stale {
            return;
        }
        if suppressed {
            self.stats.untracked_reads += 1;
            return;
        }
        if self.dedup_edges {
            // O(1) per-execution dedup: the edge was already recorded iff
            // the node's stamp equals this frame's epoch. Epochs are
            // globally unique, so stamps left by finished frames can never
            // be mistaken for the current one. Concurrent same-level frames
            // may clobber each other's stamps; that only weakens dedup (a
            // parallel edge may slip through), never loses an edge.
            let stamp = self.last_accessed[n.index()];
            if stamp == epoch {
                self.stats.dedup_hits += 1;
                return;
            }
            if stamp != 0 && depth > 1 {
                // The stamp may belong to a live enclosing frame; remember
                // it so popping this frame restores the enclosing
                // execution's dedup set.
                let frame = self.active_stack().last_mut().expect("frame checked above");
                frame.overflow.push((n, stamp));
            }
            self.last_accessed[n.index()] = epoch;
        }
        let raises_before = self.graph.height_raises();
        self.graph.add_edge(n, v);
        self.stats.height_raises += self.graph.height_raises() - raises_before;
        self.stats.edges_created += 1;
        self.stats.mem_edges_hwm = self.stats.mem_edges_hwm.max(self.graph.edge_count() as u64);
        emit!(self, TraceEvent::EdgeAdded { from: n, to: v });
        assert!(
            !self.graph.cycle_suspected(),
            "dependency cycle detected at {} -> {} ({}): incremental procedures must be \
             deterministic and acyclic (paper restriction DET)",
            n,
            v,
            self.name_of(v),
        );
        if let Some(uf) = self.partition.as_mut() {
            uf.ensure(n);
            uf.ensure(v);
            if let Some((win, lose)) = uf.union(n, v) {
                if let DirtyStore::Partitioned(m) = &mut self.dirty {
                    if let Some(mut lost) = m.remove(&lose) {
                        let scheduling = self.scheduling;
                        m.entry(win)
                            .or_insert_with(|| DirtySet::new(scheduling))
                            .absorb(&mut lost);
                    }
                }
            }
        }
    }

    /// Marks every successor of `u` dirty — the fan-out step of the
    /// Section 4.5 marking rule. Successors are staged through the
    /// runtime-owned scratch buffer (the graph borrow must end before
    /// `insert_dirty` can mutate heights/partitions), so at steady state
    /// this performs zero heap allocations; `stats.scratch_hwm` records the
    /// buffer's capacity high-water mark as evidence.
    fn dirty_succs_of(&mut self, u: NodeId) {
        let mut scratch = std::mem::take(&mut self.succ_scratch);
        self.graph.succs_into(u, &mut scratch);
        self.stats.scratch_hwm = self.stats.scratch_hwm.max(scratch.capacity() as u64);
        for &s in &scratch {
            self.insert_dirty(s, DirtyReason::Fanout, Some(u));
        }
        self.succ_scratch = scratch;
    }

    /// Stores `value` into location `n` — the shared tail of `modify`
    /// (Algorithm 4) used by both `raw_write` and batch commit: record the
    /// writer's dependence, compare against the stored value (the cutoff
    /// comparison is only charged when a prior value exists), and dirty the
    /// location's readers when the value actually changed.
    fn write_location(&mut self, n: NodeId, value: Box<dyn Value>) {
        self.record_dependence(n);
        let i = n.index();
        debug_assert!(self.flags[i] & F_COMP == 0, "write on a computation node");
        let (changed, compared) = match &self.values[i] {
            Some(old) => (!old.dyn_eq(&*value), true),
            None => (true, false),
        };
        self.values[i] = Some(value);
        if compared {
            self.stats.comparisons += 1;
        }
        emit!(self, TraceEvent::Write { node: n, changed });
        #[cfg(feature = "trace")]
        if compared && !changed {
            emit!(self, TraceEvent::CutoffStop { node: n });
        }
        if changed {
            self.stats.changes += 1;
            // Only locations some incremental instance has actually read
            // need propagation — the paper's Algorithm 4 guards with
            // `nodeptr(l) # NIL` for the same reason. Skipping reader-less
            // locations is not merely an optimization: dirt queued before
            // the first reader exists would be processed *after* that
            // reader consumed the post-write value, spuriously marking it
            // mid-construction and breaking the frontier invariant of the
            // Section 4.5 marking rule.
            if self.graph.has_succs(n) {
                self.insert_dirty(n, DirtyReason::WriteChanged, None);
            }
        }
    }

    /// Appends one node to every SoA column (and the side tables it needs).
    fn alloc_node(
        &mut self,
        value: Option<Box<dyn Value>>,
        comp: Option<(Strategy, Executor)>,
        name: Option<Arc<str>>,
    ) -> NodeId {
        let n = self.graph.add_node();
        debug_assert_eq!(n.index(), self.values.len());
        #[cfg(feature = "trace")]
        let (kind, label) = (
            if comp.is_some() {
                NodeKind::Computation
            } else {
                NodeKind::Location
            },
            name.clone(),
        );
        let flags = match &comp {
            None => 0,
            Some((Strategy::Demand, _)) => F_COMP,
            Some((Strategy::Eager, _)) => F_COMP | F_EAGER,
        };
        // SoA column growth is graph-core memory; the boxed value itself
        // was billed to ValueSlab at the caller's `Box::new`.
        let _mem = mem::scope(mem::Tag::GraphCore);
        self.values.push(value);
        self.flags.push(flags);
        self.gens.push(0);
        self.last_accessed.push(0);
        self.executors.push(comp.map(|(_, executor)| executor));
        if let Some(name) = name {
            self.names.insert(n.index() as u32, name);
        }
        if let Some(uf) = self.partition.as_mut() {
            uf.ensure(n);
        }
        self.stats.nodes_created += 1;
        self.stats.mem_nodes += 1;
        self.stats.mem_bytes_hwm = self.stats.mem_bytes_hwm.max(self.approx_bytes());
        emit!(
            self,
            TraceEvent::NodeCreated {
                node: n,
                kind,
                label
            }
        );
        n
    }
}

/// What the evaluator decided to do with one dirty node.
enum Step {
    Idle,
    Continue,
    Execute(NodeId),
}

impl Runtime {
    /// Acquires the internal state lock. A session is used from one thread
    /// at a time, so the lock can only be unavailable when a runtime
    /// operation is re-entered — by a closure that runs under the lock (a
    /// `Var::with` body, a trace sink) or by a second thread misusing one
    /// session concurrently. `try_lock` keeps the `RefCell` fail-stop
    /// diagnostics for both cases instead of deadlocking. A poisoned lock
    /// (a panic unwound out of a runtime operation) is entered anyway: the
    /// documented contract already declares the runtime
    /// unspecified-but-memory-safe after a panic.
    #[inline]
    pub(crate) fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                // While a level of executors runs on the worker pool the
                // lock is legitimately contended — the driver and every
                // worker take it for short frame/commit/read sections — so
                // block instead of treating contention as re-entrancy.
                #[cfg(feature = "parallel")]
                if self.par_active.load(Ordering::Acquire) > 0 {
                    return match self.inner.lock() {
                        Ok(guard) => guard,
                        Err(e) => e.into_inner(),
                    };
                }
                panic!(
                    "runtime re-entered while internally locked: closures run by Var::with, \
                     with_value and trace sinks must not call back into runtime operations"
                )
            }
        }
    }

    /// Creates a runtime with default configuration (no partitioning,
    /// height-order scheduling, edge deduplication on).
    pub fn new() -> Self {
        RuntimeBuilder::default().build()
    }

    /// Starts configuring a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Returns `true` if this runtime maintains per-partition inconsistent
    /// sets (Section 6.3).
    pub fn is_partitioned(&self) -> bool {
        self.lock().partition.is_some()
    }

    /// The dirty-node draining order in use.
    pub fn scheduling(&self) -> Scheduling {
        self.lock().scheduling
    }

    /// Sets the wave-propagation parallelism (feature `parallel`):
    ///
    /// * `0` — the sequential evaluator (default; exactly the paper's
    ///   Section 4.5 routine).
    /// * `1` — level-at-a-time draining with inline execution: the same
    ///   batching, barriers and trace brackets as the parallel scheduler
    ///   but zero worker threads — the honest single-worker control for
    ///   speedup measurements.
    /// * `n >= 2` — multi-node levels run their eager executors
    ///   concurrently on a persistent `n`-thread worker pool.
    ///
    /// Level draining only engages for the default configuration
    /// (height-order scheduling, no partitioning); any other configuration
    /// keeps the sequential evaluator regardless of this knob. See
    /// DESIGN.md ("Parallel waves") for the execution model.
    #[cfg(feature = "parallel")]
    pub fn set_parallelism(&self, n: usize) {
        let mut inner = self.lock();
        if inner.parallelism != n {
            inner.parallelism = n;
            // A pool of the wrong size is rebuilt lazily on the next
            // multi-node level; dropping it here joins its (idle) workers.
            if inner.exec_pool.as_ref().is_some_and(|p| p.workers() != n) {
                inner.exec_pool = None;
            }
        }
    }

    /// Without the `parallel` feature the knob is compiled out: this stub
    /// ignores `n`, keeping callers source-compatible across feature
    /// configurations.
    #[cfg(not(feature = "parallel"))]
    pub fn set_parallelism(&self, _n: usize) {}

    /// The current wave-propagation parallelism (`0` = sequential
    /// evaluator; always `0` without the `parallel` feature).
    pub fn parallelism(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.lock().parallelism
        }
        #[cfg(not(feature = "parallel"))]
        {
            0
        }
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> Stats {
        let mut inner = self.lock();
        // Refresh the byte gauge so callers see growth since the last
        // allocation (side tables and scratch buffers grow on other paths).
        let bytes = inner.approx_bytes();
        inner.stats.mem_bytes_hwm = inner.stats.mem_bytes_hwm.max(bytes);
        inner.stats
    }

    /// Resets all work counters to zero.
    pub fn reset_stats(&self) {
        self.lock().stats = Stats::default();
    }

    /// A complete telemetry snapshot: every [`Stats`] counter plus the
    /// always-on wave/level latency histograms and executor-pool worker
    /// gauges maintained by [`crate::metrics`]. The histograms are
    /// maintained lock-free outside the runtime lock and are **not**
    /// cleared by [`Runtime::reset_stats`]; isolate a phase with
    /// [`MetricsSnapshot::delta_since`](crate::metrics::MetricsSnapshot::delta_since).
    ///
    /// Without the `metrics` feature the recording sites are compiled out:
    /// the counters are still populated but every histogram and gauge reads
    /// as empty.
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let m = &*self.metrics;
        let _mem = mem::scope(mem::Tag::Metrics);
        crate::metrics::MetricsSnapshot {
            counters: self.stats().fields(),
            wave_latency_ns: m.wave_latency_ns.snapshot(),
            wave_executed: m.wave_executed.snapshot(),
            wave_wasted: m.wave_wasted.snapshot(),
            level_width: m.level_width.snapshot(),
            level_latency_ns: m.level_latency_ns.snapshot(),
            workers: m.worker_snapshots(),
            queue_depth: m.queue_depth.load(Ordering::Relaxed),
            queue_depth_hwm: m.queue_depth_hwm.load(Ordering::Relaxed),
            pool: None,
            mem: mem::snapshot(),
        }
    }

    /// Current approximate memory footprint as `(nodes, live_edges,
    /// approx_bytes)`. Bytes cover the dependency graph arena, the SoA node
    /// columns and the cold side tables, from vector capacities; E14's
    /// memory-per-node metric is `approx_bytes / nodes`.
    pub fn memory_footprint(&self) -> (u64, u64, u64) {
        let mut inner = self.lock();
        let bytes = inner.approx_bytes();
        inner.stats.mem_bytes_hwm = inner.stats.mem_bytes_hwm.max(bytes);
        (
            inner.graph.node_count() as u64,
            inner.graph.edge_count() as u64,
            bytes,
        )
    }

    /// Total propagation waves run since the runtime was built. Unlike
    /// [`Stats::waves`] this is never reset, so it matches the `wave` ids
    /// stamped on [`crate::trace::TraceEvent::PropagateBegin`] events.
    pub fn waves(&self) -> u64 {
        self.lock().wave
    }

    // ------------------------------------------------------------------
    // Observability (see `crate::trace` for the event taxonomy).
    // ------------------------------------------------------------------

    /// Installs `sink` as this runtime's trace sink, returning the previous
    /// one; pass `None` to detach. Events are delivered synchronously while
    /// the runtime is internally locked — see [`crate::trace`] for the
    /// sink contract (in short: a sink must never re-enter runtime
    /// operations).
    #[cfg(feature = "trace")]
    pub fn set_sink(&self, sink: Option<Arc<dyn TraceSink>>) -> Option<Arc<dyn TraceSink>> {
        std::mem::replace(&mut self.lock().sink, sink)
    }

    /// Without the `trace` feature sinks cannot be attached: this stub
    /// ignores `sink` and returns `None`, keeping callers source-compatible
    /// across feature configurations.
    #[cfg(not(feature = "trace"))]
    pub fn set_sink(&self, _sink: Option<Arc<dyn TraceSink>>) -> Option<Arc<dyn TraceSink>> {
        None
    }

    /// Runs `f` with `sink` installed, then restores the previously
    /// installed sink (a scoped form of [`Runtime::set_sink`]).
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::trace::Recorder;
    /// use alphonse::Runtime;
    /// use std::sync::Arc;
    ///
    /// let rt = Runtime::new();
    /// let x = rt.var(1i64);
    /// let rec = Arc::new(Recorder::new(64));
    /// rt.with_trace(rec.clone(), || x.set(&rt, 2));
    /// assert!(!rec.is_empty());
    /// ```
    pub fn with_trace<R>(&self, sink: Arc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
        let prev = self.set_sink(Some(sink));
        let out = f();
        self.set_sink(prev);
        out
    }

    /// Returns `true` if a trace sink is currently installed (always
    /// `false` without the `trace` feature). Substrates consult this before
    /// allocating diagnostic labels on hot construction paths, keeping the
    /// no-observer configuration allocation-free.
    pub fn tracing(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.lock().sink.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Assigns a diagnostic label to node `n`, visible in
    /// [`Runtime::explain`], [`Runtime::dump_graph`], graph snapshots and
    /// the trace stream ([`crate::trace::TraceEvent::Labeled`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn set_label(&self, n: NodeId, label: &str) {
        let mut inner = self.lock();
        assert!(n.index() < inner.values.len(), "unknown node {n}");
        let label: Arc<str> = Arc::from(label);
        inner.names.insert(n.index() as u32, Arc::clone(&label));
        emit!(inner, TraceEvent::Labeled { node: n, label });
    }

    /// The diagnostic label of node `n`, if one was assigned (memo names
    /// are assigned automatically; [`Runtime::var_named`] and
    /// [`Runtime::set_label`] cover the rest).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn node_label(&self, n: NodeId) -> Option<String> {
        let inner = self.lock();
        assert!(n.index() < inner.values.len(), "unknown node {n}");
        inner.names.get(&(n.index() as u32)).map(|s| s.to_string())
    }

    /// A point-in-time copy of the dependency graph with full runtime
    /// fidelity — kind, label, consistency flag, dirty-queue membership,
    /// partition root and execution recency per node — renderable with
    /// [`crate::trace::render_dot`]. Prefer this over
    /// [`crate::trace::GraphSink`] while the runtime is still alive.
    pub fn graph_snapshot(&self) -> GraphSnapshot {
        let mut guard = self.lock();
        let inner = &mut *guard;
        let n_nodes = inner.values.len();
        let mut queued = vec![false; n_nodes];
        match &inner.dirty {
            DirtyStore::Global(s) => s.for_each_member(|m| queued[m.index()] = true),
            DirtyStore::Partitioned(map) => {
                for s in map.values() {
                    s.for_each_member(|m| queued[m.index()] = true);
                }
            }
        }
        let roots: Vec<Option<NodeId>> = match inner.partition.as_mut() {
            Some(uf) => (0..n_nodes)
                .map(|i| Some(uf.find(NodeId::from_index(i))))
                .collect(),
            None => vec![None; n_nodes],
        };
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut edges = Vec::new();
        for i in 0..n_nodes {
            let id = NodeId::from_index(i);
            let f = inner.flags[i];
            let (kind, consistent, last_exec) = if f & F_COMP == 0 {
                (NodeKind::Location, true, 0)
            } else {
                (NodeKind::Computation, f & F_CONSISTENT != 0, inner.gens[i])
            };
            nodes.push(SnapshotNode {
                id,
                kind,
                label: inner.names.get(&(i as u32)).map(|s| s.to_string()),
                consistent,
                queued: queued[i],
                partition: roots[i],
                last_exec,
                execs: 0,
            });
            for s in inner.graph.succs(id) {
                edges.push((id, s));
            }
        }
        GraphSnapshot { nodes, edges }
    }

    /// Verifies the runtime's internal data-structure invariants. Debug
    /// builds only — release builds compile this to a no-op, so harnesses
    /// (like the E11 differential tests) can call it unconditionally.
    ///
    /// Checked invariants:
    ///
    /// * the call stack is empty (only call this between top-level
    ///   operations) and every node's on-stack flag/depth is zero;
    /// * edge symmetry: the graph's successor and predecessor lists agree
    ///   as edge multisets;
    /// * every queued dirty node is a node of this runtime, and with
    ///   partitioning on it is queued under its own partition root;
    /// * at quiescence (no dirty nodes anywhere), the Section 4.5 marking
    ///   frontier invariant: every computation that depends on an
    ///   inconsistent computation is itself inconsistent.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) describing the first violated invariant.
    pub fn check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            let mut guard = self.lock();
            let inner = &mut *guard;
            assert!(
                inner.stack.is_empty(),
                "check_invariants: {} execution frame(s) still active; only call between \
                 top-level operations",
                inner.stack.len()
            );
            #[cfg(feature = "parallel")]
            for (slot, stack) in inner.worker_stacks.iter().enumerate() {
                assert!(
                    stack.is_empty(),
                    "check_invariants: worker {slot} still holds {} execution frame(s)",
                    stack.len()
                );
            }
            let n_nodes = inner.values.len();
            for (i, &f) in inner.flags.iter().enumerate() {
                assert!(
                    f & F_ON_STACK == 0,
                    "check_invariants: node {i} is flagged on-stack with an empty call stack"
                );
            }
            assert!(
                inner.deep_stack.is_empty(),
                "check_invariants: deep-stack side table non-empty with an empty call stack"
            );
            // Edge symmetry: every succ edge must have a matching pred edge
            // and vice versa, as multisets.
            let mut balance: FxHashMap<(NodeId, NodeId), i64> = FxHashMap::default();
            for i in 0..n_nodes {
                let u = NodeId::from_index(i);
                for v in inner.graph.succs(u) {
                    *balance.entry((u, v)).or_insert(0) += 1;
                }
                for p in inner.graph.preds(u) {
                    *balance.entry((p, u)).or_insert(0) -= 1;
                }
            }
            for ((u, v), count) in balance {
                assert_eq!(
                    count, 0,
                    "check_invariants: edge {u} -> {v} appears {count:+} more time(s) in the \
                     successor lists than in the predecessor lists"
                );
            }
            // Dirty-set sanity.
            let mut dirty_total = 0usize;
            let mut uf = inner.partition.as_mut();
            match &inner.dirty {
                DirtyStore::Global(s) => s.for_each_member(|m| {
                    assert!(
                        m.index() < n_nodes,
                        "check_invariants: dirty set contains unknown node {m}"
                    );
                    dirty_total += 1;
                }),
                DirtyStore::Partitioned(map) => {
                    for (&root, s) in map {
                        s.for_each_member(|m| {
                            assert!(
                                m.index() < n_nodes,
                                "check_invariants: dirty set contains unknown node {m}"
                            );
                            if let Some(uf) = uf.as_deref_mut() {
                                assert_eq!(
                                    uf.find(m),
                                    root,
                                    "check_invariants: node {m} queued under stale partition \
                                     root {root}"
                                );
                            }
                            dirty_total += 1;
                        });
                    }
                }
            }
            // Marking frontier (Section 4.5): once all dirt has drained,
            // nothing consistent may sit downstream of anything inconsistent.
            if dirty_total == 0 {
                for i in 0..n_nodes {
                    let u = NodeId::from_index(i);
                    let f = inner.flags[i];
                    let stale = f & F_COMP != 0 && f & F_CONSISTENT == 0;
                    if !stale {
                        continue;
                    }
                    for v in inner.graph.succs(u) {
                        let g = inner.flags[v.index()];
                        if g & F_COMP != 0 {
                            assert!(
                                g & F_CONSISTENT == 0,
                                "check_invariants: marking frontier violated — consistent \
                                 node {v} depends on inconsistent node {u}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Number of dependency-graph nodes (locations + procedure instances).
    pub fn node_count(&self) -> usize {
        self.lock().graph.node_count()
    }

    /// Number of live dependency edges.
    pub fn edge_count(&self) -> usize {
        self.lock().graph.edge_count()
    }

    /// Number of nodes currently awaiting propagation.
    pub fn dirty_count(&self) -> usize {
        self.lock().dirty_len()
    }

    /// Returns `true` while an incremental procedure is executing — i.e.
    /// reads and writes performed now will be recorded as its dependencies.
    pub fn in_tracked_context(&self) -> bool {
        self.exec_depth.load(Ordering::Relaxed) > 0
    }

    /// Returns `true` if a read performed right now would actually record a
    /// dependence edge: an incremental procedure is executing, its frame is
    /// not stale, and no `(*UNCHECKED*)` suppression is active. Useful for
    /// asserting that statically pruned accesses really are irrelevant.
    pub fn recording_context(&self) -> bool {
        let mut inner = self.lock();
        matches!(inner.active_stack().last(), Some(f) if !f.stale && f.suppress == 0)
    }

    /// What kind of entity node `n` represents.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        if self.lock().flags[n.index()] & F_COMP != 0 {
            NodeKind::Computation
        } else {
            NodeKind::Location
        }
    }

    /// Runs `f` with dependence recording suppressed for the *current*
    /// incremental procedure — the `(*UNCHECKED*)` pragma of Section 6.4.
    ///
    /// Nested incremental procedures called inside `f` still track their own
    /// dependencies normally; only edges into the procedure executing at the
    /// time of this call are suppressed. Outside any incremental procedure
    /// this is a no-op wrapper.
    pub fn untracked<T>(&self, f: impl FnOnce() -> T) -> T {
        struct Guard<'a> {
            rt: &'a Runtime,
            depth: usize,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                let mut inner = self.rt.lock();
                let stack = inner.active_stack();
                if stack.len() == self.depth {
                    if let Some(frame) = stack.last_mut() {
                        frame.suppress -= 1;
                    }
                }
            }
        }
        let depth = {
            let mut inner = self.lock();
            let stack = inner.active_stack();
            if let Some(frame) = stack.last_mut() {
                frame.suppress += 1;
            }
            stack.len()
        };
        let _guard = Guard { rt: self, depth };
        f()
    }

    // ------------------------------------------------------------------
    // Low-level location API (the paper's `access`/`modify` operations).
    // ------------------------------------------------------------------

    /// Allocates a tracked storage location holding `initial`.
    ///
    /// This is the low-level API used by [`Var`](crate::Var) and by language
    /// front ends that manage their own storage; prefer
    /// [`Runtime::var`](crate::Runtime::var) in application code.
    pub fn raw_alloc(&self, initial: Box<dyn Value>) -> NodeId {
        self.lock().alloc_node(Some(initial), None, None)
    }

    /// Allocates a location holding `initial` *and* records the executing
    /// incremental procedure's dependence on it, under one guard — the
    /// lazy-promotion `access` of Algorithm 3, where a location read for
    /// the first time inside a tracked context gets its graph node and its
    /// first dependence edge together. Equivalent to [`Runtime::raw_alloc`]
    /// followed by a read, minus the second lock round-trip.
    pub(crate) fn alloc_accessed(&self, initial: Box<dyn Value>) -> NodeId {
        let mut inner = self.lock();
        inner.stats.reads += 1;
        inner.stats.borrow_reads += 1;
        let node = inner.alloc_node(Some(initial), None, None);
        emit!(inner, TraceEvent::Read { node });
        inner.record_dependence(node);
        node
    }

    /// Reads a location, recording the dependence of the currently executing
    /// incremental procedure (if any) on it — the paper's `access`
    /// (Algorithm 3).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a location of this runtime.
    pub fn raw_read(&self, n: NodeId) -> Box<dyn Value> {
        let mut inner = self.lock();
        inner.stats.reads += 1;
        inner.stats.cloned_reads += 1;
        emit!(inner, TraceEvent::Read { node: n });
        inner.record_dependence(n);
        let i = n.index();
        debug_assert!(
            inner.flags[i] & F_COMP == 0,
            "raw_read on a computation node"
        );
        inner.values[i]
            .as_ref()
            .expect("location always holds a value")
            .dyn_clone()
    }

    /// Reads a location in place, without boxing or cloning the value: the
    /// borrow-based form of the paper's `access` (Algorithm 3). The
    /// dependence of the currently executing incremental procedure (if any)
    /// is recorded exactly as for [`Runtime::raw_read`], but the cached
    /// value is handed to `f` by reference instead of being cloned out.
    ///
    /// This is the hot-path read used by [`Var::get`](crate::Var::get) and
    /// [`Var::with`](crate::Var::with). Use [`Runtime::raw_read`] only when
    /// the value must outlive the read (escape the closure).
    ///
    /// The runtime is locked for the duration of `f`: the closure must not
    /// re-enter runtime operations (writes, memo calls, propagation, even
    /// reads) or the fail-stop re-entrancy check panics.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a location of this runtime.
    pub fn with_value<R>(&self, n: NodeId, f: impl FnOnce(&dyn Value) -> R) -> R {
        let mut inner = self.lock();
        inner.stats.reads += 1;
        inner.stats.borrow_reads += 1;
        emit!(inner, TraceEvent::Read { node: n });
        inner.record_dependence(n);
        let i = n.index();
        debug_assert!(
            inner.flags[i] & F_COMP == 0,
            "with_value on a computation node"
        );
        f(&**inner.values[i]
            .as_ref()
            .expect("location always holds a value"))
    }

    /// Writes a location — the paper's `modify` (Algorithm 4): the write
    /// first records a dependence (a procedure depends on storage it writes,
    /// Section 4.3), then stores the value, and dirties the node if the
    /// value actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a location of this runtime.
    pub fn raw_write(&self, n: NodeId, value: Box<dyn Value>) {
        let mut inner = self.lock();
        inner.stats.writes += 1;
        inner.write_location(n, value);
    }

    /// Hands out the runtime-owned batch buffers (empty, warm capacity) for
    /// a new transaction. A nested batch simply gets fresh empty buffers.
    pub(crate) fn take_batch_buffers(&self) -> (PendingWrites, Vec<usize>) {
        let mut inner = self.lock();
        (
            std::mem::take(&mut inner.batch_pending),
            std::mem::take(&mut inner.batch_slots),
        )
    }

    /// Commits a coalesced write transaction: one lock of the runtime for
    /// the whole set of writes, each applied with the same `modify`
    /// semantics as [`Runtime::raw_write`]. `pending` holds one entry per
    /// distinct written location (last write wins); `submitted` and
    /// `coalesced` are the transaction's raw tallies for the stats. The
    /// drained buffers are stowed back on the runtime for the next batch.
    pub(crate) fn commit_batch(
        &self,
        mut pending: PendingWrites,
        mut slots: Vec<usize>,
        submitted: u64,
        coalesced: u64,
    ) {
        let mut inner = self.lock();
        inner.stats.batches += 1;
        inner.stats.batched_writes += submitted;
        inner.stats.coalesced_writes += coalesced;
        emit!(
            inner,
            TraceEvent::BatchCommit {
                writes: submitted,
                coalesced,
                // The wave that will drain the queued dirt: the current one
                // when committing mid-propagation, otherwise the next to
                // begin.
                wave: if inner.evaluating {
                    inner.wave
                } else {
                    inner.wave + 1
                },
            }
        );
        for (n, value) in pending.drain(..) {
            slots[n.index()] = 0; // reset only the touched slots
            inner.stats.writes += 1;
            inner.write_location(n, value);
        }
        inner.batch_pending = pending;
        inner.batch_slots = slots;
    }

    // ------------------------------------------------------------------
    // Computation nodes (used by Memo; crate-internal).
    // ------------------------------------------------------------------

    /// Allocates a computation node for a new memo instance *and* books its
    /// first execution, all under one guard: the call and probe counters,
    /// node allocation and [`Runtime::exec_begin`] share the
    /// instance-creation path's single runtime lock. A fresh instance is
    /// about to execute unconditionally (it cannot be a cache hit and has
    /// no pending changes to settle first), so fusing the two halves saves
    /// a lock round-trip per instance created. The caller runs the
    /// returned executor unlocked and completes with
    /// [`Runtime::finish_exec_recording`].
    /// `height_hint` seeds the fresh node's evaluation priority from a
    /// statically computed stratum (see `Memo::set_height_hint`): the node
    /// starts at that height instead of 0, so the online raise step of
    /// later edge insertions usually has nothing to do. A hint of 0 is a
    /// no-op; an overestimate is harmless (the height queue tolerates
    /// conservative priorities — heights only order processing).
    pub(crate) fn alloc_comp_begun(
        &self,
        name: Arc<str>,
        strategy: Strategy,
        executor: Executor,
        height_hint: u32,
    ) -> (NodeId, Executor, u64) {
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.stats.calls += 1;
        inner.stats.memo_probes += 1;
        let n = inner.alloc_node(None, Some((strategy, executor)), Some(name));
        if height_hint > 0 && inner.graph.set_min_height(n, height_hint) {
            inner.stats.height_seeded += 1;
        }
        let (executor, my_gen) = self.exec_begin(inner, n);
        (n, executor, my_gen)
    }

    /// Pre-call settling plus cache consultation in (usually) one lock
    /// round-trip: tallies the call/probe counters, checks for pending
    /// changes that could affect `n` (the `Evaluate(Inconsistent)` step of
    /// Algorithm 5 — with partitioning, only `n`'s component), runs the
    /// evaluation routine if so, then probes the cache. On a hit the
    /// caller's dependence on `n` is recorded under the same guard and `f`
    /// runs on the cached value in place. `None` means a miss: the caller
    /// must execute the node.
    ///
    /// Only the rare pending case pays more than one lock: the evaluation
    /// routine must run unlocked (it re-enters the runtime), so that path
    /// re-locks for the probe afterwards.
    pub(crate) fn precall_cached<R>(
        &self,
        n: NodeId,
        f: impl FnOnce(&dyn Value) -> R,
    ) -> Option<R> {
        {
            let mut guard = self.lock();
            let inner = &mut *guard;
            inner.stats.calls += 1;
            inner.stats.memo_probes += 1;
            let pending = if inner.evaluating {
                false
            } else {
                let root = inner.partition.as_mut().map(|uf| uf.find(n));
                match &mut inner.dirty {
                    DirtyStore::Global(s) => !s.is_empty(),
                    DirtyStore::Partitioned(m) => {
                        let root = root.expect("partitioned store implies union-find");
                        m.get(&root).is_some_and(|s| !s.is_empty())
                    }
                }
            };
            if !pending {
                return self.try_hit(inner, n, f);
            }
        }
        self.evaluate(Some(n));
        self.try_hit(&mut self.lock(), n, f)
    }

    /// Cache probe under the caller's guard: runs `f` on the cached value if
    /// the computation node is consistent, without cloning it out of the
    /// cache, and — on that hit — records the caller's dependence on `n`.
    /// Returns `None` (without calling `f` or recording anything) on a miss:
    /// inconsistent, or consistent but evicted.
    fn try_hit<R>(
        &self,
        inner: &mut Inner,
        n: NodeId,
        f: impl FnOnce(&dyn Value) -> R,
    ) -> Option<R> {
        let i = n.index();
        debug_assert!(inner.flags[i] & F_COMP != 0, "computation node expected");
        if inner.flags[i] & F_CONSISTENT == 0 {
            return None;
        }
        if inner.values[i].is_some() {
            inner.stats.cache_hits += 1;
            emit!(inner, TraceEvent::CacheHit { node: n });
            inner.record_dependence(n);
            let v = inner.values[i].as_ref().expect("checked above");
            return Some(f(&**v));
        }
        // Consistent but value-less: either a self-recursive first
        // execution (DET violation — diagnose) or an evicted value
        // (recompute by reporting a miss).
        if inner.flags[i] & F_ON_STACK != 0 {
            panic!(
                "incremental procedure {} recursively depends on its own first execution \
                 (violates paper restriction DET)",
                inner.name_of(n)
            );
        }
        None
    }

    /// Cache-miss tail of the memo call path: executes `n`, records the
    /// caller's dependence on it, and runs `f` on the resulting value — the
    /// commit, the dependence edge and the read all share the post-execution
    /// lock. `f` sees the committed value in the common case, or the
    /// superseded execution's uncommitted result when a nested re-execution
    /// won the generation race (Section 7.3 re-entrancy).
    pub(crate) fn execute_recording<R>(&self, n: NodeId, f: impl FnOnce(&dyn Value) -> R) -> R {
        let (executor, my_gen) = self.exec_begin(&mut self.lock(), n);
        self.finish_exec_recording(n, &executor, my_gen, f)
    }

    /// Second half of [`Runtime::execute_recording`] for callers that
    /// already booked the execution (fresh memo instances book theirs
    /// inside [`Runtime::alloc_comp_begun`]'s guard): runs the executor
    /// unlocked, then finishes, records the caller's dependence and reads
    /// the result under one final guard.
    pub(crate) fn finish_exec_recording<R>(
        &self,
        n: NodeId,
        executor: &Executor,
        my_gen: u64,
        f: impl FnOnce(&dyn Value) -> R,
    ) -> R {
        let value = executor(self);
        let mut guard = self.lock();
        let inner = &mut *guard;
        let (uncommitted, _) = self.exec_end(inner, n, my_gen, value);
        inner.record_dependence(n);
        match uncommitted {
            Some(v) => f(&*v),
            None => {
                let v = inner.values[n.index()]
                    .as_ref()
                    .expect("execution just committed a value");
                f(&**v)
            }
        }
    }

    /// First half of re-executing computation node `n` per Algorithm 5
    /// (see [`Runtime::execute_recording`] and the evaluation loop): drops
    /// its old dependencies, books the execution and pushes the call frame,
    /// handing back the executor to run *outside* the lock. Takes the
    /// caller's guard so booking can share a lock round-trip with whatever
    /// precedes it (the dirty-node pop in the evaluation loop).
    ///
    /// Re-entrant executions (an instance re-executing while an older
    /// execution of the same instance is still on the stack, as the AVL
    /// `balance` method of Section 7.3 provokes after rotations) are
    /// resolved by generation stamps: only the latest-started execution
    /// commits to the cache; a superseded outer execution still returns its
    /// computed value to its caller (the `Some` case of
    /// [`Runtime::exec_end`]) but leaves cache, consistency flag and
    /// dependency edges to the fresher run.
    fn exec_begin(&self, inner: &mut Inner, n: NodeId) -> (Executor, u64) {
        let (executor, my_gen, frame) = self.exec_book(inner, n);
        inner.active_stack().push(frame);
        self.exec_depth.fetch_add(1, Ordering::Relaxed);
        (executor, my_gen)
    }

    /// The bookkeeping half of [`Runtime::exec_begin`]: everything except
    /// pushing the call frame. The level-parallel scheduler books a whole
    /// batch under one guard on the driver thread and hands each returned
    /// frame to the worker that will run the executor (the frame must live
    /// on the *executing* thread's stack for dependence recording to target
    /// it); the sequential path pushes it straight onto the current stack.
    fn exec_book(&self, inner: &mut Inner, n: NodeId) -> (Executor, u64, Frame) {
        inner.stats.executions += 1;
        let before = inner.graph.edges_removed();
        inner.graph.remove_pred_edges(n);
        let removed = inner.graph.edges_removed() - before;
        inner.stats.edges_removed += removed;
        inner.exec_gen += 1;
        let my_gen = inner.exec_gen;
        let i = n.index();
        debug_assert!(inner.flags[i] & F_COMP != 0, "execute on a location");
        // If an older execution of `n` is still running it is now
        // superseded: its result will be discarded, so stop it from
        // recording any further dependence edges.
        if inner.flags[i] & F_ON_STACK != 0 {
            inner.mark_stale_frames(n);
        }
        inner.flags[i] |= F_CONSISTENT;
        inner.on_stack_inc(i);
        inner.gens[i] = my_gen;
        let executor = Arc::clone(
            inner.executors[i]
                .as_ref()
                .expect("computation node has an executor"),
        );
        inner.frame_epoch += 1;
        let epoch = inner.frame_epoch;
        let frame = Frame {
            node: n,
            epoch,
            overflow: Vec::new(),
            suppress: 0,
            stale: false,
        };
        #[cfg(feature = "trace")]
        {
            emit!(inner, TraceEvent::ExecuteBegin { node: n });
            if removed > 0 {
                emit!(
                    inner,
                    TraceEvent::EdgesRemoved {
                        node: n,
                        count: removed,
                    }
                );
            }
        }
        (executor, my_gen, frame)
    }

    /// Second half of an execution: pops the call frame and commits (or,
    /// when superseded — the `Some` return — hands back) the computed
    /// value, plus whether the cache changed. Runs
    /// under the caller's guard so the commit can share a lock round-trip
    /// with whatever follows it (successor dirtying in the evaluation loop,
    /// dependence recording on the memo call path).
    fn exec_end(
        &self,
        inner: &mut Inner,
        n: NodeId,
        my_gen: u64,
        value: Box<dyn Value>,
    ) -> (Option<Box<dyn Value>>, bool) {
        self.pop_frame(inner, n);
        self.exec_commit(inner, n, my_gen, value)
    }

    /// The frame half of [`Runtime::exec_end`]: pops the current thread's
    /// innermost frame, restores overwritten dedup stamps and drops the
    /// node's on-stack depth. Under level-parallel draining each worker
    /// pops its own frame as soon as its executor returns (before the
    /// level's barrier), so re-queued dirt never sees a dead frame.
    fn pop_frame(&self, inner: &mut Inner, n: NodeId) {
        let frame = inner.active_stack().pop().expect("frame pushed above");
        self.exec_depth.fetch_sub(1, Ordering::Relaxed);
        debug_assert_eq!(frame.node, n, "call stack imbalance");
        // Restore the stamps this frame overwrote, newest first, so the
        // enclosing execution's dedup set is exactly what it was before the
        // nested call (a node stamped by several nested frames gets its
        // oldest surviving stamp back).
        for (node, stamp) in frame.overflow.into_iter().rev() {
            inner.last_accessed[node.index()] = stamp;
        }
        inner.on_stack_dec(n.index());
    }

    /// The commit half of [`Runtime::exec_end`]: generation supersession
    /// check, cutoff comparison, cache store and re-queue handling. The
    /// level-parallel scheduler commits a whole level's results in batch
    /// order under one guard; the sequential path commits immediately after
    /// popping the frame.
    fn exec_commit(
        &self,
        inner: &mut Inner,
        n: NodeId,
        my_gen: u64,
        value: Box<dyn Value>,
    ) -> (Option<Box<dyn Value>>, bool) {
        let i = n.index();
        let superseded = inner.gens[i] != my_gen;
        let requeue = if superseded {
            false
        } else {
            let r = inner.flags[i] & F_REQUEUE != 0;
            inner.flags[i] &= !F_REQUEUE;
            r
        };
        if superseded {
            // A nested execution superseded this one; its cache entry is the
            // one that matches the current program state. Hand our value to
            // the caller without committing it.
            emit!(
                inner,
                TraceEvent::ExecuteEnd {
                    node: n,
                    changed: false,
                }
            );
            return (Some(value), false);
        }
        // A first execution has no previous value: it counts as changed
        // without charging a cutoff comparison.
        let (changed, compared) = match &inner.values[i] {
            Some(old) => (!old.dyn_eq(&*value), true),
            None => (true, false),
        };
        inner.values[i] = Some(value);
        if compared {
            inner.stats.comparisons += 1;
            if !changed {
                // The body ran and reproduced the cached value: real work,
                // no downstream effect. Waves report this share through the
                // `wave_wasted` metrics histogram.
                inner.stats.wasted_executions += 1;
            }
        }
        emit!(inner, TraceEvent::ExecuteEnd { node: n, changed });
        #[cfg(feature = "trace")]
        if compared && !changed {
            emit!(inner, TraceEvent::CutoffStop { node: n });
        }
        if requeue {
            inner.insert_dirty(n, DirtyReason::Requeue, None);
        }
        (None, changed)
    }

    /// Explains why a node has its current value: lists its recorded
    /// dependencies (the paper's referenced-argument set `R(p)`), one line
    /// per predecessor with kind, diagnostic name and cached value.
    ///
    /// This realizes the "sophisticated debugging" benefit the paper's
    /// introduction attributes to the maintained dependency information.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this runtime.
    pub fn explain(&self, n: NodeId) -> String {
        use std::fmt::Write;
        let mut guard = self.lock();
        let inner = &mut *guard;
        let describe = |inner: &Inner, id: NodeId| -> String {
            let i = id.index();
            let f = inner.flags[i];
            let kind = if f & F_COMP == 0 {
                "location".to_string()
            } else {
                format!(
                    "instance of {} ({})",
                    inner.name_of(id),
                    if f & F_CONSISTENT != 0 {
                        "consistent"
                    } else {
                        "stale"
                    }
                )
            };
            let value = inner.values[i]
                .as_ref()
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|| "<never computed>".to_string());
            format!("{id}: {kind} = {value}")
        };
        let mut out = describe(inner, n);
        out.push('\n');
        // Predecessors are staged through the runtime-owned scratch buffer
        // (same pattern as `dirty_succs_of`), so this diagnostic allocates
        // nothing beyond the output string at steady state.
        let mut preds = std::mem::take(&mut inner.succ_scratch);
        inner.graph.preds_into(n, &mut preds);
        preds.sort_unstable();
        preds.dedup();
        if preds.is_empty() {
            out.push_str("  (no recorded dependencies)\n");
        }
        for &p in &preds {
            let _ = writeln!(out, "  depends on {}", describe(inner, p));
        }
        inner.succ_scratch = preds;
        out
    }

    /// Renders the dependency graph in a human-readable form: one line per
    /// node with its kind, diagnostic name, height, consistency and
    /// successors. Intended for debugging and tests.
    pub fn dump_graph(&self) -> String {
        use std::fmt::Write;
        let mut guard = self.lock();
        let inner = &mut *guard;
        let mut out = String::new();
        // Successors are staged through the reusable scratch buffer and
        // written straight into the output, instead of collecting a fresh
        // `Vec<String>` per node.
        let mut succs = std::mem::take(&mut inner.succ_scratch);
        for i in 0..inner.values.len() {
            let n = NodeId::from_index(i);
            let f = inner.flags[i];
            let kind = if f & F_COMP == 0 {
                "loc ".to_string()
            } else {
                format!(
                    "comp({}{})",
                    if f & F_CONSISTENT != 0 { "ok" } else { "dirty" },
                    if f & F_EAGER != 0 { ",eager" } else { "" }
                )
            };
            let name = inner.names.get(&(i as u32)).map(|s| &**s).unwrap_or("-");
            inner.graph.succs_into(n, &mut succs);
            let _ = write!(
                out,
                "{n} {kind} {name} h={} v={:?} -> [",
                inner.graph.height(n),
                inner.values[i].as_ref().map(|v| format!("{v:?}")),
            );
            for (k, s) in succs.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{s}");
            }
            out.push_str("]\n");
        }
        inner.succ_scratch = succs;
        out
    }

    /// Runs quiescence propagation until every inconsistent set is empty —
    /// the paper's evaluation routine, intended to be "called whenever
    /// cycles are available" (Section 4.5). Eager procedures re-execute
    /// here; demand procedures are only marked out-of-date.
    pub fn propagate(&self) {
        self.evaluate_bounded(None, u64::MAX);
    }

    /// Runs at most `max_steps` propagation steps, then yields — the
    /// preemptible form of the evaluation routine (Section 4.5: "can be
    /// preempted when necessary"). Returns `true` if the inconsistent sets
    /// are fully drained, `false` if work remains for a later slice.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::{Runtime, Strategy};
    /// let rt = Runtime::new();
    /// let v = rt.var(0i64);
    /// let m = rt.memo_with("watch", Strategy::Eager, move |rt, &(): &()| v.get(rt));
    /// m.call(&rt, ());
    /// v.set(&rt, 1);
    /// while !rt.propagate_steps(1) {
    ///     // interleave other work here
    /// }
    /// assert_eq!(rt.dirty_count(), 0);
    /// ```
    pub fn propagate_steps(&self, max_steps: u64) -> bool {
        self.evaluate_bounded(None, max_steps);
        self.dirty_count() == 0
    }

    // Capacity / eviction support (used by bounded memos).

    pub(crate) fn node_has_value(&self, n: NodeId) -> bool {
        self.lock().values[n.index()].is_some()
    }

    pub(crate) fn node_on_stack(&self, n: NodeId) -> bool {
        self.lock().flags[n.index()] & F_ON_STACK != 0
    }

    /// Drops the cached value of a computation node, forcing recomputation
    /// on its next call. The consistency flag and dependency edges are
    /// deliberately untouched: flipping the flag without queueing the
    /// node's successors would violate the marking frontier invariant
    /// ("successors of an inconsistent node are already inconsistent"), and
    /// the edges are what keeps change propagation through the evicted
    /// instance sound. An evicted node is thus "consistent but value-less":
    /// its dependents' cached results are still valid, only *its* result
    /// must be recomputed when next demanded.
    pub(crate) fn evict_value(&self, n: NodeId) {
        let mut inner = self.lock();
        let i = n.index();
        debug_assert!(
            inner.flags[i] & F_COMP != 0 && inner.flags[i] & F_ON_STACK == 0,
            "cannot evict an executing instance"
        );
        inner.values[i] = None;
    }

    fn evaluate(&self, origin: Option<NodeId>) {
        self.evaluate_bounded(origin, u64::MAX);
    }

    /// Core evaluation loop (Section 4.5). `origin`: evaluate only the
    /// partition containing this node; `None`: evaluate everything.
    /// `max_steps` bounds the number of dirty nodes processed (preemption).
    fn evaluate_bounded(&self, origin: Option<NodeId>, max_steps: u64) {
        #[cfg(feature = "trace")]
        let steps_before;
        #[cfg(feature = "metrics")]
        let (execs_before, wasted_before);
        #[cfg(feature = "parallel")]
        let level_mode;
        {
            let mut inner = self.lock();
            if inner.evaluating {
                return;
            }
            inner.evaluating = true;
            inner.wave += 1;
            inner.stats.waves += 1;
            #[cfg(feature = "trace")]
            {
                steps_before = inner.stats.propagation_steps;
            }
            #[cfg(feature = "metrics")]
            {
                execs_before = inner.stats.executions;
                wasted_before = inner.stats.wasted_executions;
            }
            // Level draining requires the default configuration: a single
            // global inconsistent set (so one `pop_level` sees the whole
            // frontier; `origin` is then irrelevant — the sequential
            // evaluator also drains the global set regardless of origin)
            // and height-order scheduling (Fifo has no independence
            // guarantee between queue neighbours).
            #[cfg(feature = "parallel")]
            {
                level_mode = inner.parallelism >= 1
                    && inner.scheduling == Scheduling::HeightOrder
                    && matches!(inner.dirty, DirtyStore::Global(_));
            }
            emit!(inner, TraceEvent::PropagateBegin { wave: inner.wave });
        }
        // Wave clock: stamped outside the lock, after the nested-wave early
        // return, so only real (outermost) waves are timed and a disabled
        // switch skips the clock read entirely.
        #[cfg(feature = "metrics")]
        let wave_t0 = crate::metrics::enabled().then(std::time::Instant::now);
        #[cfg(feature = "parallel")]
        if level_mode {
            self.drain_levels(max_steps);
        } else {
            self.drain_sequential(origin, max_steps);
        }
        #[cfg(not(feature = "parallel"))]
        self.drain_sequential(origin, max_steps);
        let mut inner = self.lock();
        inner.evaluating = false;
        emit!(
            inner,
            TraceEvent::PropagateEnd {
                wave: inner.wave,
                steps: inner.stats.propagation_steps - steps_before,
            }
        );
        #[cfg(feature = "metrics")]
        {
            // Per-wave work deltas come from the counters while the guard
            // is still held; the histogram writes happen after it drops —
            // metric recording itself never holds the runtime lock.
            let executed = inner.stats.executions - execs_before;
            let wasted = inner.stats.wasted_executions - wasted_before;
            drop(inner);
            if let Some(t0) = wave_t0 {
                self.metrics
                    .record_wave(t0.elapsed().as_nanos() as u64, executed, wasted);
            }
        }
    }

    /// The paper's sequential drain, one dirty node at a time in scheduling
    /// order. Each pass through the outer loop holds the lock once: commit
    /// the previous execution, pump mutation-only steps, and book the next
    /// execution, all under the same guard — one amortized lock round-trip
    /// per executed node. Only the executor itself (which re-enters the
    /// runtime through tracked reads and nested calls) runs unlocked.
    fn drain_sequential(&self, origin: Option<NodeId>, max_steps: u64) {
        let mut steps = 0u64;
        let mut running: Option<(NodeId, Executor, u64)> = None;
        loop {
            let finished = running.take().map(|(u, executor, my_gen)| {
                let value = executor(self);
                (u, my_gen, value)
            });
            let mut guard = self.lock();
            let inner = &mut *guard;
            if let Some((u, my_gen, value)) = finished {
                let (_, changed) = self.exec_end(inner, u, my_gen, value);
                if changed {
                    inner.dirty_succs_of(u);
                }
            }
            while steps < max_steps {
                steps += 1;
                match self.evaluation_step(inner, origin) {
                    Step::Idle => break,
                    Step::Continue => {}
                    Step::Execute(u) => {
                        let (executor, my_gen) = self.exec_begin(inner, u);
                        running = Some((u, executor, my_gen));
                        break;
                    }
                }
            }
            if running.is_none() {
                break;
            }
        }
    }

    /// Level-parallel drain: processes the inconsistent set one *height
    /// level* at a time. All dirty nodes at the current minimum height are
    /// mutually independent (an edge between two nodes forces a height
    /// difference), so the level's eager executors may run concurrently.
    ///
    /// Lock discipline per level — one driver acquisition on each side of
    /// the execution window:
    ///
    /// 1. **Drain + book** (one guard): `pop_level` the batch, handle
    ///    mutation-only nodes (locations, demand marking, on-stack
    ///    re-queue) inline, book every eager node (`exec_book`, in batch
    ///    order — deterministic, matching the sequential pop order) and
    ///    enqueue the worker jobs.
    /// 2. **Execute** (no driver lock): workers push their frames, run the
    ///    executors and pop their frames, taking the lock only for those
    ///    short sections and for tracked reads; `par_active` makes
    ///    contention block instead of tripping the re-entrancy panic. With
    ///    `parallelism <= 1` or a single-node batch the driver runs the
    ///    executors inline instead.
    /// 3. **Commit** (one guard): store each result in batch order
    ///    (generation check, cutoff comparison), dirty the successors of
    ///    changed nodes, close the `LevelEnd` bracket and update the
    ///    parallel stats.
    ///
    /// The `max_steps` preemption bound is checked between levels (a level
    /// is never split), so bounded drains are level-granular here — coarser
    /// than the sequential evaluator's per-node bound but with the same
    /// contract: remaining work stays queued for a later slice.
    #[cfg(feature = "parallel")]
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))] // `height` feeds the trace brackets
    fn drain_levels(&self, max_steps: u64) {
        use std::sync::mpsc::channel;
        let mut steps = 0u64;
        let mut batch: Vec<NodeId> = Vec::new();
        let mut booked: Vec<(NodeId, Executor, u64, Option<Frame>)> = Vec::new();
        loop {
            if steps >= max_steps {
                break;
            }
            let mut guard = self.lock();
            let inner = &mut *guard;
            batch.clear();
            let DirtyStore::Global(dirty) = &mut inner.dirty else {
                unreachable!("level mode requires the global dirty store");
            };
            let Some(height) = dirty.pop_level(&mut batch) else {
                break;
            };
            let width = batch.len() as u64;
            inner.stats.level_width_hwm = inner.stats.level_width_hwm.max(width);
            #[cfg(feature = "metrics")]
            self.metrics.level_width.record(width);
            emit!(
                inner,
                TraceEvent::LevelBegin {
                    wave: inner.wave,
                    height,
                    width,
                }
            );
            booked.clear();
            for &u in &batch {
                steps += 1;
                inner.stats.propagation_steps += 1;
                let i = u.index();
                let f = inner.flags[i];
                if f & F_COMP == 0 {
                    // Storage location: forward the change to everything
                    // computed from it. Successors sit at strictly greater
                    // heights, so they join later levels, never this batch.
                    inner.dirty_succs_of(u);
                } else if f & F_EAGER == 0 {
                    // Demand: just mark out-of-date and propagate.
                    if f & F_CONSISTENT != 0 {
                        inner.flags[i] &= !F_CONSISTENT;
                        inner.dirty_succs_of(u);
                    }
                } else if f & F_ON_STACK != 0 {
                    // Mid-execution (a nested drain under a live memo
                    // frame): mark stale and re-queue on completion.
                    inner.flags[i] &= !F_CONSISTENT;
                    inner.flags[i] |= F_REQUEUE;
                    inner.dirty_succs_of(u);
                } else {
                    let (executor, my_gen, frame) = self.exec_book(inner, u);
                    booked.push((u, executor, my_gen, Some(frame)));
                }
            }
            let executed = booked.len() as u64;
            let pooled = booked.len() >= 2 && inner.parallelism >= 2;
            if pooled {
                let workers = inner.parallelism;
                if inner
                    .exec_pool
                    .as_ref()
                    .is_none_or(|p| p.workers() != workers)
                {
                    inner.exec_pool = Some(crate::exec_pool::ExecPool::new(
                        workers,
                        Arc::clone(&self.metrics),
                    ));
                }
                while inner.worker_stacks.len() < workers {
                    inner.worker_stacks.push(Vec::new());
                }
                inner.stats.parallel_levels += 1;
                inner.stats.parallel_executions += executed;
                // Workers may contend for the lock from here on: flip the
                // blocking-lock mode before the first job can start (jobs
                // are submitted below while this guard is still held, so no
                // worker can observe the flag too early).
                self.par_active.fetch_add(1, Ordering::Release);
                #[cfg(feature = "metrics")]
                let level_t0 = crate::metrics::enabled().then(std::time::Instant::now);
                let (tx, rx) = channel::<(usize, Box<dyn Value>)>();
                let pool = inner.exec_pool.as_ref().expect("created above");
                for (idx, (u, executor, _, frame)) in booked.iter_mut().enumerate() {
                    let rt = self.clone();
                    let u = *u;
                    let executor = Arc::clone(executor);
                    let frame = frame.take().expect("frame booked above");
                    let tx = tx.clone();
                    pool.submit(mem::with(mem::Tag::ExecPool, || {
                        Box::new(move || {
                            rt.run_pooled_exec(u, frame, &executor, idx, &tx);
                        })
                    }));
                }
                drop(tx);
                drop(guard);
                // Level barrier: wait for every executor. A worker whose
                // job panicked drops its sender without sending; surface
                // that as the driver-side panic the sequential path would
                // have had.
                let mut results: Vec<Option<Box<dyn Value>>> =
                    (0..booked.len()).map(|_| None).collect();
                let mut received = 0usize;
                for (idx, value) in rx {
                    results[idx] = Some(value);
                    received += 1;
                }
                self.par_active.fetch_sub(1, Ordering::Release);
                #[cfg(feature = "metrics")]
                if let Some(t0) = level_t0 {
                    self.metrics
                        .level_latency_ns
                        .record(t0.elapsed().as_nanos() as u64);
                }
                assert_eq!(
                    received,
                    booked.len(),
                    "an executor panicked on a worker thread; the runtime is in an \
                     unspecified state"
                );
                let mut guard = self.lock();
                let inner = &mut *guard;
                for ((u, _, my_gen, _), value) in booked.drain(..).zip(results.drain(..)) {
                    let value = value.expect("all results received");
                    let (_, changed) = self.exec_commit(inner, u, my_gen, value);
                    if changed {
                        inner.dirty_succs_of(u);
                    }
                }
                emit!(
                    inner,
                    TraceEvent::LevelEnd {
                        wave: inner.wave,
                        height,
                        executed,
                    }
                );
            } else {
                // Inline execution (parallelism <= 1, or a level with at
                // most one eager node): same batching and brackets as the
                // pooled path, zero worker threads. Results still commit
                // together after the whole level has run, so `1` is an
                // honest single-worker control.
                drop(guard);
                let mut results: Vec<Box<dyn Value>> = Vec::with_capacity(booked.len());
                for (u, executor, _, frame) in booked.iter_mut() {
                    let frame = frame.take().expect("frame booked above");
                    {
                        let mut inner = self.lock();
                        inner.active_stack().push(frame);
                    }
                    self.exec_depth.fetch_add(1, Ordering::Relaxed);
                    let value = executor(self);
                    self.pop_frame(&mut self.lock(), *u);
                    results.push(value);
                }
                let mut guard = self.lock();
                let inner = &mut *guard;
                for ((u, _, my_gen, _), value) in booked.drain(..).zip(results.drain(..)) {
                    let (_, changed) = self.exec_commit(inner, u, my_gen, value);
                    if changed {
                        inner.dirty_succs_of(u);
                    }
                }
                emit!(
                    inner,
                    TraceEvent::LevelEnd {
                        wave: inner.wave,
                        height,
                        executed,
                    }
                );
            }
        }
    }

    /// One pooled execution, run on a worker thread: push the pre-booked
    /// frame onto this worker's stack, run the executor (its tracked reads
    /// and nested memo calls take the blocking lock and record against this
    /// worker's frame), pop the frame, and ship the result to the driver
    /// for the level's batch commit.
    #[cfg(feature = "parallel")]
    fn run_pooled_exec(
        &self,
        n: NodeId,
        frame: Frame,
        executor: &Executor,
        idx: usize,
        tx: &std::sync::mpsc::Sender<(usize, Box<dyn Value>)>,
    ) {
        {
            let mut inner = self.lock();
            inner.active_stack().push(frame);
        }
        self.exec_depth.fetch_add(1, Ordering::Relaxed);
        let value = executor(self);
        self.pop_frame(&mut self.lock(), n);
        let _ = tx.send((idx, value));
    }

    /// Pops and processes one dirty node; mutation-only cases are handled
    /// inline, eager re-execution is returned to the caller so the lock
    /// can be released first. The whole decision reads one flag byte.
    fn evaluation_step(&self, inner: &mut Inner, origin: Option<NodeId>) -> Step {
        // Partitions may have merged since the last step; re-find each time.
        let root = match origin {
            Some(o) => inner.partition.as_mut().map(|uf| uf.find(o)),
            None => None,
        };
        let popped = match (&mut inner.dirty, root) {
            (DirtyStore::Global(s), _) => s.pop(),
            (DirtyStore::Partitioned(m), Some(root)) => m.get_mut(&root).and_then(DirtySet::pop),
            (DirtyStore::Partitioned(m), None) => m.values_mut().find_map(|s| s.pop()),
        };
        let Some(u) = popped else {
            return Step::Idle;
        };
        inner.stats.propagation_steps += 1;
        let i = u.index();
        let f = inner.flags[i];
        if f & F_COMP == 0 {
            // Storage location: forward the change to everything computed
            // from it.
            inner.dirty_succs_of(u);
            Step::Continue
        } else if f & F_EAGER == 0 {
            // Demand: just mark out-of-date and propagate (Section 4.5).
            if f & F_CONSISTENT != 0 {
                inner.flags[i] &= !F_CONSISTENT;
                inner.dirty_succs_of(u);
            }
            Step::Continue
        } else if f & F_ON_STACK != 0 {
            // Cannot re-execute a node that is mid-execution; mark it stale
            // and have it re-queued on completion.
            inner.flags[i] &= !F_CONSISTENT;
            inner.flags[i] |= F_REQUEUE;
            inner.dirty_succs_of(u);
            Step::Continue
        } else {
            // Eager: re-execute now; if the value changes the caller
            // dirties the successors.
            Step::Execute(u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_locations_read_back_written_values() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(5i64));
        assert_eq!(rt.node_kind(n), NodeKind::Location);
        let v = rt.raw_read(n);
        assert!(v.dyn_eq(&5i64));
        rt.raw_write(n, Box::new(9i64));
        assert!(rt.raw_read(n).dyn_eq(&9i64));
    }

    #[test]
    fn writes_outside_procedures_do_not_create_edges() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        rt.raw_write(n, Box::new(2i64));
        let _ = rt.raw_read(n);
        assert_eq!(rt.edge_count(), 0);
        assert_eq!(rt.stats().reads, 1);
        assert_eq!(rt.stats().writes, 1);
    }

    #[test]
    fn unchanged_write_does_not_dirty() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        // Give the location a reader so writes are propagation-relevant.
        let probe = rt.memo("probe", move |rt, &(): &()| {
            crate::value::downcast_value::<i64>(&*rt.raw_read(n), "probe")
        });
        probe.call(&rt, ());
        rt.raw_write(n, Box::new(1i64));
        assert_eq!(rt.dirty_count(), 0, "unchanged value: no propagation");
        rt.raw_write(n, Box::new(2i64));
        assert_eq!(rt.dirty_count(), 1);
        assert_eq!(rt.stats().changes, 1);
    }

    #[test]
    fn readerless_writes_never_dirty() {
        // Algorithm 4 guards with `nodeptr(l) # NIL`: a location no
        // incremental instance has read needs no propagation.
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        rt.raw_write(n, Box::new(2i64));
        rt.raw_write(n, Box::new(3i64));
        assert_eq!(rt.dirty_count(), 0);
        assert_eq!(rt.stats().changes, 2);
    }

    #[test]
    fn untracked_outside_procedure_is_noop() {
        let rt = Runtime::new();
        let n = rt.raw_alloc(Box::new(1i64));
        let v = rt.untracked(|| rt.raw_read(n));
        assert!(v.dyn_eq(&1i64));
        assert!(!rt.in_tracked_context());
    }

    #[test]
    fn runtime_debug_is_nonempty() {
        let rt = Runtime::new();
        assert!(format!("{rt:?}").contains("Runtime"));
    }

    #[test]
    fn builder_configures_partitioning_and_scheduling() {
        let rt = Runtime::builder()
            .partitioning(true)
            .scheduling(Scheduling::Fifo)
            .dedup_edges(false)
            .build();
        assert!(rt.is_partitioned());
        assert_eq!(rt.scheduling(), Scheduling::Fifo);
    }

    #[test]
    fn distinct_runtimes_have_distinct_ids() {
        let a = Runtime::new();
        let b = Runtime::new();
        assert_ne!(a.id, b.id);
        assert_eq!(a.clone().id, a.id);
    }

    #[test]
    fn propagate_on_clean_runtime_is_noop() {
        let rt = Runtime::new();
        rt.propagate();
        assert_eq!(rt.stats().propagation_steps, 0);
    }

    #[test]
    fn memory_gauges_grow_with_the_graph() {
        let rt = Runtime::new();
        let base = rt.stats();
        let a = rt.var(1i64);
        let m = rt.memo("m", move |rt, &(): &()| a.get(rt) + 1);
        m.call(&rt, ());
        let s = rt.stats();
        assert_eq!(s.mem_nodes - base.mem_nodes, 2);
        assert!(s.mem_edges_hwm >= 1);
        assert!(s.mem_bytes_hwm > 0);
        let (nodes, edges, bytes) = rt.memory_footprint();
        assert_eq!(nodes, 2);
        assert_eq!(edges, 1);
        assert!(bytes >= s.mem_nodes); // at least a byte per node, trivially
    }

    #[test]
    fn runtime_and_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Runtime>();
        assert_send::<crate::Var<i64>>();
    }

    #[test]
    fn runtime_moves_across_threads() {
        let rt = Runtime::new();
        let x = rt.var(1i64);
        let m = rt.memo("double", move |rt, &(): &()| x.get(rt) * 2);
        assert_eq!(m.call(&rt, ()), 2);
        let handle = std::thread::spawn(move || {
            x.set(&rt, 21);
            m.call(&rt, ())
        });
        assert_eq!(handle.join().unwrap(), 42);
    }
}
