//! Machine-independent work counters.
//!
//! The paper's evaluation (Section 9) is asymptotic, not empirical, so the
//! reproduction measures *work* — executions avoided, edges maintained,
//! propagation steps — in addition to wall-clock time. Every counter is a
//! simple monotone tally maintained by the runtime.
//!
//! Counters answer *how much*; for *which node* and *why* — per-event
//! observability, timelines, flame traces and hot-node profiles — see the
//! [`crate::trace`] module, which streams the individual operations these
//! tallies aggregate.

use std::fmt;

/// Applies a macro to the complete list of [`Stats`] counter fields.
///
/// This is the single source of truth for the field list: `delta_since`
/// builds an exhaustive struct literal from it (so a newly added counter
/// that is missing here fails to compile rather than silently skipping
/// delta math), and [`Stats::fields`] / `Display` render from it.
macro_rules! for_each_counter {
    ($m:ident) => {
        $m!(
            executions,
            wasted_executions,
            cache_hits,
            calls,
            reads,
            writes,
            changes,
            edges_created,
            edges_removed,
            dirtied,
            height_seeded,
            height_raises,
            waves,
            propagation_steps,
            comparisons,
            nodes_created,
            untracked_reads,
            borrow_reads,
            cloned_reads,
            dedup_hits,
            memo_probes,
            batches,
            batched_writes,
            coalesced_writes,
            scratch_hwm,
            parallel_levels,
            parallel_executions,
            level_width_hwm,
            mem_nodes,
            mem_edges_hwm,
            mem_bytes_hwm
        )
    };
}

/// A snapshot of runtime work counters.
///
/// Obtain one with [`Runtime::stats`](crate::Runtime::stats); reset the
/// tallies with [`Runtime::reset_stats`](crate::Runtime::reset_stats).
/// Subtracting two snapshots (via [`Stats::delta_since`]) isolates the work
/// done by one phase of a program. The `Display` implementation renders an
/// aligned name/value table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Stats {
    /// Incremental procedure bodies actually run (paper: executions not
    /// avoided by caching).
    pub executions: u64,
    /// Executions whose recomputed value compared equal to the cached one —
    /// work that cutoff then stopped from propagating. The per-wave share
    /// of these feeds the `wave_wasted` histogram in [`crate::metrics`];
    /// the trace layer's `waste` report classifies the same runs per node.
    pub wasted_executions: u64,
    /// Calls answered from the cache without running the body.
    pub cache_hits: u64,
    /// Total calls to incremental procedures (hits + executions + stale
    /// self-reads).
    pub calls: u64,
    /// Tracked reads of storage locations.
    pub reads: u64,
    /// Tracked writes to storage locations.
    pub writes: u64,
    /// Writes whose new value differed from the stored one (the changes that
    /// seed quiescence propagation).
    pub changes: u64,
    /// Dependency edges recorded (after per-execution deduplication).
    pub edges_created: u64,
    /// Dependency edges discarded by `RemovePredEdges` before re-execution.
    pub edges_removed: u64,
    /// Nodes inserted into an inconsistent set.
    pub dirtied: u64,
    /// Fresh computation nodes whose height was lifted by a static-strata
    /// seed before any edge arrived (see `Memo::set_height_hint`).
    pub height_seeded: u64,
    /// Node-height increases performed by the online raise step of edge
    /// insertion. Static height seeding exists to shrink this number; E2
    /// compares it with seeding on and off.
    pub height_raises: u64,
    /// Propagation waves: non-nested entries into the Section 4.5
    /// evaluation routine. Matches the `wave` ids on trace events (see
    /// [`Runtime::waves`](crate::Runtime::waves) for the never-reset
    /// counterpart).
    pub waves: u64,
    /// Nodes processed by the evaluator.
    pub propagation_steps: u64,
    /// Value-equality comparisons performed for cutoff decisions.
    pub comparisons: u64,
    /// Dependency-graph nodes created.
    pub nodes_created: u64,
    /// Reads performed inside `untracked` regions (Section 6.4 UNCHECKED).
    pub untracked_reads: u64,
    /// Tracked reads served in place through the borrow-based API
    /// (`Runtime::with_value` and the typed wrappers built on it) — no
    /// clone, no box.
    pub borrow_reads: u64,
    /// Tracked reads that cloned the value out of the cache
    /// (`Runtime::raw_read` and typed reads whose value escapes).
    pub cloned_reads: u64,
    /// Dependence recordings skipped because the frame-epoch table showed
    /// the edge was already recorded in the current execution frame.
    pub dedup_hits: u64,
    /// Memo argument-table lookups (hash probes on the call path).
    pub memo_probes: u64,
    /// Write transactions committed (`Runtime::batch` calls).
    pub batches: u64,
    /// Writes submitted through a transaction handle (before coalescing).
    pub batched_writes: u64,
    /// Batched writes absorbed by last-write-wins coalescing: repeated
    /// writes to the same location within one transaction, all but the
    /// final of which never reach storage.
    pub coalesced_writes: u64,
    /// High-water mark (in nodes of capacity) of the runtime's reusable
    /// successor scratch buffer. Once propagation reaches steady state this
    /// stops growing: fan-out performs zero heap allocations.
    pub scratch_hwm: u64,
    /// Height levels whose eager batch was dispatched to the execution
    /// worker pool (feature `parallel`, [`Runtime::set_parallelism`]
    /// enabled). Single-node levels execute inline and are not counted.
    ///
    /// [`Runtime::set_parallelism`]: crate::Runtime::set_parallelism
    pub parallel_levels: u64,
    /// Executor runs performed on worker-pool threads (the per-node share
    /// of `parallel_levels`; always `<= executions`).
    pub parallel_executions: u64,
    /// Widest dirty batch drained at a single height level — the available
    /// parallelism high-water mark. Maintained whenever the level-drain
    /// scheduler runs, including one-node levels.
    pub level_width_hwm: u64,
    /// Dependency-graph nodes currently resident. Nodes are never freed, so
    /// this equals `nodes_created` since the last reset plus whatever
    /// existed before it — kept separate so memory gauges survive
    /// `reset_stats` semantics uniformly.
    pub mem_nodes: u64,
    /// High-water mark of live dependency edges — the edge component of the
    /// runtime's memory footprint.
    pub mem_edges_hwm: u64,
    /// High-water mark of the approximate heap bytes held by the dependency
    /// graph arena plus the struct-of-arrays node columns and side tables
    /// (from vector capacities). E14's memory-per-node metric is
    /// `mem_bytes_hwm / mem_nodes`.
    pub mem_bytes_hwm: u64,
}

impl Stats {
    /// Returns the per-field difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds the
    /// corresponding counter of `self` (snapshots out of order).
    #[must_use]
    pub fn delta_since(&self, earlier: &Stats) -> Stats {
        // Exhaustive struct literal: a counter missing from
        // `for_each_counter!` is a compile error here, not a silent zero.
        macro_rules! sub {
            ($($f:ident),* $(,)?) => {
                Stats { $($f: {
                    debug_assert!(self.$f >= earlier.$f, concat!("stats went backwards: ", stringify!($f)));
                    self.$f - earlier.$f
                }),* }
            };
        }
        for_each_counter!(sub)
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! list {
            ($($f:ident),* $(,)?) => { vec![$((stringify!($f), self.$f)),*] };
        }
        for_each_counter!(list)
    }

    /// Total "work" proxy: executions plus propagation steps plus edge
    /// maintenance. Used by benches as a machine-independent cost measure.
    #[must_use]
    pub fn work(&self) -> u64 {
        self.executions + self.propagation_steps + self.edges_created + self.edges_removed
    }
}

impl fmt::Display for Stats {
    /// Renders the counters as an aligned two-column table (names
    /// left-aligned, values right-aligned), with the [`Stats::work`]
    /// aggregate as the final row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut rows = self.fields();
        rows.push(("work()", self.work()));
        let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let val_w = rows
            .iter()
            .map(|(_, v)| v.to_string().len())
            .max()
            .unwrap_or(1);
        for (i, (name, value)) in rows.iter().enumerate() {
            if i + 1 == rows.len() {
                write!(f, "{name:<name_w$}  {value:>val_w$}")?;
            } else {
                writeln!(f, "{name:<name_w$}  {value:>val_w$}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes `value(i)` into the i-th counter, in declaration order.
    fn set_all(s: &mut Stats, value: impl Fn(u64) -> u64) {
        macro_rules! assign {
            ($($f:ident),* $(,)?) => {{
                let mut i = 0u64;
                $(s.$f = value(i); i += 1;)*
                let _ = i;
            }};
        }
        for_each_counter!(assign)
    }

    #[test]
    fn default_is_zero() {
        let s = Stats::default();
        assert_eq!(s.work(), 0);
        assert_eq!(s.executions, 0);
        assert!(s.fields().iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = Stats {
            executions: 2,
            cache_hits: 1,
            ..Stats::default()
        };
        let late = Stats {
            executions: 5,
            cache_hits: 4,
            edges_created: 7,
            ..Stats::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.executions, 3);
        assert_eq!(d.cache_hits, 3);
        assert_eq!(d.edges_created, 7);
    }

    #[test]
    fn delta_round_trips_every_counter() {
        // Every counter gets a distinct nonzero value on both sides; the
        // delta must differ per field too. Because `set_all`, `fields` and
        // `delta_since` are all generated from `for_each_counter!`, a new
        // counter is covered here automatically — and a counter missing
        // from the macro list breaks `delta_since`'s struct literal at
        // compile time.
        let mut early = Stats::default();
        let mut late = Stats::default();
        set_all(&mut early, |i| i + 1);
        set_all(&mut late, |i| (i + 1) * 10);
        let d = late.delta_since(&early);
        for (i, (name, v)) in d.fields().into_iter().enumerate() {
            let i = i as u64;
            assert_eq!(v, (i + 1) * 9, "delta miscomputed for counter `{name}`");
        }
        // And the delta against zero recovers `late` exactly.
        assert_eq!(late.delta_since(&Stats::default()), late);
    }

    #[test]
    fn display_is_aligned_and_complete() {
        let mut s = Stats::default();
        set_all(&mut s, |i| 10u64.pow((i % 5) as u32));
        let table = s.to_string();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(
            lines.len(),
            s.fields().len() + 1,
            "one row per counter plus the work() footer"
        );
        // Aligned: every row has the same width.
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "rows not aligned:\n{table}"
        );
        assert!(lines.last().unwrap().starts_with("work()"));
        for (name, _) in s.fields() {
            assert!(
                table.contains(name),
                "missing counter `{name}` in:\n{table}"
            );
        }
    }

    #[test]
    fn work_sums_cost_fields() {
        let s = Stats {
            executions: 1,
            propagation_steps: 2,
            edges_created: 3,
            edges_removed: 4,
            cache_hits: 100, // not part of work
            ..Stats::default()
        };
        assert_eq!(s.work(), 10);
    }

    #[test]
    #[should_panic(expected = "stats went backwards")]
    #[cfg(debug_assertions)]
    fn delta_backwards_panics_in_debug() {
        let early = Stats {
            executions: 5,
            ..Stats::default()
        };
        let late = Stats::default();
        let _ = late.delta_since(&early);
    }
}
