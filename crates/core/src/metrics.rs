//! Always-on runtime telemetry: lock-free counters, latency histograms and
//! worker/shard gauges.
//!
//! The [`crate::stats`] counters answer *how much work* the runtime did; the
//! [`crate::trace`] layer answers *which node and why*, but is forensic and
//! off by default. This module fills the gap a production incremental
//! service needs: cheap, always-on **distributions** — wave-latency
//! percentiles, per-wave executed/wasted work, level widths, worker
//! utilization and shard serving latency — recorded on the hot paths
//! *without taking the runtime lock*.
//!
//! # Design
//!
//! * **Histogram** — HDR-style log-bucketed counts: values below 8 get one
//!   bucket each, every power-of-two octave above that is split into 3
//!   sub-buckets, so the relative quantization error is bounded by 1/3
//!   (bucket boundaries grow by a factor of ~1.26). Recording is one
//!   relaxed `fetch_add` per bucket plus sum/max maintenance; no locks, no
//!   allocation, wait-free.
//! * **Snapshots** — [`Histogram::snapshot`] copies the buckets into a
//!   plain [`HistogramSnapshot`] that supports merge, delta, percentile
//!   readout and a sparse wire form (only nonzero buckets).
//! * **Gating** — the `metrics` cargo feature (on by default) compiles the
//!   recording sites in `runtime`/`exec_pool`/`pool`; without it the hot
//!   paths carry zero instrumentation and [`Runtime::metrics_snapshot`]
//!   returns an empty snapshot. At runtime, [`set_enabled`] is a global
//!   kill-switch (one relaxed atomic load per site) so a single binary can
//!   measure its own instrumentation cost — experiment E16 uses exactly
//!   this to bound the overhead.
//!
//! # Reading metrics
//!
//! ```
//! use alphonse::Runtime;
//! let rt = Runtime::new();
//! let v = rt.var(1i64);
//! let m = rt.memo("double", move |rt, &(): &()| v.get(rt) * 2);
//! m.call(&rt, ());
//! v.set(&rt, 3);
//! rt.propagate();
//! let snap = rt.metrics_snapshot();
//! # #[cfg(feature = "metrics")]
//! assert!(snap.wave_latency_ns.count() > 0);
//! println!("p99 wave latency: {} ns", snap.wave_latency_ns.percentile(0.99));
//! println!("{}", snap.render_prometheus());
//! ```
//!
//! [`Runtime::metrics_snapshot`]: crate::Runtime::metrics_snapshot

use alphonse_mem as memacct;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave above the linear range. Boundaries
/// then grow by a factor of `(k+1)/k` per bucket, i.e. at most 4/3 ≈ 1.33
/// and asymptotically 2^(1/3) ≈ 1.26 — the "power-of-~1.25" resolution.
const SUBS_PER_OCTAVE: u64 = 3;

/// Values below this get exact one-per-value buckets.
const LINEAR_MAX: u64 = 8;

/// Total bucket count: 8 linear buckets for `0..8`, then 3 sub-buckets for
/// each octave `2^e ..= 2^(e+1)-1`, `e` in `3..=62` (values with the top
/// bit set clamp into the last bucket).
pub const N_BUCKETS: usize = LINEAR_MAX as usize + (62 - 3 + 1) * SUBS_PER_OCTAVE as usize;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables metric recording (default: enabled).
///
/// This is the runtime kill-switch: with recording disabled every
/// instrumentation site reduces to one relaxed atomic load (and skips its
/// clock reads), which is what lets one binary measure its own overhead.
/// For a zero-cost build, compile without the `metrics` feature instead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled (see [`set_enabled`]).
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The bucket index a value lands in.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // 3..=63
    if e >= 63 {
        return N_BUCKETS - 1;
    }
    // Which third of the octave `2^e..2^(e+1)` the value falls in:
    // floor(3v / 2^e) is in 3..=5 for v in that range. Widened to u128 so
    // the multiply cannot overflow near u64::MAX.
    let sub = ((SUBS_PER_OCTAVE as u128 * v as u128) >> e) as usize - SUBS_PER_OCTAVE as usize;
    LINEAR_MAX as usize + (e - 3) * SUBS_PER_OCTAVE as usize + sub
}

/// The largest value that lands in bucket `i` (inclusive upper bound).
///
/// # Panics
///
/// Panics if `i >= N_BUCKETS`.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < N_BUCKETS, "bucket index out of range");
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let e = 3 + (i - LINEAR_MAX as usize) / SUBS_PER_OCTAVE as usize;
    let sub = ((i - LINEAR_MAX as usize) % SUBS_PER_OCTAVE as usize) as u128;
    if i == N_BUCKETS - 1 {
        return u64::MAX;
    }
    // Exclusive boundary is ceil(2^e * (sub+4)/3); the inclusive bound is
    // one less. u128 keeps 2^62 * 6 exact.
    let excl =
        ((1u128 << e) * (sub + SUBS_PER_OCTAVE as u128 + 1)).div_ceil(SUBS_PER_OCTAVE as u128);
    (excl - 1) as u64
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, batch widths, …). See the [module docs](self) for the
/// bucket scheme. All operations are wait-free; concurrent recorders never
/// block each other.
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. A no-op while recording is disabled
    /// ([`set_enabled`]).
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the current counts into a plain snapshot. Concurrent
    /// recording may tear across buckets (each bucket is individually
    /// consistent); quiescent reads are exact.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; N_BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, subtractable, with
/// percentile readout and a sparse wire form.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; N_BUCKETS],
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest sample ever recorded (not subtracted by [`delta_since`];
    /// a maximum has no meaningful difference).
    ///
    /// [`delta_since`]: HistogramSnapshot::delta_since
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    #[must_use]
    pub const fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; N_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Arithmetic mean of the recorded samples (`0.0` when empty). Exact —
    /// computed from the true sum, not from bucket midpoints.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The value at quantile `q` (`0.0..=1.0`): an upper bound within one
    /// bucket (relative error ≤ 1/3), clamped by the exact maximum so
    /// `percentile(1.0) == max`. Returns `0` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s samples into `self` (bucket-wise; `max` takes the
    /// larger). Merging shard or run snapshots yields the same percentiles
    /// as one histogram that saw every sample.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Returns the samples recorded between `earlier` and `self`
    /// (bucket-wise difference). `max` is carried from `self` — a maximum
    /// cannot be subtracted.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any bucket of `earlier` exceeds the
    /// corresponding bucket of `self` (snapshots out of order).
    #[must_use]
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for (i, (o, (&a, &b))) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(&earlier.counts))
            .enumerate()
        {
            debug_assert!(a >= b, "histogram went backwards in bucket {i}");
            *o = a.saturating_sub(b);
        }
        debug_assert!(self.sum >= earlier.sum, "histogram sum went backwards");
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = self.max;
        out
    }

    /// The nonzero buckets as `(bucket_index, count)` pairs — the wire form
    /// used by the JSON dump (most of the 188 buckets are empty in
    /// practice).
    #[must_use]
    pub fn to_sparse(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a snapshot from its sparse wire form. Returns `None` if any
    /// bucket index is out of range (a malformed or future-format file).
    #[must_use]
    pub fn from_sparse(buckets: &[(usize, u64)], sum: u64, max: u64) -> Option<HistogramSnapshot> {
        let mut out = HistogramSnapshot::empty();
        for &(i, c) in buckets {
            *out.counts.get_mut(i)? += c;
        }
        out.sum = sum;
        out.max = max;
        Some(out)
    }
}

/// Maximum executor-pool worker slots tracked per runtime. Gauges for
/// workers beyond this fold into the last slot (parallelism this wide is
/// far past the level widths the scheduler produces).
pub const MAX_WORKER_SLOTS: usize = 64;

#[derive(Debug)]
pub(crate) struct WorkerGauges {
    pub(crate) busy_ns: AtomicU64,
    pub(crate) idle_ns: AtomicU64,
    pub(crate) jobs: AtomicU64,
}

impl WorkerGauges {
    const fn new() -> WorkerGauges {
        WorkerGauges {
            busy_ns: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
        }
    }
}

/// The live metric registry owned by one [`Runtime`](crate::Runtime):
/// wave/level histograms plus executor-pool worker gauges. All fields are
/// atomics — recording never takes the runtime lock.
#[derive(Debug)]
pub struct RuntimeMetrics {
    pub(crate) wave_latency_ns: Histogram,
    pub(crate) wave_executed: Histogram,
    pub(crate) wave_wasted: Histogram,
    pub(crate) level_width: Histogram,
    pub(crate) level_latency_ns: Histogram,
    pub(crate) workers: [WorkerGauges; MAX_WORKER_SLOTS],
    /// Number of worker slots that have ever run a job (gauge readout stops
    /// here).
    pub(crate) workers_hwm: AtomicU64,
    pub(crate) queue_depth: AtomicU64,
    pub(crate) queue_depth_hwm: AtomicU64,
}

// Without the `metrics` feature the recording sites are compiled out and
// these helpers go unused; the registry itself stays for API stability.
#[cfg_attr(not(feature = "metrics"), allow(dead_code))]
impl RuntimeMetrics {
    pub(crate) const fn new() -> RuntimeMetrics {
        RuntimeMetrics {
            wave_latency_ns: Histogram::new(),
            wave_executed: Histogram::new(),
            wave_wasted: Histogram::new(),
            level_width: Histogram::new(),
            level_latency_ns: Histogram::new(),
            workers: [const { WorkerGauges::new() }; MAX_WORKER_SLOTS],
            workers_hwm: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
        }
    }

    /// One finished propagation wave: end-to-end latency plus how much of
    /// the work was productive.
    pub(crate) fn record_wave(&self, latency_ns: u64, executed: u64, wasted: u64) {
        self.wave_latency_ns.record(latency_ns);
        self.wave_executed.record(executed);
        self.wave_wasted.record(wasted);
    }

    /// Folds a worker slot index into the tracked range.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))] // exec-pool sites
    pub(crate) fn slot(idx: usize) -> usize {
        idx.min(MAX_WORKER_SLOTS - 1)
    }

    /// Records one job executed by worker `slot`, with the time it spent
    /// running it and the time it waited for it.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))] // exec-pool sites
    pub(crate) fn record_worker_job(&self, slot: usize, busy_ns: u64, idle_ns: u64) {
        let w = &self.workers[Self::slot(slot)];
        w.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        w.idle_ns.fetch_add(idle_ns, Ordering::Relaxed);
        w.jobs.fetch_add(1, Ordering::Relaxed);
        self.workers_hwm
            .fetch_max(Self::slot(slot) as u64 + 1, Ordering::Relaxed);
    }

    /// A job entered the executor-pool queue.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))] // exec-pool sites
    pub(crate) fn queue_push(&self) {
        let now = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_hwm.fetch_max(now, Ordering::Relaxed);
    }

    /// A job left the executor-pool queue.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))] // exec-pool sites
    pub(crate) fn queue_pop(&self) {
        // Saturating: a disable/enable flip mid-level may unbalance the
        // push/pop pair; never underflow the gauge.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Snapshot of the per-worker gauges, one entry per slot that has run
    /// at least one job.
    pub(crate) fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        let hwm = self.workers_hwm.load(Ordering::Relaxed) as usize;
        self.workers[..hwm.min(MAX_WORKER_SLOTS)]
            .iter()
            .enumerate()
            .map(|(slot, w)| WorkerSnapshot {
                slot,
                busy_ns: w.busy_ns.load(Ordering::Relaxed),
                idle_ns: w.idle_ns.load(Ordering::Relaxed),
                jobs: w.jobs.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl Default for RuntimeMetrics {
    fn default() -> Self {
        RuntimeMetrics::new()
    }
}

/// Gauges for one executor-pool worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSnapshot {
    /// Worker slot index within the pool.
    pub slot: usize,
    /// Nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for jobs (between finishing one and
    /// receiving the next).
    pub idle_ns: u64,
    /// Jobs executed.
    pub jobs: u64,
}

impl WorkerSnapshot {
    /// Fraction of observed time this worker spent running jobs
    /// (`0.0..=1.0`; `0.0` before the first job).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// An [`std::time::Instant`] stamp, taken only when recording is compiled
/// in (`metrics` feature) *and* enabled at runtime — the shared gate every
/// latency site uses so disabled runs skip the clock read.
pub(crate) fn stamp() -> Option<std::time::Instant> {
    #[cfg(feature = "metrics")]
    {
        enabled().then(std::time::Instant::now)
    }
    #[cfg(not(feature = "metrics"))]
    {
        None
    }
}

/// Per-shard gauges of one [`SessionPool`](crate::pool::SessionPool).
#[derive(Debug, Default)]
pub(crate) struct ShardGauges {
    pub(crate) tenants: AtomicU64,
    pub(crate) jobs: AtomicU64,
}

/// The live serving-layer registry owned by one
/// [`SessionPool`](crate::pool::SessionPool); shard workers record into it
/// lock-free, exactly like [`RuntimeMetrics`].
#[derive(Debug)]
pub(crate) struct PoolMetricsRegistry {
    pub(crate) submit_sojourn_ns: Histogram,
    pub(crate) flush_latency_ns: Histogram,
    pub(crate) shards: Vec<ShardGauges>,
}

impl PoolMetricsRegistry {
    pub(crate) fn new(n_shards: usize) -> PoolMetricsRegistry {
        PoolMetricsRegistry {
            submit_sojourn_ns: Histogram::new(),
            flush_latency_ns: Histogram::new(),
            shards: (0..n_shards).map(|_| ShardGauges::default()).collect(),
        }
    }

    pub(crate) fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            submit_sojourn_ns: self.submit_sojourn_ns.snapshot(),
            flush_latency_ns: self.flush_latency_ns.snapshot(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(shard, g)| ShardSnapshot {
                    shard,
                    tenants: g.tenants.load(Ordering::Relaxed),
                    jobs: g.jobs.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Gauges for one [`SessionPool`](crate::pool::SessionPool) shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Sessions currently installed on this shard.
    pub tenants: u64,
    /// Work closures executed by this shard (submits and queries).
    pub jobs: u64,
}

/// Serving-layer metrics for one [`SessionPool`](crate::pool::SessionPool):
/// submit→service sojourn and flush latency, plus per-shard gauges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    /// Time from `submit`/`query` enqueue to the closure starting, in ns.
    pub submit_sojourn_ns: HistogramSnapshot,
    /// End-to-end `flush` barrier latency, in ns.
    pub flush_latency_ns: HistogramSnapshot,
    /// One entry per shard.
    pub shards: Vec<ShardSnapshot>,
}

impl PoolSnapshot {
    /// Sessions installed across all shards.
    #[must_use]
    pub fn tenants(&self) -> u64 {
        self.shards.iter().map(|s| s.tenants).sum()
    }
}

/// A complete point-in-time metrics snapshot: the [`Stats`](crate::Stats)
/// counters plus every histogram and gauge. Produced by
/// [`Runtime::metrics_snapshot`](crate::Runtime::metrics_snapshot); render
/// with [`render_prometheus`](MetricsSnapshot::render_prometheus) or
/// [`to_json`](MetricsSnapshot::to_json).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Every [`Stats`](crate::Stats) counter as `(name, value)`, in
    /// declaration order (the `for_each_counter!` single source).
    pub counters: Vec<(&'static str, u64)>,
    /// End-to-end propagation-wave latency, nanoseconds.
    pub wave_latency_ns: HistogramSnapshot,
    /// Executor runs per wave.
    pub wave_executed: HistogramSnapshot,
    /// Cutoff-stopped (value-unchanged) executor runs per wave.
    pub wave_wasted: HistogramSnapshot,
    /// Dirty-batch width per height level (feature `parallel`).
    pub level_width: HistogramSnapshot,
    /// Per-level drain latency, nanoseconds (feature `parallel`, pooled
    /// levels only).
    pub level_latency_ns: HistogramSnapshot,
    /// Executor-pool worker gauges, one per slot that has run a job.
    pub workers: Vec<WorkerSnapshot>,
    /// Executor-pool jobs currently queued.
    pub queue_depth: u64,
    /// High-water mark of [`queue_depth`](MetricsSnapshot::queue_depth).
    pub queue_depth_hwm: u64,
    /// Serving-layer metrics, when the snapshot came from a
    /// [`SessionPool`](crate::pool::SessionPool).
    pub pool: Option<PoolSnapshot>,
    /// Subsystem-tagged allocator gauges: per-[`Tag`](alphonse_mem::Tag)
    /// live/HWM bytes and allocation counts, captured from the
    /// process-global counting allocator. Empty unless the binary installs
    /// [`mem::TrackingAlloc`](alphonse_mem::TrackingAlloc) as its
    /// `#[global_allocator]` (and the `metrics` feature is on). Note these
    /// gauges are **process-wide**, not per-runtime: in a multi-runtime
    /// process every snapshot sees the same totals.
    pub mem: memacct::MemSnapshot,
}

/// Appends one escaped JSON string.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_hist(out: &mut String, h: &HistogramSnapshot) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
        h.count(),
        h.sum,
        h.max
    );
    for (k, (i, c)) in h.to_sparse().into_iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{i},{c}]");
    }
    out.push_str("]}");
}

fn prom_hist(out: &mut String, name: &str, h: &HistogramSnapshot) {
    use std::fmt::Write;
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, c) in h.to_sparse() {
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cum}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count());
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters and histograms add, gauges take
    /// the maximum, worker/shard entries merge by slot. Used to aggregate
    /// snapshots across independent runtimes or bench repetitions.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name, *v)),
            }
        }
        self.wave_latency_ns.merge(&other.wave_latency_ns);
        self.wave_executed.merge(&other.wave_executed);
        self.wave_wasted.merge(&other.wave_wasted);
        self.level_width.merge(&other.level_width);
        self.level_latency_ns.merge(&other.level_latency_ns);
        for w in &other.workers {
            match self.workers.iter_mut().find(|m| m.slot == w.slot) {
                Some(mine) => {
                    mine.busy_ns += w.busy_ns;
                    mine.idle_ns += w.idle_ns;
                    mine.jobs += w.jobs;
                }
                None => self.workers.push(*w),
            }
        }
        self.workers.sort_by_key(|w| w.slot);
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        if let Some(op) = &other.pool {
            let mine = self.pool.get_or_insert_with(PoolSnapshot::default);
            mine.submit_sojourn_ns.merge(&op.submit_sojourn_ns);
            mine.flush_latency_ns.merge(&op.flush_latency_ns);
            for s in &op.shards {
                match mine.shards.iter_mut().find(|m| m.shard == s.shard) {
                    Some(m) => {
                        m.tenants += s.tenants;
                        m.jobs += s.jobs;
                    }
                    None => mine.shards.push(*s),
                }
            }
            mine.shards.sort_by_key(|s| s.shard);
        }
        // Mem gauges are process-global: two snapshots of the same process
        // must take the pointwise max, never sum (that would double-count).
        self.mem.merge_max(&other.mem);
    }

    /// Everything recorded between `earlier` and `self`. Counters and
    /// histograms subtract; point-in-time gauges (queue depth, tenants,
    /// worker totals) are carried from `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    #[must_use]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|&(name, v)| {
                let before = earlier
                    .counters
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map_or(0, |&(_, b)| b);
                debug_assert!(v >= before, "counter `{name}` went backwards");
                (name, v.saturating_sub(before))
            })
            .collect();
        MetricsSnapshot {
            counters,
            wave_latency_ns: self.wave_latency_ns.delta_since(&earlier.wave_latency_ns),
            wave_executed: self.wave_executed.delta_since(&earlier.wave_executed),
            wave_wasted: self.wave_wasted.delta_since(&earlier.wave_wasted),
            level_width: self.level_width.delta_since(&earlier.level_width),
            level_latency_ns: self.level_latency_ns.delta_since(&earlier.level_latency_ns),
            workers: self.workers.clone(),
            queue_depth: self.queue_depth,
            queue_depth_hwm: self.queue_depth_hwm,
            pool: self.pool.clone(),
            // Point-in-time gauges: carried, not subtracted.
            mem: self.mem.clone(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `alphonse_<counter>` counters, `alphonse_worker_*{slot=…}` /
    /// `alphonse_shard_*{shard=…}` gauges and cumulative `_bucket{le=…}`
    /// histograms.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let _mem = memacct::scope(memacct::Tag::Metrics);
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE alphonse_{name} counter");
            let _ = writeln!(out, "alphonse_{name} {v}");
        }
        prom_hist(&mut out, "alphonse_wave_latency_ns", &self.wave_latency_ns);
        prom_hist(&mut out, "alphonse_wave_executed", &self.wave_executed);
        prom_hist(&mut out, "alphonse_wave_wasted", &self.wave_wasted);
        prom_hist(&mut out, "alphonse_level_width", &self.level_width);
        prom_hist(
            &mut out,
            "alphonse_level_latency_ns",
            &self.level_latency_ns,
        );
        let _ = writeln!(out, "# TYPE alphonse_exec_queue_depth gauge");
        let _ = writeln!(out, "alphonse_exec_queue_depth {}", self.queue_depth);
        let _ = writeln!(out, "# TYPE alphonse_exec_queue_depth_hwm gauge");
        let _ = writeln!(
            out,
            "alphonse_exec_queue_depth_hwm {}",
            self.queue_depth_hwm
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "alphonse_worker_busy_ns{{slot=\"{}\"}} {}",
                w.slot, w.busy_ns
            );
            let _ = writeln!(
                out,
                "alphonse_worker_idle_ns{{slot=\"{}\"}} {}",
                w.slot, w.idle_ns
            );
            let _ = writeln!(
                out,
                "alphonse_worker_jobs{{slot=\"{}\"}} {}",
                w.slot, w.jobs
            );
        }
        // Suppressed entirely when no tracking allocator fed the counters
        // (every tag zero), so allocator-less binaries keep their old output.
        if !self.mem.is_empty() {
            for (metric, kind) in [
                ("alphonse_mem_live_bytes", "gauge"),
                ("alphonse_mem_live_allocs", "gauge"),
                ("alphonse_mem_hwm_bytes", "gauge"),
                ("alphonse_mem_total_allocs", "counter"),
            ] {
                let _ = writeln!(out, "# TYPE {metric} {kind}");
                for t in &self.mem.tags {
                    let v = match metric {
                        "alphonse_mem_live_bytes" => t.live_bytes,
                        "alphonse_mem_live_allocs" => t.live_allocs,
                        "alphonse_mem_hwm_bytes" => t.hwm_bytes,
                        _ => t.total_allocs,
                    };
                    let _ = writeln!(out, "{metric}{{tag=\"{}\"}} {v}", t.tag);
                }
            }
        }
        if let Some(pool) = &self.pool {
            prom_hist(
                &mut out,
                "alphonse_pool_submit_sojourn_ns",
                &pool.submit_sojourn_ns,
            );
            prom_hist(
                &mut out,
                "alphonse_pool_flush_latency_ns",
                &pool.flush_latency_ns,
            );
            for s in &pool.shards {
                let _ = writeln!(
                    out,
                    "alphonse_shard_tenants{{shard=\"{}\"}} {}",
                    s.shard, s.tenants
                );
                let _ = writeln!(
                    out,
                    "alphonse_shard_jobs{{shard=\"{}\"}} {}",
                    s.shard, s.jobs
                );
            }
        }
        out
    }

    /// Renders the snapshot as one JSON document (the format
    /// `alphonse-trace metrics` reads): counters as an object, histograms
    /// in sparse `[[bucket, count], …]` form.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let _mem = memacct::scope(memacct::Tag::Metrics);
        let mut out = String::from("{\"schema\":\"alphonse-metrics-v1\",\"counters\":{");
        for (k, (name, v)) in self.counters.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            json_str(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        let hists: [(&str, &HistogramSnapshot); 5] = [
            ("wave_latency_ns", &self.wave_latency_ns),
            ("wave_executed", &self.wave_executed),
            ("wave_wasted", &self.wave_wasted),
            ("level_width", &self.level_width),
            ("level_latency_ns", &self.level_latency_ns),
        ];
        for (k, (name, h)) in hists.into_iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            json_str(&mut out, name);
            out.push(':');
            json_hist(&mut out, h);
        }
        let _ = write!(
            out,
            "}},\"gauges\":{{\"queue_depth\":{},\"queue_depth_hwm\":{}}},\"workers\":[",
            self.queue_depth, self.queue_depth_hwm
        );
        for (k, w) in self.workers.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"slot\":{},\"busy_ns\":{},\"idle_ns\":{},\"jobs\":{}}}",
                w.slot, w.busy_ns, w.idle_ns, w.jobs
            );
        }
        out.push(']');
        if !self.mem.is_empty() {
            out.push_str(",\"mem\":{");
            for (k, t) in self.mem.tags.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                json_str(&mut out, t.tag);
                let _ = write!(
                    out,
                    ":{{\"live_bytes\":{},\"live_allocs\":{},\"hwm_bytes\":{},\"total_allocs\":{}}}",
                    t.live_bytes, t.live_allocs, t.hwm_bytes, t.total_allocs
                );
            }
            out.push('}');
        }
        if let Some(pool) = &self.pool {
            out.push_str(",\"pool\":{\"submit_sojourn_ns\":");
            json_hist(&mut out, &pool.submit_sojourn_ns);
            out.push_str(",\"flush_latency_ns\":");
            json_hist(&mut out, &pool.flush_latency_ns);
            out.push_str(",\"shards\":[");
            for (k, s) in pool.shards.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"shard\":{},\"tenants\":{},\"jobs\":{}}}",
                    s.shard, s.tenants, s.jobs
                );
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that record samples against the one that flips the
    /// global [`set_enabled`] switch (unit tests share one process).
    static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn linear_buckets_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 40 {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "index out of range for {v}");
            assert!(i >= last, "bucket index not monotone at {v}");
            last = i;
            v = v * 2 + 1;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn every_value_is_at_most_its_buckets_upper_bound() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|e| {
                let b = 1u64 << e.min(63);
                [b.saturating_sub(1), b, b.saturating_add(1), b / 3 * 2]
            })
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(
                v <= bucket_upper_bound(i),
                "{v} exceeds upper bound {} of its bucket {i}",
                bucket_upper_bound(i)
            );
            if i > 0 {
                assert!(
                    v > bucket_upper_bound(i - 1),
                    "{v} not above previous bucket's bound"
                );
            }
        }
    }

    #[test]
    fn upper_bounds_have_bounded_relative_error() {
        // The bound is < 4/3 of the bucket's smallest member, so a reported
        // percentile overstates the true value by at most ~33%.
        for i in 8..N_BUCKETS - 1 {
            let hi = bucket_upper_bound(i) as f64;
            let lo = bucket_upper_bound(i - 1) as f64 + 1.0;
            assert!(hi / lo < 4.0 / 3.0 + 1e-9, "bucket {i}: {lo}..={hi}");
        }
    }

    #[test]
    fn record_and_percentiles() {
        let _g = serial();
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        let p50 = s.percentile(0.50);
        assert!((450..=667).contains(&p50), "p50 = {p50}");
        assert_eq!(s.percentile(1.0), 1000, "p100 is the exact max");
        assert!(s.percentile(0.99) >= p50);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let _g = serial();
        let h = Histogram::new();
        h.record(12_345);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 12_345);
        }
    }

    #[test]
    fn merge_equals_one_big_histogram() {
        let _g = serial();
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            let x = v * v % 9973;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn sparse_round_trip() {
        let _g = serial();
        let h = Histogram::new();
        for v in [0, 1, 7, 8, 100, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_sparse(&s.to_sparse(), s.sum, s.max).unwrap();
        assert_eq!(back, s);
        assert!(HistogramSnapshot::from_sparse(&[(N_BUCKETS, 1)], 0, 0).is_none());
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = serial();
        let h = Histogram::new();
        set_enabled(false);
        h.record(42);
        set_enabled(true);
        h.record(43);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.max, 43);
    }

    #[test]
    fn snapshot_json_and_prometheus_render() {
        let _g = serial();
        let h = Histogram::new();
        h.record(10);
        h.record(2000);
        let snap = MetricsSnapshot {
            counters: vec![("executions", 5), ("waves", 2)],
            wave_latency_ns: h.snapshot(),
            workers: vec![WorkerSnapshot {
                slot: 0,
                busy_ns: 100,
                idle_ns: 50,
                jobs: 3,
            }],
            ..MetricsSnapshot::default()
        };
        let prom = snap.render_prometheus();
        assert!(prom.contains("alphonse_executions 5"));
        assert!(prom.contains("alphonse_wave_latency_ns_count 2"));
        assert!(prom.contains("alphonse_wave_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("alphonse_worker_busy_ns{slot=\"0\"} 100"));
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"alphonse-metrics-v1\""));
        assert!(json.contains("\"executions\":5"));
        assert!(json.contains("\"wave_latency_ns\":{\"count\":2"));
    }

    #[test]
    fn snapshot_merge_and_delta() {
        let _g = serial();
        let mk = |n: u64| {
            let h = Histogram::new();
            for v in 0..n {
                h.record(v * 100);
            }
            MetricsSnapshot {
                counters: vec![("executions", n)],
                wave_latency_ns: h.snapshot(),
                ..MetricsSnapshot::default()
            }
        };
        let mut merged = mk(3);
        merged.merge(&mk(5));
        assert_eq!(merged.counters, vec![("executions", 8)]);
        assert_eq!(merged.wave_latency_ns.count(), 8);
        let d = mk(5).delta_since(&mk(3));
        assert_eq!(d.counters, vec![("executions", 2)]);
        assert_eq!(d.wave_latency_ns.count(), 2);
    }

    #[test]
    fn worker_utilization() {
        let w = WorkerSnapshot {
            slot: 0,
            busy_ns: 75,
            idle_ns: 25,
            jobs: 1,
        };
        assert!((w.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(WorkerSnapshot::default().utilization(), 0.0);
    }
}
