//! Batched write transactions.
//!
//! Every [`Var::set`](crate::Var::set) takes its own `RefCell` borrow of the
//! runtime, performs its own cutoff comparison, and seeds its own dirty
//! insertion. Bulk mutators — a spreadsheet paste, a tree rebalance, an
//! interpreter heap update — pay those constants once per write.
//! [`Runtime::batch`] amortizes them: writes submitted through the [`Batch`]
//! handle are buffered, repeated writes to the same location coalesce
//! (last write wins), and commit takes the inner borrow **once**, performs a
//! single equality check per distinct location against its pre-batch value,
//! and enqueues one deduplicated dirty frontier.
//!
//! A batch is observationally equivalent to issuing the same writes with
//! [`Var::set`](crate::Var::set) one by one — same final values, same
//! quiescent state — except that it can only do *less* propagation work:
//! a location written several times is compared (and possibly dirtied) once,
//! and a location transiently changed but restored to its pre-batch value
//! never dirties at all, which the per-write path cannot know.

use crate::runtime::{PendingWrites, Runtime};
use crate::value::Value;
use alphonse_graph::NodeId;
use alphonse_mem as mem;

/// A write transaction created by [`Runtime::batch`].
///
/// Writes go through [`Var::set_in`](crate::Var::set_in) /
/// [`Var::update_in`](crate::Var::update_in) (or [`Batch::write`] at the
/// untyped layer) and are buffered until the closure returns; the runtime
/// itself stays fully readable inside the closure, but reads through the
/// plain APIs observe *pre-batch* state. Use
/// [`Var::get_in`](crate::Var::get_in) for read-your-writes visibility of
/// pending values.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// let rt = Runtime::new();
/// let a = rt.var(1i64);
/// let b = rt.var(2i64);
/// rt.batch(|tx| {
///     a.set_in(tx, 10);
///     b.set_in(tx, 20);
///     a.set_in(tx, 30); // coalesces with the first write: last write wins
/// });
/// assert_eq!(a.get(&rt), 30);
/// assert_eq!(rt.stats().coalesced_writes, 1);
/// ```
pub struct Batch<'rt> {
    rt: &'rt Runtime,
    /// One entry per distinct written location, in first-write order.
    pending: PendingWrites,
    /// Indexed by `NodeId`: `slot + 1` into `pending` for locations with a
    /// buffered write, `0` otherwise — last-write-wins coalescing with a
    /// plain array index instead of a hash lookup. Only entries for written
    /// locations are reset at commit, so the cost stays O(distinct writes).
    slot_of: Vec<usize>,
    /// Writes submitted (before coalescing).
    submitted: u64,
}

impl<'rt> Batch<'rt> {
    /// The runtime this transaction writes to.
    pub fn runtime(&self) -> &'rt Runtime {
        self.rt
    }

    /// Number of distinct locations with a pending write.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Buffers a write of `value` to location `n` — the untyped form of
    /// [`Var::set_in`](crate::Var::set_in). A later write to the same
    /// location within this batch replaces the buffered value.
    pub fn write(&mut self, n: NodeId, value: Box<dyn Value>) {
        self.submitted += 1;
        match self.slot(n) {
            None => {
                self.pending.push((n, value));
                self.slot_of[n.index()] = self.pending.len(); // slot + 1
            }
            Some(s) => self.pending[s].1 = value,
        }
    }

    /// Buffers a write of `value` to location `n` without boxing when it
    /// coalesces: if the location already has a buffered value of the same
    /// concrete type, the new value is stored into the existing allocation.
    /// [`Var::set_in`](crate::Var::set_in) routes through this, so a bulk
    /// mutator that hammers a small set of locations allocates once per
    /// *location*, not once per write.
    pub(crate) fn write_typed<T: Value>(&mut self, n: NodeId, value: T) {
        self.submitted += 1;
        let _mem = mem::scope(mem::Tag::ValueSlab);
        match self.slot(n) {
            None => {
                self.pending.push((n, Box::new(value)));
                self.slot_of[n.index()] = self.pending.len(); // slot + 1
            }
            Some(s) => match self.pending[s].1.as_any_mut().downcast_mut::<T>() {
                Some(old) => *old = value,
                None => self.pending[s].1 = Box::new(value),
            },
        }
    }

    /// Index into `pending` for `n`'s buffered write, growing `slot_of` so
    /// a subsequent insert can record itself without a second bounds check.
    fn slot(&mut self, n: NodeId) -> Option<usize> {
        let i = n.index();
        if i >= self.slot_of.len() {
            self.slot_of.resize(i + 1, 0);
        }
        match self.slot_of[i] {
            0 => None,
            s => Some(s - 1),
        }
    }

    /// The pending (not yet committed) value buffered for `n`, if any.
    pub(crate) fn pending_value(&self, n: NodeId) -> Option<&dyn Value> {
        match self.slot_of.get(n.index()).copied().unwrap_or(0) {
            0 => None,
            s => Some(&*self.pending[s - 1].1),
        }
    }
}

impl Runtime {
    /// Runs `f` with a write-transaction handle and commits the buffered
    /// writes when it returns — the batched form of the paper's `modify`
    /// (Algorithm 4).
    ///
    /// Commit applies each distinct written location in first-write order
    /// under a single runtime borrow: record the writer's dependence,
    /// compare the final buffered value against the pre-batch stored value
    /// (one cutoff comparison per location, however many times it was
    /// written), and dirty the location's readers only when the value
    /// actually changed. Reader-less locations skip dirtying exactly as
    /// [`Runtime::raw_write`] does.
    ///
    /// Batches do not nest usefully: an inner `batch` commits when *it*
    /// returns, so an outer batch's buffered write to the same location
    /// lands later and wins. Writes issued inside the closure through the
    /// non-transactional APIs ([`Var::set`](crate::Var::set)) bypass the
    /// buffer and commit immediately.
    pub fn batch<R>(&self, f: impl FnOnce(&mut Batch<'_>) -> R) -> R {
        // Bookkeeping buffers are runtime-owned and reused across batches,
        // so a steady-state batch allocates nothing of its own.
        let (pending, slot_of) = self.take_batch_buffers();
        let mut tx = Batch {
            rt: self,
            pending,
            slot_of,
            submitted: 0,
        };
        let result = f(&mut tx);
        let Batch {
            pending,
            slot_of,
            submitted,
            ..
        } = tx;
        let coalesced = submitted - pending.len() as u64;
        self.commit_batch(pending, slot_of, submitted, coalesced);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_writes_commit_on_return() {
        let rt = Runtime::new();
        let a = rt.var(1i64);
        let inside = rt.batch(|tx| {
            a.set_in(tx, 5);
            a.get(&rt) // plain reads observe pre-batch state
        });
        assert_eq!(inside, 1, "plain reads see pre-batch state");
        assert_eq!(a.get(&rt), 5);
    }

    #[test]
    fn coalescing_keeps_last_write() {
        let rt = Runtime::new();
        let a = rt.var(0i64);
        rt.batch(|tx| {
            for i in 1..=4 {
                a.set_in(tx, i);
            }
            assert_eq!(tx.pending_len(), 1);
        });
        assert_eq!(a.get(&rt), 4);
        let s = rt.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_writes, 4);
        assert_eq!(s.coalesced_writes, 3);
        assert_eq!(s.writes, 1, "one committed write per distinct location");
    }

    #[test]
    fn empty_batch_is_a_counted_noop() {
        let rt = Runtime::new();
        let out = rt.batch(|_| 7);
        assert_eq!(out, 7);
        let s = rt.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.writes, 0);
        assert_eq!(s.dirtied, 0);
    }

    #[test]
    fn get_in_reads_through_pending_writes() {
        let rt = Runtime::new();
        let a = rt.var(1i64);
        rt.batch(|tx| {
            assert_eq!(a.get_in(tx), 1, "falls back to stored value");
            a.set_in(tx, 2);
            assert_eq!(a.get_in(tx), 2, "sees the buffered value");
            a.update_in(tx, |v| v * 10);
            assert_eq!(a.get_in(tx), 20);
        });
        assert_eq!(a.get(&rt), 20);
    }
}
