//! **Alphonse** — incremental computation as a programming abstraction.
//!
//! This crate is the runtime half of a reproduction of Roger Hoover's PLDI
//! 1992 paper *Alphonse: Incremental Computation as a Programming
//! Abstraction*. Programs establish *properties* over mutable data with
//! plain exhaustive code; the runtime records which storage each incremental
//! procedure instance read (**dynamic dependence analysis**, paper
//! Section 4), caches results per argument vector (**function caching**,
//! extended to procedures that read global state), and after mutations
//! re-executes only what changed (**quiescence propagation**).
//!
//! The paper expresses this as a source-to-source transformation over an
//! imperative language (see the companion `alphonse-lang` crate). This crate
//! provides the same machinery as a library:
//!
//! | Paper concept | Library form |
//! |---|---|
//! | top-level storage location | [`Var<T>`] |
//! | `access(v)` (Algorithm 3) | [`Var::get`] / [`Var::with`] / [`Runtime::with_value`] / [`Runtime::raw_read`] |
//! | `modify(l, v)` (Algorithm 4) | [`Var::set`] / [`Runtime::raw_write`] |
//! | batched `modify` sequence | [`Runtime::batch`] + [`Var::set_in`] / [`Batch::write`] |
//! | `(*CACHED*)` / `(*MAINTAINED*)` procedure | [`Memo<A, R>`] |
//! | `call(p, a…)` (Algorithm 5) | [`Memo::call`] |
//! | `DEMAND` / `EAGER` evaluation | [`Strategy`] |
//! | evaluation routine (Section 4.5) | [`Runtime::propagate`] + automatic pre-call evaluation |
//! | graph partitioning (Section 6.3) | [`RuntimeBuilder::partitioning`] |
//! | `(*UNCHECKED*)` (Section 6.4) | [`Runtime::untracked`] / [`Var::get_untracked`] |
//! | dependency information for debugging (Section 1) | [`Runtime::explain`] / [`trace`] sinks ([`Runtime::set_sink`]) |
//!
//! # Quickstart
//!
//! ```
//! use alphonse::Runtime;
//!
//! let rt = Runtime::new();
//! let price = rt.var(12i64);
//! let qty = rt.var(3i64);
//! let total = rt.memo("total", move |rt, &(): &()| price.get(rt) * qty.get(rt));
//!
//! assert_eq!(total.call(&rt, ()), 36);   // first call: executes
//! assert_eq!(total.call(&rt, ()), 36);   // cached
//! qty.set(&rt, 4);
//! assert_eq!(total.call(&rt, ()), 48);   // only now recomputed
//! ```
//!
//! # Restrictions (paper Section 3.5)
//!
//! Incremental procedure bodies must be **deterministic** (DET): given the
//! same arguments and the same tracked reads they must produce the same
//! result and effects. They may read and write tracked state freely —
//! writes record dependence edges and may re-trigger the writer, converging
//! by determinism, exactly as the paper's AVL `balance` method does. Eager
//! procedures must additionally keep their side effects unobservable (OBS).
//! Violations are detected where possible (dependency cycles panic with a
//! diagnostic) but cannot be checked in general, mirroring the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod dirty;
#[cfg(feature = "parallel")]
mod exec_pool;
pub mod fxhash;
mod memo;
pub mod metrics;
pub mod pool;
mod runtime;
mod stats;
pub mod trace;
mod value;
mod var;

pub use batch::Batch;
pub use dirty::Scheduling;
pub use memo::{Memo, MemoArgs, MemoResult};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot};
pub use pool::SessionPool;
pub use runtime::{NodeKind, Runtime, RuntimeBuilder, Strategy};
pub use stats::Stats;
pub use value::Value;
pub use var::Var;

pub use alphonse_graph::NodeId;

/// Subsystem-tagged memory accounting (re-export of `alphonse-mem`).
///
/// With the `metrics` feature (default) this is the real counting-allocator
/// layer: install [`mem::TrackingAlloc`](alphonse_mem::TrackingAlloc) as the
/// binary's `#[global_allocator]` and every runtime allocation is billed to
/// a subsystem [`mem::Tag`](alphonse_mem::Tag); per-tag live/HWM bytes then
/// appear in [`MetricsSnapshot::mem`]. Without it, the guards are zero-sized
/// no-ops and no allocator code is compiled.
pub use alphonse_mem as mem;
