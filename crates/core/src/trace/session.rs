//! Shared trace activation: one spec grammar for every entry point.
//!
//! The bench bins (`--trace <mode>`, `--trace-out <path>`) and the lang
//! interpreter (`ALPHONSE_TRACE=<spec>`) used to grow divergent activation
//! code; both now funnel through [`TraceConfig`]. The spec grammar:
//!
//! | spec | consumer |
//! |---|---|
//! | `1` | stderr event dump via a bounded [`Recorder`] |
//! | `chrome[:path]` | Chrome trace JSON (default `TRACE_<stem>.json`) |
//! | `dot[:path]` | dependency-graph DOT (default `TRACE_<stem>.dot`) |
//! | `hot[:K]` | top-K hot-node table from the [`Profiler`] |
//! | `jsonl[:path]`, or any path-like value | JSONL event stream ([`JsonlSink`]) |
//!
//! [`TraceConfig::start`] yields an [`ActiveTrace`]: the requested consumer
//! teed with a live [`Provenance`] index, so causal `why(node)` queries are
//! always available while tracing — the lang interpreter quotes them in
//! runtime error messages.

use super::provenance::Provenance;
use super::{render_dot, ChromeTrace, GraphSink, JsonlSink, Profiler, Recorder, Tee, TraceSink};
use crate::Runtime;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Capacity of the stderr recorder (spec `1`). Large enough for small
/// programs to be complete; the dump warns when the ring dropped events.
const STDERR_RING: usize = 8192;

/// Default top-K for the `hot` profiler table.
const DEFAULT_TOP_K: usize = 20;

/// A parsed trace spec: which consumer to attach and where its output goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceConfig {
    /// Record everything and dump human-readable lines to stderr at the end.
    Stderr,
    /// Stream every event as JSON lines to this file.
    Jsonl(PathBuf),
    /// Accumulate a Chrome trace and write it to this file at the end.
    Chrome(PathBuf),
    /// Mirror the dependency graph and write DOT to this file at the end.
    Dot(PathBuf),
    /// Profile per-node and print the top-K table at the end.
    Hot(usize),
}

impl TraceConfig {
    /// Parses a trace spec (see the [module docs](self) for the grammar).
    /// `stem` names default output files, e.g. `TRACE_<stem>.json`.
    pub fn parse(spec: &str, stem: &str) -> Result<TraceConfig, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match head {
            "1" if arg.is_none() => Ok(TraceConfig::Stderr),
            "chrome" => Ok(TraceConfig::Chrome(
                arg.map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from(format!("TRACE_{stem}.json"))),
            )),
            "dot" => Ok(TraceConfig::Dot(
                arg.map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from(format!("TRACE_{stem}.dot"))),
            )),
            "hot" => match arg {
                None => Ok(TraceConfig::Hot(DEFAULT_TOP_K)),
                Some(k) => k
                    .parse::<usize>()
                    .map(TraceConfig::Hot)
                    .map_err(|_| format!("bad hot top-k `{k}` in trace spec `{spec}`")),
            },
            "jsonl" => Ok(TraceConfig::Jsonl(
                arg.map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from(format!("TRACE_{stem}.jsonl"))),
            )),
            // Any path-like value is shorthand for `jsonl:<path>` — the
            // common `ALPHONSE_TRACE=trace.jsonl` case.
            _ if spec.contains('.') || spec.contains('/') => {
                Ok(TraceConfig::Jsonl(PathBuf::from(spec)))
            }
            _ => Err(format!(
                "unrecognized trace spec `{spec}` (expected 1, chrome[:path], \
                 dot[:path], hot[:K], jsonl[:path], or a file path)"
            )),
        }
    }

    /// Reads the `ALPHONSE_TRACE` environment variable. `None` when unset
    /// or empty; `Some(Err(…))` when set but malformed.
    pub fn from_env(stem: &str) -> Option<Result<TraceConfig, String>> {
        match std::env::var("ALPHONSE_TRACE") {
            Ok(v) if !v.is_empty() => Some(TraceConfig::parse(&v, stem)),
            _ => None,
        }
    }

    /// Builds the consumer (creating output files where needed) and tees it
    /// with a live [`Provenance`] index.
    pub fn start(self) -> io::Result<ActiveTrace> {
        let provenance = Arc::new(Provenance::new());
        let (consumer, consumer_sink): (Consumer, Arc<dyn TraceSink>) = match self {
            TraceConfig::Stderr => {
                let rec = Arc::new(Recorder::new(STDERR_RING));
                (Consumer::Stderr(rec.clone()), rec)
            }
            TraceConfig::Jsonl(path) => {
                let sink = Arc::new(JsonlSink::create(&path)?);
                (
                    Consumer::Jsonl {
                        sink: sink.clone(),
                        path,
                    },
                    sink,
                )
            }
            TraceConfig::Chrome(path) => {
                let sink = Arc::new(ChromeTrace::new());
                (
                    Consumer::Chrome {
                        sink: sink.clone(),
                        path,
                    },
                    sink,
                )
            }
            TraceConfig::Dot(path) => {
                let mirror = Arc::new(GraphSink::new());
                (
                    Consumer::Dot {
                        mirror: mirror.clone(),
                        path,
                    },
                    mirror,
                )
            }
            TraceConfig::Hot(top_k) => {
                let prof = Arc::new(Profiler::new());
                (
                    Consumer::Hot {
                        prof: prof.clone(),
                        top_k,
                    },
                    prof,
                )
            }
        };
        let sink = Arc::new(Tee::new(vec![
            provenance.clone() as Arc<dyn TraceSink>,
            consumer_sink,
        ]));
        Ok(ActiveTrace {
            consumer,
            provenance,
            sink,
        })
    }
}

enum Consumer {
    Stderr(Arc<Recorder>),
    Jsonl {
        sink: Arc<JsonlSink>,
        path: PathBuf,
    },
    Chrome {
        sink: Arc<ChromeTrace>,
        path: PathBuf,
    },
    Dot {
        mirror: Arc<GraphSink>,
        path: PathBuf,
    },
    Hot {
        prof: Arc<Profiler>,
        top_k: usize,
    },
}

/// A started trace: hand [`ActiveTrace::sink`] to the runtime (or install
/// it as the thread default), then call [`ActiveTrace::finish`] once the
/// workload is done to flush/write/print the consumer's output.
pub struct ActiveTrace {
    consumer: Consumer,
    provenance: Arc<Provenance>,
    sink: Arc<Tee>,
}

impl ActiveTrace {
    /// The sink to attach (tee of the consumer and the provenance index).
    pub fn sink(&self) -> Arc<dyn TraceSink> {
        self.sink.clone() as Arc<dyn TraceSink>
    }

    /// The live causal index fed by this trace.
    pub fn provenance(&self) -> &Arc<Provenance> {
        &self.provenance
    }

    /// Installs [`ActiveTrace::sink`] as the thread-default sink (picked up
    /// by runtimes built afterwards); returns the previous default.
    pub fn install_default(&self) -> Option<Arc<dyn TraceSink>> {
        super::set_default_sink(Some(self.sink()))
    }

    /// Finalizes the consumer: dump, flush, or write its output.
    ///
    /// Passing the traced runtime lets the DOT consumer prefer the
    /// authoritative live [`Runtime::graph_snapshot`] over its event-driven
    /// mirror. Returns a one-line completion message for consumers that
    /// produced a file (the hot-node table and stderr dump are printed
    /// directly).
    pub fn finish(self, rt: Option<&Runtime>) -> io::Result<Option<String>> {
        match self.consumer {
            Consumer::Stderr(rec) => {
                eprint!("{}", rec.dump());
                Ok(None)
            }
            Consumer::Jsonl { sink, path } => {
                sink.flush()?;
                Ok(Some(format!("trace: wrote {}", path.display())))
            }
            Consumer::Chrome { sink, path } => {
                std::fs::write(&path, sink.to_json())?;
                Ok(Some(format!("trace: wrote {}", path.display())))
            }
            Consumer::Dot { mirror, path } => {
                let snap = match rt {
                    Some(rt) => rt.graph_snapshot(),
                    None => mirror.snapshot(),
                };
                std::fs::write(&path, render_dot(&snap))?;
                Ok(Some(format!("trace: wrote {}", path.display())))
            }
            Consumer::Hot { prof, top_k } => {
                println!("{}", prof.report(top_k));
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_the_grammar() {
        let p = |s: &str| TraceConfig::parse(s, "bin");
        assert_eq!(p("1"), Ok(TraceConfig::Stderr));
        assert_eq!(
            p("chrome"),
            Ok(TraceConfig::Chrome("TRACE_bin.json".into()))
        );
        assert_eq!(p("chrome:x.json"), Ok(TraceConfig::Chrome("x.json".into())));
        assert_eq!(p("dot"), Ok(TraceConfig::Dot("TRACE_bin.dot".into())));
        assert_eq!(p("hot"), Ok(TraceConfig::Hot(20)));
        assert_eq!(p("hot:5"), Ok(TraceConfig::Hot(5)));
        assert_eq!(p("jsonl"), Ok(TraceConfig::Jsonl("TRACE_bin.jsonl".into())));
        assert_eq!(
            p("out/t.jsonl"),
            Ok(TraceConfig::Jsonl("out/t.jsonl".into()))
        );
        assert!(p("hot:x").is_err());
        assert!(p("bogus").is_err());
    }

    #[test]
    fn stderr_session_feeds_provenance() {
        let active = TraceConfig::Stderr.start().unwrap();
        let rt = Runtime::new();
        rt.set_sink(Some(active.sink()));
        let v = rt.var_named("v", 1i64);
        let double = rt.memo("double", move |rt, &(): &()| v.get(rt) * 2);
        double.call(&rt, ());
        v.set(&rt, 2);
        rt.propagate();
        rt.set_sink(None);
        let prov = active.provenance().clone();
        let n = double.instance_node(&()).unwrap();
        let chain = prov.why(n).expect("double was dirtied by the write");
        assert_eq!(chain.write, Some((v.node(), true)));
        // finish() dumps to stderr and returns no message.
        assert_eq!(active.finish(Some(&rt)).unwrap(), None);
    }
}
