//! A live causal index over the trace stream: *why did this node recompute?*
//!
//! [`Provenance`] is a [`TraceSink`] that keeps, per node, the most recent
//! dirtying (with its [`DirtyReason`], causal predecessor, and propagation
//! wave), the most recent write, and the most recent execution. From those
//! it reconstructs the causal chain the paper's Section 4.5 marking rule
//! produced: the input write, the fan-out path the dirt travelled, and the
//! re-execution (or its absence — a cutoff) at the queried node.
//!
//! The index is O(nodes) in memory and O(1) per event, so it can stay
//! attached for a whole program run — the lang interpreter tees it next to
//! whatever sink the user asked for and quotes [`Provenance::why_report`] in
//! runtime error messages. The `alphonse-trace` CLI replays a JSONL file
//! into the same index for offline `why` queries.

use super::{lock, DirtyReason, Labels, TraceEvent, TraceSink};
use alphonse_graph::NodeId;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

#[derive(Clone, Copy)]
struct DirtyRecord {
    seq: u64,
    wave: Option<u64>,
    reason: DirtyReason,
    cause: Option<NodeId>,
}

#[derive(Clone, Copy)]
struct WriteRecord {
    changed: bool,
}

#[derive(Clone, Copy)]
struct ExecRecord {
    seq: u64,
    changed: bool,
}

#[derive(Default, Clone, Copy)]
struct NodeProv {
    dirtied: Option<DirtyRecord>,
    write: Option<WriteRecord>,
    exec: Option<ExecRecord>,
}

/// One hop of a [`WhyChain`]: a node being dirtied, and by whom.
#[derive(Debug, Clone, PartialEq)]
pub struct WhyStep {
    /// The dirtied node.
    pub node: NodeId,
    /// Its label, when known.
    pub label: Option<String>,
    /// Why it entered the inconsistent set.
    pub reason: DirtyReason,
    /// The predecessor that fanned dirt here (`None` at the origin).
    pub cause: Option<NodeId>,
}

/// The causal answer to `why(node)`: origin-first dirtying chain, the
/// originating write (when the chain roots in one), and the node's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WhyChain {
    /// The queried node.
    pub node: NodeId,
    /// The propagation wave the node was dirtied in (`None` when it was
    /// dirtied outside any wave — e.g. the seed write itself).
    pub wave: Option<u64>,
    /// The write that originated the chain: `(location, changed)`.
    pub write: Option<(NodeId, bool)>,
    /// Dirtying hops, origin first, ending at [`WhyChain::node`].
    pub steps: Vec<WhyStep>,
    /// `Some(changed)` when the node re-executed after this dirtying;
    /// `None` when it has not (yet) re-executed — for a computation that
    /// usually means a cutoff upstream spared it.
    pub exec: Option<bool>,
}

/// Live causal index; see the [module docs](self).
#[derive(Default)]
pub struct Provenance {
    labels: Labels,
    per_node: Mutex<Vec<NodeProv>>,
    seq: AtomicU64,
    wave: Mutex<Option<u64>>,
}

impl Provenance {
    /// Creates an empty index.
    pub fn new() -> Provenance {
        Provenance::default()
    }

    fn slot(&self, n: NodeId) -> MutexGuard<'_, Vec<NodeProv>> {
        let mut per = lock(&self.per_node);
        if per.len() <= n.index() {
            per.resize(n.index() + 1, NodeProv::default());
        }
        per
    }

    fn get(&self, n: NodeId) -> NodeProv {
        lock(&self.per_node)
            .get(n.index())
            .copied()
            .unwrap_or_default()
    }

    /// The label of `n`, when the stream carried one.
    pub fn label(&self, n: NodeId) -> Option<String> {
        self.labels.raw(n)
    }

    /// Label plus id, e.g. `top (n1)`, or just `n1` when unlabeled.
    pub fn display(&self, n: NodeId) -> String {
        self.labels.of(n)
    }

    /// The most recently created node carrying `label` (instances shadow
    /// older runtimes' nodes when several share the sink).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let names = lock(&self.labels.names);
        names
            .iter()
            .enumerate()
            .rev()
            .find(|(_, l)| l.as_deref() == Some(label))
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// The causal chain that last dirtied `n`, or `None` if `n` was never
    /// observed being dirtied.
    ///
    /// Walks the per-node `cause` links backwards from `n` to the origin
    /// (cycle-guarded; each node contributes its *most recent* dirtying,
    /// which is the one that fed `n`'s wave in a quiesced run), then reports
    /// the chain origin-first. When the origin's reason is
    /// [`DirtyReason::WriteChanged`], the originating write is attached.
    pub fn why(&self, n: NodeId) -> Option<WhyChain> {
        let target = self.get(n);
        let head = target.dirtied?;
        let mut rev: Vec<WhyStep> = Vec::new();
        let mut visited: Vec<NodeId> = Vec::new();
        let mut cur = n;
        let mut rec = head;
        loop {
            visited.push(cur);
            rev.push(WhyStep {
                node: cur,
                label: self.labels.raw(cur),
                reason: rec.reason,
                cause: rec.cause,
            });
            let Some(c) = rec.cause else { break };
            if visited.contains(&c) {
                break; // defensive: causal links never cycle in a real trace
            }
            let Some(prev) = self.get(c).dirtied else {
                break;
            };
            cur = c;
            rec = prev;
        }
        rev.reverse();
        let origin = &rev[0];
        let write = match origin.reason {
            DirtyReason::WriteChanged => self
                .get(origin.node)
                .write
                .map(|w| (origin.node, w.changed)),
            _ => None,
        };
        let exec = target.exec.filter(|e| e.seq > head.seq).map(|e| e.changed);
        Some(WhyChain {
            node: n,
            wave: head.wave,
            write,
            steps: rev,
            exec,
        })
    }

    /// [`Provenance::why`] rendered as a deterministic multi-line report
    /// (no timestamps, so it is golden-testable):
    ///
    /// ```text
    /// why top (n1): wave 1
    ///   write a (n0) changed=true
    ///   -> dirtied a (n0) [WriteChanged]
    ///   -> dirtied right (n3) [Fanout <- a (n0)]
    ///   -> dirtied top (n1) [Fanout <- right (n3)]
    ///   -> executed top (n1) changed=true
    /// ```
    pub fn why_report(&self, n: NodeId) -> Option<String> {
        let chain = self.why(n)?;
        let mut out = String::new();
        let _ = write!(out, "why {}", self.labels.of(n));
        match chain.wave {
            Some(w) => {
                let _ = writeln!(out, ": wave {w}");
            }
            None => {
                let _ = writeln!(out, ": outside any wave");
            }
        }
        if let Some((loc, changed)) = chain.write {
            let _ = writeln!(out, "  write {} changed={changed}", self.labels.of(loc));
        }
        for step in &chain.steps {
            match step.cause {
                Some(c) => {
                    let _ = writeln!(
                        out,
                        "  -> dirtied {} [{:?} <- {}]",
                        self.labels.of(step.node),
                        step.reason,
                        self.labels.of(c)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  -> dirtied {} [{:?}]",
                        self.labels.of(step.node),
                        step.reason
                    );
                }
            }
        }
        match chain.exec {
            Some(changed) => {
                let _ = writeln!(out, "  -> executed {} changed={changed}", self.labels.of(n));
            }
            None => {
                let _ = writeln!(out, "  (no re-execution after this dirtying)");
            }
        }
        Some(out)
    }

    /// The causal chain as a Graphviz DOT digraph (origin at the left).
    pub fn why_dot(&self, n: NodeId) -> Option<String> {
        let chain = self.why(n)?;
        let mut out = String::new();
        out.push_str("digraph why {\n  rankdir=LR;\n");
        out.push_str("  node [fontname=\"Helvetica\" fontsize=10];\n");
        if let Some((loc, changed)) = chain.write {
            let _ = writeln!(
                out,
                "  w [label=\"write {}\\nchanged={changed}\" shape=note style=filled fillcolor=khaki];",
                self.labels.of(loc).replace('"', "'")
            );
            let _ = writeln!(out, "  w -> {};", chain.steps[0].node);
        }
        for step in &chain.steps {
            let mut label = self.labels.of(step.node).replace('"', "'");
            let _ = write!(label, "\\n{:?}", step.reason);
            let shape = if step.node == n {
                "doubleoctagon"
            } else {
                "ellipse"
            };
            let _ = writeln!(out, "  {} [label=\"{label}\" shape={shape}];", step.node);
        }
        for pair in chain.steps.windows(2) {
            let _ = writeln!(out, "  {} -> {};", pair[0].node, pair[1].node);
        }
        if let Some(changed) = chain.exec {
            let _ = writeln!(
                out,
                "  x [label=\"executed\\nchanged={changed}\" shape=note style=filled fillcolor=palegreen];"
            );
            let _ = writeln!(out, "  {n} -> x;");
        }
        out.push_str("}\n");
        Some(out)
    }
}

impl TraceSink for Provenance {
    fn event(&self, ev: &TraceEvent) {
        self.labels.observe(ev);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        match ev {
            TraceEvent::Dirtied {
                node,
                reason,
                cause,
            } => {
                let wave = *lock(&self.wave);
                self.slot(*node)[node.index()].dirtied = Some(DirtyRecord {
                    seq,
                    wave,
                    reason: *reason,
                    cause: *cause,
                });
            }
            TraceEvent::Write { node, changed } => {
                self.slot(*node)[node.index()].write = Some(WriteRecord { changed: *changed });
            }
            TraceEvent::ExecuteEnd { node, changed } => {
                self.slot(*node)[node.index()].exec = Some(ExecRecord {
                    seq,
                    changed: *changed,
                });
            }
            TraceEvent::PropagateBegin { wave } => *lock(&self.wave) = Some(*wave),
            TraceEvent::PropagateEnd { .. } => *lock(&self.wave) = None,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Runtime, Strategy};
    use std::sync::Arc;

    /// The canonical diamond from `tests/trace_events.rs`: `a` feeds
    /// `left = a/100` (cutoff arm) and `right = a*2`, which feed `top`.
    fn traced_diamond() -> (Arc<Provenance>, [NodeId; 4]) {
        let rt = Runtime::new();
        let prov = Arc::new(Provenance::new());
        rt.set_sink(Some(prov.clone()));
        let a = rt.var_named("a", 10i64);
        let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
        let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
        let (l, r) = (left.clone(), right.clone());
        let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
            l.call(rt, ()) + r.call(rt, ())
        });
        assert_eq!(top.call(&rt, ()), 20);
        let nodes = [
            a.node(),
            top.instance_node(&()).unwrap(),
            left.instance_node(&()).unwrap(),
            right.instance_node(&()).unwrap(),
        ];
        a.set(&rt, 20);
        rt.propagate();
        rt.set_sink(None);
        (prov, nodes)
    }

    #[test]
    fn why_reconstructs_write_fanout_execute_chain() {
        let (prov, [na, ntop, _nleft, nright]) = traced_diamond();
        let chain = prov.why(ntop).expect("top was dirtied");
        assert_eq!(chain.write, Some((na, true)));
        assert_eq!(chain.wave, Some(1));
        assert_eq!(chain.exec, Some(true));
        let path: Vec<NodeId> = chain.steps.iter().map(|s| s.node).collect();
        assert_eq!(path, vec![na, nright, ntop]);
        assert_eq!(chain.steps[0].reason, DirtyReason::WriteChanged);
        assert_eq!(chain.steps[1].cause, Some(na));
        assert_eq!(chain.steps[2].cause, Some(nright));
    }

    #[test]
    fn why_report_matches_golden() {
        let (prov, [_, ntop, _, _]) = traced_diamond();
        let report = prov.why_report(ntop).unwrap();
        let golden = "\
why top (n1): wave 1
  write a (n0) changed=true
  -> dirtied a (n0) [WriteChanged]
  -> dirtied right (n3) [Fanout <- a (n0)]
  -> dirtied top (n1) [Fanout <- right (n3)]
  -> executed top (n1) changed=true
";
        assert_eq!(report, golden, "why report diverged:\n{report}");
    }

    #[test]
    fn cutoff_arm_shows_no_downstream_execution_of_unaffected_chain() {
        let (prov, [na, _, nleft, _]) = traced_diamond();
        let chain = prov.why(nleft).expect("left was dirtied");
        // left did re-execute (to discover the cutoff) but did not change.
        assert_eq!(chain.exec, Some(false));
        assert_eq!(chain.steps.last().unwrap().cause, Some(na));
    }

    #[test]
    fn node_by_label_resolves_latest_instance() {
        let (prov, [na, ntop, ..]) = traced_diamond();
        assert_eq!(prov.node_by_label("a"), Some(na));
        assert_eq!(prov.node_by_label("top"), Some(ntop));
        assert_eq!(prov.node_by_label("nope"), None);
    }

    #[test]
    fn why_dot_mentions_every_hop() {
        let (prov, [_, ntop, _, _]) = traced_diamond();
        let dot = prov.why_dot(ntop).unwrap();
        assert!(dot.contains("digraph why"));
        assert!(dot.contains("write a (n0)"), "{dot}");
        assert!(dot.contains("doubleoctagon"), "{dot}");
        assert!(dot.contains("executed"), "{dot}");
    }

    #[test]
    fn why_is_none_for_never_dirtied_nodes() {
        let prov = Provenance::new();
        assert!(prov.why(NodeId::from_index(0)).is_none());
        assert!(prov.why_report(NodeId::from_index(5)).is_none());
    }
}
