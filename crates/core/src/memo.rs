//! Incremental procedures: cached functions and maintained methods.

use crate::fxhash::FxHashMap;
use crate::runtime::{Executor, Runtime, Strategy};
use crate::value::{downcast_ref, Value};
use alphonse_graph::NodeId;
use alphonse_mem as mem;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, Weak};

/// Bound required of memo argument vectors: they key the *argument table*
/// of Section 4.2, so they must be hashable, comparable and clonable —
/// plus `Send + Sync`, because the argument vector is captured by the
/// instance's re-execution closure and sessions move across threads.
pub trait MemoArgs: Eq + Hash + Clone + Send + Sync + 'static {}
impl<T: Eq + Hash + Clone + Send + Sync + 'static> MemoArgs for T {}

/// Bound required of memo results: cached values participate in quiescence
/// cutoff, so they must be comparable, and are handed out by clone.
pub trait MemoResult: Value + PartialEq + Clone {}
impl<T: Value + PartialEq + Clone> MemoResult for T {}

/// One argument-table entry with its LRU stamp.
struct Entry {
    node: NodeId,
    last_use: u64,
}

pub(crate) struct MemoInner<A, R> {
    name: Arc<str>,
    strategy: Strategy,
    rt_id: u64,
    /// Maximum number of instance *values* kept live (paper Section 3.3:
    /// "additional pragma arguments allow the specification of … cache
    /// size, and the replacement algorithm"). `None` = unbounded.
    capacity: Option<usize>,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&Runtime, &A) -> R + Send + Sync>,
    /// The paper's *argument table* (Section 4.2): one dependency-graph node
    /// per distinct argument vector. FxHash-keyed: probed on every call.
    /// Locked with the same single-thread discipline as the runtime's own
    /// state (sessions are `Send`, not `Sync`), so the lock is uncontended;
    /// it is scoped tightly in `settle` so body re-execution — which may
    /// recursively call back into this memo — never holds it.
    table: Mutex<Table<A>>,
    /// Single-instance shortcut for zero-sized argument types: an inhabited
    /// ZST has exactly one value, so the argument table holds at most one
    /// entry. Its node is published here by the first call; every later
    /// call is one atomic load instead of a table lock plus LRU stamp.
    single: OnceLock<NodeId>,
    /// Values dropped by the replacement policy so far.
    evictions: AtomicU64,
    /// Static-stratum seed applied to fresh instance nodes (see
    /// [`Memo::set_height_hint`]). Zero means "no hint". Atomic because
    /// recursive memos are built through `Arc::new_cyclic`, so the hint
    /// must be settable after construction through a shared handle.
    height_hint: AtomicU32,
}

/// The guarded argument-table state: the instance map plus the logical
/// clock for LRU stamps (advanced under the same lock as the probe that
/// uses it, so stamping costs no extra atomic).
struct Table<A> {
    map: FxHashMap<A, Entry>,
    clock: u64,
}

impl<A> Default for Table<A> {
    fn default() -> Self {
        Table {
            map: FxHashMap::default(),
            clock: 0,
        }
    }
}

impl<A, R> MemoInner<A, R> {
    /// Locks the argument table; a poisoned lock (panic unwound out of a
    /// memo operation) is entered anyway, matching the runtime's
    /// unspecified-but-memory-safe post-panic contract.
    fn table(&self) -> MutexGuard<'_, Table<A>> {
        self.table.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An incremental procedure: a function whose calls are cached per argument
/// vector and kept consistent under mutation of everything it read.
///
/// `Memo` unifies the paper's two pragmas. A `(*CACHED*)` procedure and a
/// `(*MAINTAINED*)` method are both *incremental procedure instances*
/// (Section 3.3): each distinct argument vector gets a dependency-graph node
/// whose cached value is reused until some read location or callee result
/// changes. Unlike classical function caching, the body may freely read
/// tracked global state ([`Var`](crate::Var)s) — the paper's lifting of the
/// *combinator* restriction (Section 4.2) — and may even write tracked
/// state, as the AVL `balance` method of Section 7.3 does.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// let rt = Runtime::new();
/// let base = rt.var(100i64);
/// let scaled = rt.memo("scaled", move |rt, k: &i64| base.get(rt) * k);
/// assert_eq!(scaled.call(&rt, 3), 300);
/// assert_eq!(scaled.call(&rt, 3), 300); // cache hit
/// base.set(&rt, 1);
/// assert_eq!(scaled.call(&rt, 3), 3); // recomputed
/// ```
pub struct Memo<A, R> {
    inner: Arc<MemoInner<A, R>>,
}

impl<A, R> Clone for Memo<A, R> {
    fn clone(&self) -> Self {
        Memo {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<A, R> fmt::Debug for Memo<A, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memo")
            .field("name", &self.inner.name)
            .field("strategy", &self.inner.strategy)
            .field("instances", &self.inner.table().map.len())
            .finish()
    }
}

impl Runtime {
    /// Defines a demand-evaluated incremental procedure — the library form
    /// of the `(*CACHED*)` / `(*MAINTAINED*)` pragmas.
    ///
    /// `name` is used in diagnostics. The body must satisfy the paper's DET
    /// restriction: same arguments and same tracked reads must yield the
    /// same result.
    pub fn memo<A: MemoArgs, R: MemoResult>(
        &self,
        name: &str,
        f: impl Fn(&Runtime, &A) -> R + Send + Sync + 'static,
    ) -> Memo<A, R> {
        self.memo_with(name, Strategy::Demand, f)
    }

    /// Defines an incremental procedure with an explicit evaluation
    /// [`Strategy`].
    pub fn memo_with<A: MemoArgs, R: MemoResult>(
        &self,
        name: &str,
        strategy: Strategy,
        f: impl Fn(&Runtime, &A) -> R + Send + Sync + 'static,
    ) -> Memo<A, R> {
        let _mem = mem::scope(mem::Tag::Memo);
        Memo {
            inner: Arc::new(MemoInner {
                name: Arc::from(name),
                strategy,
                rt_id: self.id,
                capacity: None,
                f: Box::new(f),
                table: Mutex::new(Table::default()),
                single: OnceLock::new(),
                evictions: AtomicU64::new(0),
                height_hint: AtomicU32::new(0),
            }),
        }
    }

    /// Defines an incremental procedure whose cache keeps at most
    /// `capacity` instance values live, with least-recently-used
    /// replacement — the paper's cache-size / replacement-algorithm pragma
    /// arguments (Section 3.3).
    ///
    /// Eviction only drops the cached *value* (forcing recomputation on the
    /// next call); the instance's dependency edges remain so that change
    /// propagation through it stays sound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn memo_bounded<A: MemoArgs, R: MemoResult>(
        &self,
        name: &str,
        strategy: Strategy,
        capacity: usize,
        f: impl Fn(&Runtime, &A) -> R + Send + Sync + 'static,
    ) -> Memo<A, R> {
        assert!(capacity > 0, "memo cache capacity must be positive");
        let _mem = mem::scope(mem::Tag::Memo);
        Memo {
            inner: Arc::new(MemoInner {
                name: Arc::from(name),
                strategy,
                rt_id: self.id,
                capacity: Some(capacity),
                f: Box::new(f),
                table: Mutex::new(Table::default()),
                single: OnceLock::new(),
                evictions: AtomicU64::new(0),
                height_hint: AtomicU32::new(0),
            }),
        }
    }

    /// Defines a demand-evaluated incremental procedure whose body can call
    /// itself — the shape of every recursive maintained method in the paper
    /// (`height`, `balance`, attribute equations).
    ///
    /// The body receives its own [`Memo`] handle as second parameter.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::Runtime;
    /// let rt = Runtime::new();
    /// let fib = rt.memo_recursive("fib", |rt, fib, &n: &u64| -> u64 {
    ///     if n < 2 { n } else { fib.call(rt, n - 1) + fib.call(rt, n - 2) }
    /// });
    /// assert_eq!(fib.call(&rt, 20), 6765);
    /// ```
    pub fn memo_recursive<A: MemoArgs, R: MemoResult>(
        &self,
        name: &str,
        f: impl Fn(&Runtime, &Memo<A, R>, &A) -> R + Send + Sync + 'static,
    ) -> Memo<A, R> {
        self.memo_recursive_with(name, Strategy::Demand, f)
    }

    /// [`Runtime::memo_recursive`] with an explicit evaluation strategy.
    pub fn memo_recursive_with<A: MemoArgs, R: MemoResult>(
        &self,
        name: &str,
        strategy: Strategy,
        f: impl Fn(&Runtime, &Memo<A, R>, &A) -> R + Send + Sync + 'static,
    ) -> Memo<A, R> {
        let _mem = mem::scope(mem::Tag::Memo);
        let name: Arc<str> = Arc::from(name);
        let rt_id = self.id;
        let inner = Arc::new_cyclic(|weak: &Weak<MemoInner<A, R>>| {
            let weak = weak.clone();
            MemoInner {
                name,
                strategy,
                rt_id,
                capacity: None,
                f: Box::new(move |rt, a| {
                    let me = Memo {
                        inner: weak.upgrade().expect("memo table dropped during call"),
                    };
                    f(rt, &me, a)
                }),
                table: Mutex::new(Table::default()),
                single: OnceLock::new(),
                evictions: AtomicU64::new(0),
                height_hint: AtomicU32::new(0),
            }
        });
        Memo { inner }
    }
}

impl<A: MemoArgs, R: MemoResult> Memo<A, R> {
    /// The diagnostic name given at definition time.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The evaluation strategy of this procedure.
    pub fn strategy(&self) -> Strategy {
        self.inner.strategy
    }

    /// Number of distinct argument vectors instantiated so far.
    pub fn instance_count(&self) -> usize {
        self.inner.table().map.len()
    }

    /// Calls the procedure — the paper's instrumented `call` operation
    /// (Algorithm 5):
    ///
    /// 1. look the argument vector up in the argument table, creating the
    ///    instance node on a miss;
    /// 2. on a hit, run pending change propagation first (with partitioning,
    ///    only this instance's partition);
    /// 3. record the caller's dependence on this instance;
    /// 4. return the cached value if the instance is consistent, otherwise
    ///    drop its stale dependencies and re-execute the body.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime the memo was defined in, or if the
    /// computation turns out to be cyclic (paper restriction DET).
    pub fn call(&self, rt: &Runtime, args: A) -> R {
        let (node, begun) = self.settle(rt, args);
        self.finish(rt, node, begun, R::clone)
    }

    /// Calls the procedure and hands the result to `f` by reference instead
    /// of cloning it out of the cache — the zero-allocation form of
    /// [`Memo::call`] for results that do not need to escape.
    ///
    /// Dependence recording, cache consultation and re-execution are
    /// identical to [`Memo::call`]; only the final hand-off differs. On a
    /// cache hit no clone of `R` happens at all. The runtime is internally
    /// locked while `f` runs: the closure must not re-enter runtime
    /// operations, or the fail-stop re-entrancy check panics.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::Runtime;
    /// let rt = Runtime::new();
    /// let words = rt.var(vec!["a".to_string(), "bb".to_string()]);
    /// let joined = rt.memo("joined", move |rt, &(): &()| {
    ///     words.with(rt, |w| w.join("+"))
    /// });
    /// let len = joined.call_with(&rt, (), |s| s.len());
    /// assert_eq!(len, 4);
    /// ```
    ///
    /// # Panics
    ///
    /// As for [`Memo::call`].
    pub fn call_with<O>(&self, rt: &Runtime, args: A, f: impl FnOnce(&R) -> O) -> O {
        let (node, begun) = self.settle(rt, args);
        self.finish(rt, node, begun, f)
    }

    /// Steps 1–2 of Algorithm 5: argument-table lookup (instantiating on a
    /// miss). Returns the instance node plus, for a just-created instance,
    /// its already-booked first execution (a fresh instance cannot be a
    /// cache hit and has no pending changes to settle, so
    /// [`Runtime::alloc_comp_begun`] books the execution inside the
    /// allocation's own lock and [`Memo::finish`] skips the cache probe).
    /// The call/probe counters are tallied inside the allocation /
    /// pre-call paths, sharing their existing lock acquisitions.
    fn settle(&self, rt: &Runtime, args: A) -> (NodeId, Option<(Executor, u64)>) {
        assert_eq!(
            self.inner.rt_id, rt.id,
            "Memo {:?} used with a different Runtime than it was defined in",
            self.inner.name
        );
        // Single-instance fast path: once the sole instance of a
        // zero-sized argument type is published, the whole settle step is
        // one atomic load (LRU stamps are pointless with one entry).
        if std::mem::size_of::<A>() == 0 {
            if let Some(&node) = self.inner.single.get() {
                return (node, None);
            }
        }
        let mut begun = None;
        let node = {
            let mut table = self.inner.table();
            table.clock += 1;
            let stamp = table.clock;
            match table.map.get_mut(&args) {
                Some(entry) => {
                    entry.last_use = stamp;
                    entry.node
                }
                None => {
                    let _mem = mem::scope(mem::Tag::Memo);
                    let inner = Arc::clone(&self.inner);
                    let a = args.clone();
                    let executor: Executor = Arc::new(move |rt| {
                        // Run the user body untagged (its allocations are
                        // workload memory), then bill the result box to the
                        // value slab.
                        let result = (inner.f)(rt, &a);
                        mem::with(mem::Tag::ValueSlab, || Box::new(result) as Box<dyn Value>)
                    });
                    let (n, executor, my_gen) = rt.alloc_comp_begun(
                        Arc::clone(&self.inner.name),
                        self.inner.strategy,
                        executor,
                        self.inner.height_hint.load(Ordering::Relaxed),
                    );
                    begun = Some((executor, my_gen));
                    table.map.insert(
                        args,
                        Entry {
                            node: n,
                            last_use: stamp,
                        },
                    );
                    n
                }
            }
        };
        if begun.is_some() {
            self.enforce_capacity(rt, node);
        }
        if std::mem::size_of::<A>() == 0 {
            let _ = self.inner.single.set(node);
        }
        (node, begun)
    }

    /// Steps 3–4 of Algorithm 5: consult the cache, re-execute on a miss,
    /// record the caller's dependence, and hand the typed result to `f`
    /// in place (no `Box`, and no clone unless `f` itself clones).
    fn finish<O>(
        &self,
        rt: &Runtime,
        node: NodeId,
        begun: Option<(Executor, u64)>,
        f: impl FnOnce(&R) -> O,
    ) -> O {
        // A just-created instance cannot hit and its execution is already
        // booked ([`Memo::settle`]): run it to completion directly.
        if let Some((executor, my_gen)) = begun {
            return rt.finish_exec_recording(node, &executor, my_gen, |v| {
                f(downcast_ref::<R>(v, self.name()))
            });
        }
        // `f` runs at most once; the Option lets the consistent-cache
        // closure and the post-execution paths share it.
        let mut f = Some(f);
        // Note: the paper's Algorithm 5 records the caller's dependence edge
        // before checking consistency. We record it after the callee has
        // settled (cache hit or completed re-execution) instead — the
        // resulting edge set is identical, but re-entrant patterns like the
        // AVL balance method (Section 7.3) would otherwise transiently pair
        // a stale caller→callee edge with the fresh callee→caller one and
        // trip cycle detection.
        let hit = rt.precall_cached(node, |v| {
            (f.take().expect("first use of f"))(downcast_ref::<R>(v, self.name()))
        });
        if let Some(out) = hit {
            return out;
        }
        let f = f.take().expect("cache miss: f not yet used");
        rt.execute_recording(node, |v| f(downcast_ref::<R>(v, self.name())))
    }

    /// The dependency-graph node for a given argument vector, if that
    /// instance exists.
    pub fn instance_node(&self, args: &A) -> Option<NodeId> {
        self.inner.table().map.get(args).map(|e| e.node)
    }

    /// Cache capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Number of values dropped by the replacement policy so far.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Seeds the minimum height of instance nodes created *after* this call
    /// from a static stratification (the compiler's SCC condensation of the
    /// abstract dependency graph). A node born at its final height never
    /// triggers the online height-raise cascade when its read edges are
    /// recorded, so a good hint turns O(edges) height adjustments into
    /// none. Overestimates are harmless: heights only order propagation,
    /// and the wave queue tolerates stale priorities. Zero clears the hint.
    /// Already-created instances are unaffected.
    pub fn set_height_hint(&self, h: u32) {
        self.inner.height_hint.store(h, Ordering::Relaxed);
    }

    /// The current static height hint (zero = none).
    pub fn height_hint(&self) -> u32 {
        self.inner.height_hint.load(Ordering::Relaxed)
    }

    /// Drops least-recently-used cached values until at most `capacity`
    /// remain live. Instances that are currently executing are never
    /// evicted. Dependency edges are kept — eviction forgets results, not
    /// dependence (otherwise propagation through the instance would lose
    /// soundness).
    fn enforce_capacity(&self, rt: &Runtime, just_created: NodeId) {
        let Some(capacity) = self.inner.capacity else {
            return;
        };
        let table = self.inner.table();
        let mut live: Vec<(u64, NodeId)> = table
            .map
            .values()
            .filter(|e| {
                e.node != just_created && rt.node_has_value(e.node) && !rt.node_on_stack(e.node)
            })
            .map(|e| (e.last_use, e.node))
            .collect();
        drop(table);
        // +1 for the instance about to be (or just) computed.
        let over = (live.len() + 1).saturating_sub(capacity);
        if over == 0 {
            return;
        }
        live.sort_unstable();
        for &(_, node) in live.iter().take(over) {
            rt.evict_value(node);
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops the cached value for `args`, forcing recomputation on the
    /// next call, exactly like LRU eviction (dependency edges are kept, so
    /// change propagation through the instance stays sound). Returns `true`
    /// if a live value was dropped. Instances that are currently executing
    /// are left untouched.
    ///
    /// Hosts use this to un-cache results that are known to be invalid for
    /// reasons the runtime cannot see — e.g. a language interpreter whose
    /// procedure body raised an error after the memo committed a sentinel.
    pub fn forget(&self, rt: &Runtime, args: &A) -> bool {
        match self.instance_node(args) {
            Some(n) if rt.node_has_value(n) && !rt.node_on_stack(n) => {
                rt.evict_value(n);
                true
            }
            _ => false,
        }
    }

    /// Explains why the instance for `args` has its current value by
    /// listing its recorded dependencies — the "sophisticated debugging"
    /// use of the dependency information (paper Section 1). Returns `None`
    /// if the instance was never called.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::Runtime;
    /// let rt = Runtime::new();
    /// let base = rt.var(2i64);
    /// let m = rt.memo("double", move |rt, &(): &()| base.get(rt) * 2);
    /// m.call(&rt, ());
    /// let why = m.explain(&rt, &()).unwrap();
    /// assert!(why.contains("instance of double"));
    /// assert!(why.contains("depends on"));
    /// ```
    pub fn explain(&self, rt: &Runtime, args: &A) -> Option<String> {
        self.instance_node(args).map(|n| rt.explain(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn caches_per_argument_vector() {
        let rt = Runtime::new();
        let runs = Arc::new(AtomicU32::new(0));
        let r2 = Arc::clone(&runs);
        let double = rt.memo("double", move |_rt, x: &i64| {
            r2.fetch_add(1, Ordering::Relaxed);
            x * 2
        });
        assert_eq!(double.call(&rt, 4), 8);
        assert_eq!(double.call(&rt, 4), 8);
        assert_eq!(double.call(&rt, 5), 10);
        assert_eq!(
            runs.load(Ordering::Relaxed),
            2,
            "one execution per distinct argument"
        );
        assert_eq!(double.instance_count(), 2);
    }

    #[test]
    fn invalidates_on_tracked_read_change() {
        let rt = Runtime::new();
        let base = rt.var(1i64);
        let plus = rt.memo("plus", move |rt, x: &i64| base.get(rt) + x);
        assert_eq!(plus.call(&rt, 10), 11);
        base.set(&rt, 5);
        assert_eq!(plus.call(&rt, 10), 15);
    }

    #[test]
    fn unchanged_write_is_cutoff() {
        let rt = Runtime::new();
        let base = rt.var(1i64);
        let runs = Arc::new(AtomicU32::new(0));
        let r2 = Arc::clone(&runs);
        let probe = rt.memo("probe", move |rt, &(): &()| {
            r2.fetch_add(1, Ordering::Relaxed);
            base.get(rt)
        });
        probe.call(&rt, ());
        base.set(&rt, 1); // same value: no dirtying
        probe.call(&rt, ());
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn recursive_memo_works() {
        let rt = Runtime::new();
        let fact = rt.memo_recursive("fact", |rt, me, &n: &u64| -> u64 {
            if n == 0 {
                1
            } else {
                n * me.call(rt, n - 1)
            }
        });
        assert_eq!(fact.call(&rt, 10), 3_628_800);
        // All 11 instances cached.
        assert_eq!(fact.instance_count(), 11);
        let before = rt.stats();
        assert_eq!(fact.call(&rt, 10), 3_628_800);
        let d = rt.stats().delta_since(&before);
        assert_eq!(d.executions, 0, "fully cached");
    }

    #[test]
    fn memo_reads_memo_dependencies() {
        let rt = Runtime::new();
        let a = rt.var(1i64);
        let mid = rt.memo("mid", move |rt, &(): &()| a.get(rt) * 10);
        let mid2 = mid.clone();
        let top = rt.memo("top", move |rt, &(): &()| mid2.call(rt, ()) + 1);
        assert_eq!(top.call(&rt, ()), 11);
        a.set(&rt, 2);
        assert_eq!(top.call(&rt, ()), 21);
    }

    #[test]
    #[should_panic(expected = "different Runtime")]
    fn cross_runtime_memo_panics() {
        let a = Runtime::new();
        let b = Runtime::new();
        let m = a.memo("m", |_rt, x: &i64| *x);
        let _ = m.call(&b, 1);
    }

    #[test]
    fn debug_shows_name() {
        let rt = Runtime::new();
        let m = rt.memo("shown", |_rt, x: &i64| *x);
        assert!(format!("{m:?}").contains("shown"));
    }

    #[test]
    fn strategy_accessors() {
        let rt = Runtime::new();
        let d = rt.memo("d", |_rt, x: &i64| *x);
        let e = rt.memo_with("e", Strategy::Eager, |_rt, x: &i64| *x);
        assert_eq!(d.strategy(), Strategy::Demand);
        assert_eq!(e.strategy(), Strategy::Eager);
        assert_eq!(d.name(), "d");
    }
}
