//! Sharded multi-session serving.
//!
//! A [`Runtime`] is a `Send` value: independent sessions share nothing, so
//! cross-session parallelism needs no locks, no coordination and no changes
//! to the single-threaded propagation machinery. [`SessionPool`] packages
//! that observation as a serving layer: `N` worker threads, each owning a
//! disjoint set of sessions, with tenants routed to shards by id. Inside a
//! shard everything stays exactly as fast as the single-threaded runtime —
//! the pool's only job is to move whole sessions onto worker threads and
//! keep them there.
//!
//! A "session" here is any `Send + 'static` value the caller defines —
//! typically a struct bundling a [`Runtime`] with the `Var`/`Memo` handles
//! of one tenant's dependency graph. The pool never looks inside it; work
//! arrives as closures ([`SessionPool::submit`]) and answers come back from
//! blocking closures ([`SessionPool::query`]).
//!
//! # Example
//!
//! ```
//! use alphonse::pool::SessionPool;
//! use alphonse::{Memo, Runtime, Var};
//!
//! struct Tenant {
//!     rt: Runtime,
//!     input: Var<i64>,
//!     double: Memo<(), i64>,
//! }
//!
//! let pool = SessionPool::new(2);
//! for tenant in 0..4u64 {
//!     // Sessions are built wherever convenient (here: the main thread)
//!     // and then *moved* into their shard — Runtime is Send.
//!     let rt = Runtime::new();
//!     let input = rt.var(tenant as i64);
//!     let double = rt.memo("double", move |rt, &(): &()| input.get(rt) * 2);
//!     pool.insert(tenant, Tenant { rt, input, double });
//! }
//! pool.submit(3, |s: &mut Tenant| s.input.set(&s.rt, 100));
//! assert_eq!(pool.query(3, |s: &mut Tenant| s.double.call(&s.rt, ())), 200);
//! assert_eq!(pool.query(0, |s: &mut Tenant| s.double.call(&s.rt, ())), 0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::metrics::{MetricsSnapshot, PoolMetricsRegistry, PoolSnapshot};
use alphonse_mem as mem;

/// One unit of shard-worker input.
enum Msg<S> {
    /// Install a session under a tenant id (replacing any previous one).
    Insert(u64, S),
    /// Remove a session, sending it back to the caller.
    Remove(u64, SyncSender<Option<S>>),
    /// Run a closure against a tenant's session. The stamp is the enqueue
    /// time when metric recording is active (`None` otherwise); the shard
    /// worker turns it into the submit→service sojourn histogram.
    Work(u64, Option<Instant>, Box<dyn FnOnce(&mut S) + Send>),
    /// Reply on the channel once every message queued before this one has
    /// been processed.
    Barrier(SyncSender<()>),
}

struct Shard<S> {
    tx: Sender<Msg<S>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed pool of worker threads, each serving the sessions of a disjoint
/// set of tenants. See the [module docs](self) for the design.
///
/// Routing is static: tenant `t` always lands on shard `t % n_shards`, so
/// all work for one tenant is serialized on one thread (per-tenant ordering
/// is preserved) while different shards proceed in parallel.
pub struct SessionPool<S: Send + 'static> {
    shards: Vec<Shard<S>>,
    /// Serving-layer telemetry (submit sojourn, flush latency, per-shard
    /// tenant/job gauges); shard workers share it lock-free.
    metrics: Arc<PoolMetricsRegistry>,
}

impl<S: Send + 'static> SessionPool<S> {
    /// Spawns a pool of `n_shards` worker threads (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    #[must_use]
    pub fn new(n_shards: usize) -> SessionPool<S> {
        assert!(n_shards > 0, "a session pool needs at least one shard");
        let _mem = mem::scope(mem::Tag::SessionPool);
        let metrics = Arc::new(PoolMetricsRegistry::new(n_shards));
        let shards = (0..n_shards)
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Msg<S>>();
                let metrics = Arc::clone(&metrics);
                let handle = std::thread::Builder::new()
                    .name(format!("alphonse-shard-{i}"))
                    .spawn(move || shard_main(&rx, i, &metrics))
                    .expect("spawning a pool shard thread");
                Shard {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        SessionPool { shards, metrics }
    }

    /// Number of shards (worker threads).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, tenant: u64) -> &Shard<S> {
        &self.shards[(tenant % self.shards.len() as u64) as usize]
    }

    fn send(&self, tenant: u64, msg: Msg<S>) {
        self.shard(tenant)
            .tx
            .send(msg)
            .expect("pool shard worker terminated (a submitted closure panicked?)");
    }

    /// Installs `session` for `tenant`, replacing any existing session with
    /// that id. The session value is *moved* onto the shard thread.
    pub fn insert(&self, tenant: u64, session: S) {
        self.send(tenant, Msg::Insert(tenant, session));
    }

    /// Removes and returns `tenant`'s session (blocking), or `None` if the
    /// tenant has no session. The session moves back to the calling thread.
    pub fn remove(&self, tenant: u64) -> Option<S> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.send(tenant, Msg::Remove(tenant, reply));
        rx.recv().expect("pool shard worker terminated")
    }

    /// Queues `work` to run against `tenant`'s session and returns
    /// immediately. Work for one tenant runs in submission order; work for
    /// tenants on different shards runs in parallel.
    ///
    /// Submissions against a tenant with no installed session are dropped
    /// (serving semantics: an evicted tenant's queued edits are void).
    pub fn submit(&self, tenant: u64, work: impl FnOnce(&mut S) + Send + 'static) {
        let _mem = mem::scope(mem::Tag::SessionPool);
        self.send(
            tenant,
            Msg::Work(tenant, crate::metrics::stamp(), Box::new(work)),
        );
    }

    /// Runs `f` against `tenant`'s session and blocks for its result,
    /// after all previously submitted work for that tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant has no installed session.
    pub fn query<R: Send + 'static>(
        &self,
        tenant: u64,
        f: impl FnOnce(&mut S) -> R + Send + 'static,
    ) -> R {
        let (reply, rx) = mpsc::sync_channel(1);
        self.submit(tenant, move |s| {
            // A dropped `reply` (session missing) surfaces as a recv error
            // below rather than a hang.
            let _ = reply.send(f(s));
        });
        rx.recv()
            .expect("query against a tenant with no installed session")
    }

    /// Blocks until every shard has drained all work queued before this
    /// call — the pool-wide quiescence point benches measure around.
    pub fn flush(&self) {
        let t0 = crate::metrics::stamp();
        let (reply, rx) = mpsc::sync_channel(self.shards.len());
        for shard in &self.shards {
            shard
                .tx
                .send(Msg::Barrier(reply.clone()))
                .expect("pool shard worker terminated");
        }
        drop(reply);
        // One ack per live shard; a dead shard's clone is dropped unused.
        for _ in &self.shards {
            rx.recv().expect("pool shard worker terminated");
        }
        if let Some(t0) = t0 {
            self.metrics
                .flush_latency_ns
                .record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Serving-layer metrics: submit→service sojourn and flush-latency
    /// histograms plus per-shard tenant and job gauges. The snapshot's
    /// runtime-side histograms are empty — merge per-session
    /// [`Runtime::metrics_snapshot`](crate::Runtime::metrics_snapshot)s
    /// into it for a full picture
    /// ([`MetricsSnapshot::merge`]).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            pool: Some(self.pool_metrics()),
            mem: mem::snapshot(),
            ..MetricsSnapshot::default()
        }
    }

    /// Just the serving-layer portion of [`SessionPool::metrics_snapshot`].
    #[must_use]
    pub fn pool_metrics(&self) -> PoolSnapshot {
        self.metrics.snapshot()
    }
}

impl<S: Send + 'static> Drop for SessionPool<S> {
    /// Closes every shard's queue and joins the workers, re-raising any
    /// worker panic so a failed closure can't pass silently.
    fn drop(&mut self) {
        for shard in &mut self.shards {
            // Replace the sender with a dummy so the worker's recv loop
            // sees disconnection and exits.
            let (dummy, _) = mpsc::channel();
            drop(std::mem::replace(&mut shard.tx, dummy));
            if let Some(handle) = shard.handle.take() {
                if let Err(panic) = handle.join() {
                    if !std::thread::panicking() {
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        }
    }
}

/// Shard worker loop: owns this shard's sessions until the queue closes.
/// Maintains this shard's gauges as a side effect: the tenant count after
/// every insert/remove, one job tick per work closure, and the
/// submit→service sojourn of every stamped message.
fn shard_main<S>(rx: &Receiver<Msg<S>>, shard: usize, metrics: &PoolMetricsRegistry) {
    let gauges = &metrics.shards[shard];
    let mut sessions: HashMap<u64, S> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Insert(tenant, session) => {
                let _mem = mem::scope(mem::Tag::SessionPool);
                sessions.insert(tenant, session);
                gauges
                    .tenants
                    .store(sessions.len() as u64, Ordering::Relaxed);
            }
            Msg::Remove(tenant, reply) => {
                let _ = reply.send(sessions.remove(&tenant));
                gauges
                    .tenants
                    .store(sessions.len() as u64, Ordering::Relaxed);
            }
            Msg::Work(tenant, stamp, work) => {
                if let Some(t0) = stamp {
                    metrics
                        .submit_sojourn_ns
                        .record(t0.elapsed().as_nanos() as u64);
                }
                gauges.jobs.fetch_add(1, Ordering::Relaxed);
                if let Some(session) = sessions.get_mut(&tenant) {
                    work(session);
                }
            }
            Msg::Barrier(reply) => {
                let _ = reply.send(());
            }
        }
    }
}

/// Statically proves `SessionPool` itself crosses threads: a server can own
/// one pool from any control thread.
#[allow(dead_code)]
fn assert_pool_send<S: Send + 'static>(pool: SessionPool<S>) -> impl Send {
    pool
}

// `Arc` appears in the public example pattern below; keep the import used
// even on minimal feature sets.
#[allow(unused)]
type SharedPool<S> = Arc<SessionPool<S>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Memo, Runtime, Var};

    struct Sess {
        rt: Runtime,
        x: Var<i64>,
        y: Memo<(), i64>,
    }

    fn sess(seed: i64) -> Sess {
        let rt = Runtime::new();
        let x = rt.var(seed);
        let y = rt.memo("y", move |rt, &(): &()| x.get(rt) + 1);
        Sess { rt, x, y }
    }

    #[test]
    fn routes_and_serves_many_tenants() {
        let pool = SessionPool::new(3);
        for t in 0..10u64 {
            pool.insert(t, sess(t as i64));
        }
        for t in 0..10u64 {
            assert_eq!(
                pool.query(t, |s: &mut Sess| s.y.call(&s.rt, ())),
                t as i64 + 1
            );
        }
    }

    #[test]
    fn per_tenant_order_is_submission_order() {
        let pool = SessionPool::new(2);
        pool.insert(7, sess(0));
        for i in 1..=100 {
            pool.submit(7, move |s: &mut Sess| s.x.set(&s.rt, i));
        }
        assert_eq!(pool.query(7, |s: &mut Sess| s.y.call(&s.rt, ())), 101);
    }

    #[test]
    fn flush_is_a_barrier_across_all_shards() {
        let pool = SessionPool::new(4);
        for t in 0..8u64 {
            pool.insert(t, sess(0));
            pool.submit(t, move |s: &mut Sess| s.x.set(&s.rt, t as i64 * 10));
        }
        pool.flush();
        for t in 0..8u64 {
            assert_eq!(
                pool.query(t, |s: &mut Sess| s.x.get_untracked(&s.rt)),
                t as i64 * 10
            );
        }
    }

    #[test]
    fn remove_moves_the_session_back() {
        let pool = SessionPool::new(2);
        pool.insert(1, sess(41));
        let s = pool.remove(1).expect("installed above");
        // The session keeps working on the calling thread after the move.
        assert_eq!(s.y.call(&s.rt, ()), 42);
        assert!(pool.remove(1).is_none(), "already removed");
    }

    #[test]
    fn work_for_missing_tenant_is_dropped() {
        let pool = SessionPool::new(1);
        pool.submit(9, |s: &mut Sess| s.x.set(&s.rt, 1));
        pool.flush(); // closure was discarded, no hang, no panic
    }

    #[test]
    #[should_panic(expected = "no installed session")]
    fn query_for_missing_tenant_panics() {
        let pool = SessionPool::<Sess>::new(1);
        let _ = pool.query(3, |s| s.x.get_untracked(&s.rt));
    }

    #[test]
    fn shards_actually_run_in_parallel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        // Two tenants on two shards each block on a shared rendezvous that
        // can only be passed if both closures are in flight at once.
        let pool = SessionPool::new(2);
        pool.insert(0, sess(0));
        pool.insert(1, sess(0));
        let barrier = Arc::new(Barrier::new(2));
        let met = Arc::new(AtomicUsize::new(0));
        for t in 0..2u64 {
            let (b, m) = (Arc::clone(&barrier), Arc::clone(&met));
            pool.submit(t, move |_s: &mut Sess| {
                b.wait();
                m.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.flush();
        assert_eq!(met.load(Ordering::Relaxed), 2);
    }
}
