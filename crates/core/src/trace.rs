//! Runtime observability: a pluggable trace-event stream and its consumers.
//!
//! The aggregate counters of [`crate::Stats`] answer *how much* work the
//! runtime did; this module answers *which* node did it and *why*. Every
//! instrumented operation of the paper — `access`, `modify`, `call`
//! (Algorithms 3–5) and the Section 4.5 evaluation routine — emits a
//! [`TraceEvent`] to the sink installed with
//! [`Runtime::set_sink`](crate::Runtime::set_sink) (or
//! [`Runtime::with_trace`](crate::Runtime::with_trace)).
//!
//! # Zero-cost when disabled
//!
//! With no sink installed, every emission site costs exactly one untaken,
//! well-predicted branch (`Option::is_some` on the sink slot); no event
//! value is ever constructed. Compiling `alphonse` with
//! `--no-default-features` (dropping the `trace` feature) removes the sites
//! entirely. Experiment E2's instrumentation-overhead ratio is the
//! regression gate for this claim.
//!
//! # Sink contract
//!
//! Events are delivered synchronously, **while the runtime's internal state
//! is borrowed**. A sink must therefore never call back into the runtime
//! that is tracing it (no reads, writes, memo calls, or propagation) — doing
//! so trips the runtime's fail-stop re-entrancy check. Sinks use interior
//! mutability (events arrive through `&self`) and are `Send + Sync`:
//! sessions are movable across threads, so a sink installed on one thread
//! may observe events from wherever the runtime lives now.
//!
//! # Consumers
//!
//! | Consumer | Question it answers |
//! |---|---|
//! | [`Recorder`] | "what exactly happened, in order?" — bounded ring buffer with per-node timelines |
//! | [`ChromeTrace`] | "where does wall-clock time go?" — `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)-loadable spans |
//! | [`GraphSink`] + [`render_dot`] | "what does the dependency graph look like?" — live DOT export |
//! | [`Profiler`] | "which nodes are hot?" — per-node execution counts and self/cumulative time |
//! | [`JsonlSink`] | "keep everything for later" — streams every event as one JSON line (replayed by the `alphonse-trace` CLI) |
//! | [`provenance::Provenance`] | "why did this node recompute?" — live causal `why(node)` chains |
//!
//! # Causality
//!
//! Beyond the flat event stream, three fields make the trace *causal*:
//!
//! * [`TraceEvent::Dirtied`] carries `cause` — the predecessor whose change
//!   fanned dirt to this node (`None` when the node itself is the origin:
//!   a changed write, or a re-queue after supersession);
//! * [`TraceEvent::PropagateBegin`] / [`TraceEvent::PropagateEnd`] carry a
//!   monotone `wave` id — every event delivered between the pair belongs to
//!   that propagation wave;
//! * [`TraceEvent::BatchCommit`] carries the id of the wave that will drain
//!   the dirt it queued (the next wave to begin, or the current one when the
//!   batch commits mid-propagation).
//!
//! Chaining `Write → Dirtied(cause=…) → … → ExecuteEnd` answers the question
//! every incremental-computation user asks first: *why did this node
//! recompute, and was the work wasted?* See [`provenance`] for the live
//! query and the `alphonse-trace` CLI (`crates/trace-tools`) for offline
//! reports.
//!
//! # Example
//!
//! ```
//! use alphonse::trace::{Recorder, TraceEvent};
//! use alphonse::Runtime;
//! use std::sync::Arc;
//!
//! let rt = Runtime::new();
//! let v = rt.var_named("v", 1i64);
//! let double = rt.memo("double", move |rt, &(): &()| v.get(rt) * 2);
//! double.call(&rt, ());
//!
//! let rec = Arc::new(Recorder::new(128));
//! rt.set_sink(Some(rec.clone()));
//! v.set(&rt, 3);
//! rt.set_sink(None);
//!
//! assert!(matches!(
//!     rec.events().first(),
//!     Some(TraceEvent::Write { changed: true, .. })
//! ));
//! ```

use crate::runtime::NodeKind;
use alphonse_graph::{NodeId, UnionFind};
use alphonse_mem as memacct;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub mod provenance;
pub mod session;

pub use provenance::Provenance;
pub use session::{ActiveTrace, TraceConfig};

/// Locks a sink-internal mutex, ignoring poison: tracing is diagnostic and
/// keeps working even after a panic elsewhere left a guard poisoned.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Event taxonomy
// ---------------------------------------------------------------------------

/// Why a node was inserted into an inconsistent set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyReason {
    /// A write changed the stored value of the location (`modify`,
    /// Algorithm 4).
    WriteChanged,
    /// A predecessor's value changed and the marking rule of Section 4.5
    /// fanned the dirt out to this successor.
    Fanout,
    /// An eager node was superseded while executing and re-queued itself on
    /// completion.
    Requeue,
}

/// One observable step of the runtime.
///
/// Node-bearing events carry the dense [`NodeId`]; labels arrive separately
/// through [`TraceEvent::NodeCreated`] / [`TraceEvent::Labeled`], so a sink
/// can maintain its own id→label map and outlive the runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A dependency-graph node was allocated.
    NodeCreated {
        /// The new node.
        node: NodeId,
        /// Location or computation.
        kind: NodeKind,
        /// Diagnostic name, when known at allocation (memo name).
        label: Option<Arc<str>>,
    },
    /// A node was given (or re-given) a diagnostic label after allocation.
    Labeled {
        /// The labeled node.
        node: NodeId,
        /// The new label.
        label: Arc<str>,
    },
    /// A tracked read of a location (`access`, Algorithm 3).
    Read {
        /// The location read.
        node: NodeId,
    },
    /// A tracked write to a location (`modify`, Algorithm 4).
    Write {
        /// The location written.
        node: NodeId,
        /// Whether the stored value actually changed.
        changed: bool,
    },
    /// A node entered an inconsistent set.
    Dirtied {
        /// The dirtied node.
        node: NodeId,
        /// Why it was dirtied.
        reason: DirtyReason,
        /// The predecessor whose change fanned dirt to this node
        /// ([`DirtyReason::Fanout`]). `None` when the node itself is the
        /// origin of the dirt: a changed write
        /// ([`DirtyReason::WriteChanged`] — the written location *is* this
        /// node) or a re-queue after supersession.
        cause: Option<NodeId>,
    },
    /// The Section 4.5 evaluation routine started draining dirty nodes.
    PropagateBegin {
        /// Monotone id of this propagation wave (1 for the runtime's first
        /// run). Every event delivered before the matching
        /// [`TraceEvent::PropagateEnd`] belongs to this wave.
        wave: u64,
    },
    /// The evaluation routine finished (drained, or hit its step bound).
    PropagateEnd {
        /// The wave id of the matching [`TraceEvent::PropagateBegin`].
        wave: u64,
        /// Dirty nodes processed during this run.
        steps: u64,
    },
    /// The level-drain scheduler (feature `parallel`,
    /// [`Runtime::set_parallelism`](crate::Runtime::set_parallelism)) pulled
    /// the full batch of dirty nodes at one height and is about to process
    /// it. Every [`TraceEvent::ExecuteBegin`]/[`TraceEvent::ExecuteEnd`]
    /// pair until the matching [`TraceEvent::LevelEnd`] belongs to this
    /// level; executions within a level may overlap in time.
    LevelBegin {
        /// The propagation wave this level belongs to.
        wave: u64,
        /// Dependency height shared by every node in the batch.
        height: u32,
        /// Number of dirty nodes drained at this height (mutation-only
        /// steps included, not just eager re-executions).
        width: u64,
    },
    /// All results of the level opened by the matching
    /// [`TraceEvent::LevelBegin`] were committed and their dirt fanned out.
    LevelEnd {
        /// The propagation wave this level belongs to.
        wave: u64,
        /// Dependency height of the completed level.
        height: u32,
        /// Eager executors actually run for this level (`<=` the level's
        /// width; the rest were mutation-only or demand-marking steps).
        executed: u64,
    },
    /// An incremental procedure instance began (re-)executing its body.
    ExecuteBegin {
        /// The computation node.
        node: NodeId,
    },
    /// The execution begun by the matching [`TraceEvent::ExecuteBegin`]
    /// finished.
    ExecuteEnd {
        /// The computation node.
        node: NodeId,
        /// Whether the committed value differs from the previous one
        /// (always `false` for superseded re-entrant executions).
        changed: bool,
    },
    /// A call was answered from the cache without running the body.
    CacheHit {
        /// The consistent computation node.
        node: NodeId,
    },
    /// A cutoff comparison found the recomputed (or rewritten) value equal
    /// to the stored one: change propagation stops here.
    CutoffStop {
        /// The node whose value did not change.
        node: NodeId,
    },
    /// A dependence edge was recorded (`CreateEdge`, Algorithm 3).
    EdgeAdded {
        /// The node depended upon (predecessor).
        from: NodeId,
        /// The depending computation (successor, top of the call stack).
        to: NodeId,
    },
    /// `RemovePredEdges` dropped a node's incoming edges before
    /// re-execution (Algorithm 5).
    EdgesRemoved {
        /// The computation whose dependencies were discarded.
        node: NodeId,
        /// Number of edges dropped.
        count: u64,
    },
    /// A write transaction committed ([`Runtime::batch`](crate::Runtime::batch)).
    BatchCommit {
        /// Writes submitted through the transaction (before coalescing).
        writes: u64,
        /// Writes absorbed by last-write-wins coalescing.
        coalesced: u64,
        /// The propagation wave that will drain the dirt this commit
        /// queued: the next wave to begin — or the current wave, when the
        /// batch commits from inside a propagation run.
        wave: u64,
    },
}

impl TraceEvent {
    /// The node this event is about, if any.
    ///
    /// [`TraceEvent::EdgeAdded`] is attributed to the depending successor
    /// `to` — the edge is a fact about the executing computation's
    /// dependency set, not about the storage it read. (The predecessor
    /// endpoint still appears in [`Recorder::timeline`] views of both
    /// nodes.)
    pub fn node(&self) -> Option<NodeId> {
        match self {
            TraceEvent::NodeCreated { node, .. }
            | TraceEvent::Labeled { node, .. }
            | TraceEvent::Read { node }
            | TraceEvent::Write { node, .. }
            | TraceEvent::Dirtied { node, .. }
            | TraceEvent::ExecuteBegin { node }
            | TraceEvent::ExecuteEnd { node, .. }
            | TraceEvent::CacheHit { node }
            | TraceEvent::CutoffStop { node }
            | TraceEvent::EdgesRemoved { node, .. } => Some(*node),
            TraceEvent::EdgeAdded { to, .. } => Some(*to),
            TraceEvent::PropagateBegin { .. }
            | TraceEvent::PropagateEnd { .. }
            | TraceEvent::LevelBegin { .. }
            | TraceEvent::LevelEnd { .. }
            | TraceEvent::BatchCommit { .. } => None,
        }
    }
}

/// Receives the runtime's trace events.
///
/// Implementations must obey the sink contract described in the
/// [module docs](self): events arrive synchronously while the runtime is
/// internally locked, so the sink must never re-enter runtime operations.
/// Sinks are `Send + Sync` so a traced session stays movable across threads.
pub trait TraceSink: Send + Sync {
    /// Called once per observable runtime step, in program order.
    fn event(&self, ev: &TraceEvent);
}

// ---------------------------------------------------------------------------
// Default sink (process-wide hook for harnesses)
// ---------------------------------------------------------------------------

thread_local! {
    static DEFAULT_SINK: RefCell<Option<Arc<dyn TraceSink>>> = const { RefCell::new(None) };
}

/// Installs a sink that every [`Runtime`] *built after this call* (on this
/// thread) starts with, and returns the previous default. Pass `None` to
/// clear.
///
/// This is the hook benchmark harnesses use to trace workloads that
/// construct their runtimes internally; prefer
/// [`Runtime::set_sink`](crate::Runtime::set_sink) when you hold the
/// runtime.
pub fn set_default_sink(sink: Option<Arc<dyn TraceSink>>) -> Option<Arc<dyn TraceSink>> {
    DEFAULT_SINK.with(|s| std::mem::replace(&mut *s.borrow_mut(), sink))
}

#[cfg_attr(not(feature = "trace"), allow(dead_code))]
pub(crate) fn default_sink() -> Option<Arc<dyn TraceSink>> {
    DEFAULT_SINK.with(|s| s.borrow().clone())
}

// ---------------------------------------------------------------------------
// Recorder: bounded in-memory ring buffer
// ---------------------------------------------------------------------------

/// A bounded in-memory event recorder with queryable per-node timelines.
///
/// Keeps the most recent `capacity` events (older ones are dropped and
/// counted in [`Recorder::dropped`]); each record carries a microsecond
/// timestamp relative to the recorder's creation.
pub struct Recorder {
    start: Instant,
    capacity: usize,
    buf: Mutex<VecDeque<(u64, TraceEvent)>>,
    dropped: AtomicU64,
}

impl Recorder {
    /// Creates a recorder keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Recorder {
        assert!(capacity > 0, "recorder capacity must be positive");
        let _mem = memacct::scope(memacct::Tag::Trace);
        Recorder {
            start: Instant::now(),
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        lock(&self.buf).len()
    }

    /// Returns `true` if no events are held.
    pub fn is_empty(&self) -> bool {
        lock(&self.buf).is_empty()
    }

    /// Events evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all held events (the drop counter is kept).
    pub fn clear(&self) {
        lock(&self.buf).clear();
    }

    /// All held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.buf).iter().map(|(_, e)| e.clone()).collect()
    }

    /// All held events with their timestamps (µs since recorder creation).
    pub fn records(&self) -> Vec<(u64, TraceEvent)> {
        lock(&self.buf).iter().cloned().collect()
    }

    /// The timeline of one node: every held event about `n`, oldest first,
    /// with timestamps (µs since recorder creation). Edge events appear in
    /// the timeline of **both** endpoints ([`TraceEvent::node`] attributes
    /// them to the successor; the predecessor view is added here).
    pub fn timeline(&self, n: NodeId) -> Vec<(u64, TraceEvent)> {
        lock(&self.buf)
            .iter()
            .filter(|(_, e)| {
                e.node() == Some(n) || matches!(e, TraceEvent::EdgeAdded { from, .. } if *from == n)
            })
            .cloned()
            .collect()
    }

    /// Renders the held events as a human-readable report, one line per
    /// event with its timestamp and resolved labels. When the ring bound
    /// evicted events, the report is prefixed with a
    /// `N events dropped (ring capacity K)` warning so a truncated recording
    /// is never mistaken for a complete one.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped.load(Ordering::Relaxed) > 0 {
            let _ = writeln!(
                out,
                "warning: {} events dropped (ring capacity {}) — the recording is truncated",
                self.dropped.load(Ordering::Relaxed),
                self.capacity
            );
        }
        let labels = Labels::default();
        for (ts, ev) in lock(&self.buf).iter() {
            labels.observe(ev);
            let _ = writeln!(out, "{ts:>10} us  {}", describe_event(ev, &labels));
        }
        out
    }

    /// Exports the held events as a JSONL trace document (the same format
    /// [`JsonlSink`] streams), prefixed with a meta line recording how many
    /// events the ring bound evicted — consumers such as `alphonse-trace`
    /// use it to refuse causal queries over truncated recordings.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"{{"meta":{{"format":"{JSONL_FORMAT}","version":{JSONL_VERSION},"dropped":{},"capacity":{}}}}}"#,
            self.dropped.load(Ordering::Relaxed),
            self.capacity
        );
        let labels = Labels::default();
        let mut wave = None;
        for (ts, ev) in lock(&self.buf).iter() {
            labels.observe(ev);
            out.push_str(&jsonl_line(*ts, &mut wave, ev, &labels));
            out.push('\n');
        }
        out
    }
}

/// One human-readable line for `ev`, with labels resolved through `labels`.
fn describe_event(ev: &TraceEvent, labels: &Labels) -> String {
    match ev {
        TraceEvent::NodeCreated { node, kind, label } => format!(
            "create {kind:?} {}{}",
            node,
            label
                .as_deref()
                .map(|l| format!(" \"{l}\""))
                .unwrap_or_default()
        ),
        TraceEvent::Labeled { node, label } => format!("label {node} \"{label}\""),
        TraceEvent::Read { node } => format!("read {}", labels.of(*node)),
        TraceEvent::Write { node, changed } => {
            format!("write {} changed={changed}", labels.of(*node))
        }
        TraceEvent::Dirtied {
            node,
            reason,
            cause,
        } => match cause {
            Some(c) => format!(
                "dirty {} [{reason:?} <- {}]",
                labels.of(*node),
                labels.of(*c)
            ),
            None => format!("dirty {} [{reason:?}]", labels.of(*node)),
        },
        TraceEvent::PropagateBegin { wave } => format!("propagate begin (wave {wave})"),
        TraceEvent::PropagateEnd { wave, steps } => {
            format!("propagate end (wave {wave}, {steps} steps)")
        }
        TraceEvent::LevelBegin {
            wave,
            height,
            width,
        } => format!("level begin (wave {wave}, height {height}, width {width})"),
        TraceEvent::LevelEnd {
            wave,
            height,
            executed,
        } => format!("level end (wave {wave}, height {height}, {executed} executed)"),
        TraceEvent::ExecuteBegin { node } => format!("exec begin {}", labels.of(*node)),
        TraceEvent::ExecuteEnd { node, changed } => {
            format!("exec end {} changed={changed}", labels.of(*node))
        }
        TraceEvent::CacheHit { node } => format!("cache hit {}", labels.of(*node)),
        TraceEvent::CutoffStop { node } => format!("cutoff {}", labels.of(*node)),
        TraceEvent::EdgeAdded { from, to } => {
            format!("edge {} -> {}", labels.of(*from), labels.of(*to))
        }
        TraceEvent::EdgesRemoved { node, count } => {
            format!("edges removed {} ({count})", labels.of(*node))
        }
        TraceEvent::BatchCommit {
            writes,
            coalesced,
            wave,
        } => format!("batch commit ({writes} writes, {coalesced} coalesced, -> wave {wave})"),
    }
}

impl TraceSink for Recorder {
    fn event(&self, ev: &TraceEvent) {
        let _mem = memacct::scope(memacct::Tag::Trace);
        let ts = self.start.elapsed().as_micros() as u64;
        let mut buf = lock(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back((ts, ev.clone()));
    }
}

// ---------------------------------------------------------------------------
// JSONL trace documents (persistent machine-readable traces)
// ---------------------------------------------------------------------------

/// Format tag written in the meta line of every JSONL trace document.
pub const JSONL_FORMAT: &str = "alphonse-trace";

/// Version of the JSONL line layout.
pub const JSONL_VERSION: u32 = 1;

/// The variant name a JSONL record carries in its `ev` field.
fn variant_name(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::NodeCreated { .. } => "NodeCreated",
        TraceEvent::Labeled { .. } => "Labeled",
        TraceEvent::Read { .. } => "Read",
        TraceEvent::Write { .. } => "Write",
        TraceEvent::Dirtied { .. } => "Dirtied",
        TraceEvent::PropagateBegin { .. } => "PropagateBegin",
        TraceEvent::PropagateEnd { .. } => "PropagateEnd",
        TraceEvent::LevelBegin { .. } => "LevelBegin",
        TraceEvent::LevelEnd { .. } => "LevelEnd",
        TraceEvent::ExecuteBegin { .. } => "ExecuteBegin",
        TraceEvent::ExecuteEnd { .. } => "ExecuteEnd",
        TraceEvent::CacheHit { .. } => "CacheHit",
        TraceEvent::CutoffStop { .. } => "CutoffStop",
        TraceEvent::EdgeAdded { .. } => "EdgeAdded",
        TraceEvent::EdgesRemoved { .. } => "EdgesRemoved",
        TraceEvent::BatchCommit { .. } => "BatchCommit",
    }
}

/// Encodes one event as a JSONL record (no trailing newline).
///
/// `wave` is the stamping slot tracking the currently open propagation wave:
/// [`TraceEvent::PropagateBegin`] opens it, [`TraceEvent::PropagateEnd`]
/// closes it, and every event in between is stamped `"wave":N`. The
/// propagation brackets and [`TraceEvent::BatchCommit`] carry their own wave
/// fields instead. Node-bearing events carry the node's resolved `"label"`
/// when one is known, so a trace file stays self-contained; node ids
/// serialize as their dense indices.
fn jsonl_line(ts: u64, wave: &mut Option<u64>, ev: &TraceEvent, labels: &Labels) -> String {
    let stamped = match ev {
        TraceEvent::PropagateBegin { wave: w } => {
            *wave = Some(*w);
            Some(*w)
        }
        TraceEvent::PropagateEnd { wave: w, .. } => {
            *wave = None;
            Some(*w)
        }
        TraceEvent::BatchCommit { wave: w, .. } => Some(*w),
        _ => *wave,
    };
    let mut out = String::with_capacity(64);
    let _ = write!(out, r#"{{"ts":{ts}"#);
    if let Some(w) = stamped {
        let _ = write!(out, r#","wave":{w}"#);
    }
    let _ = write!(out, r#","ev":"{}""#, variant_name(ev));
    match ev {
        TraceEvent::NodeCreated { node, kind, .. } => {
            let _ = write!(out, r#","node":{},"kind":"{kind:?}""#, node.index());
        }
        TraceEvent::Labeled { node, .. } => {
            let _ = write!(out, r#","node":{}"#, node.index());
        }
        TraceEvent::Read { node }
        | TraceEvent::ExecuteBegin { node }
        | TraceEvent::CacheHit { node }
        | TraceEvent::CutoffStop { node } => {
            let _ = write!(out, r#","node":{}"#, node.index());
        }
        TraceEvent::Write { node, changed } | TraceEvent::ExecuteEnd { node, changed } => {
            let _ = write!(out, r#","node":{},"changed":{changed}"#, node.index());
        }
        TraceEvent::Dirtied {
            node,
            reason,
            cause,
        } => {
            let _ = write!(out, r#","node":{},"reason":"{reason:?}""#, node.index());
            if let Some(c) = cause {
                let _ = write!(out, r#","cause":{}"#, c.index());
            }
        }
        TraceEvent::PropagateBegin { .. } => {}
        TraceEvent::PropagateEnd { steps, .. } => {
            let _ = write!(out, r#","steps":{steps}"#);
        }
        TraceEvent::LevelBegin { height, width, .. } => {
            let _ = write!(out, r#","height":{height},"width":{width}"#);
        }
        TraceEvent::LevelEnd {
            height, executed, ..
        } => {
            let _ = write!(out, r#","height":{height},"executed":{executed}"#);
        }
        TraceEvent::EdgeAdded { from, to } => {
            let _ = write!(out, r#","from":{},"to":{}"#, from.index(), to.index());
        }
        TraceEvent::EdgesRemoved { node, count } => {
            let _ = write!(out, r#","node":{},"count":{count}"#, node.index());
        }
        TraceEvent::BatchCommit {
            writes, coalesced, ..
        } => {
            let _ = write!(out, r#","writes":{writes},"coalesced":{coalesced}"#);
        }
    }
    if let Some(n) = ev.node() {
        if let Some(l) = labels.raw(n) {
            let _ = write!(out, r#","label":"{}""#, json_escape(&l));
        }
    }
    out.push('}');
    out
}

/// Streams every event as one JSON line to a writer (the machine-readable
/// trace the `alphonse-trace` CLI replays).
///
/// The document begins with a meta line
/// (`{"meta":{"format":…,"version":…,"dropped":0}}`); each subsequent line
/// is one event with a microsecond timestamp, the propagation-wave stamp,
/// and resolved node labels (see [`Recorder::to_jsonl`] for the same format
/// produced from a bounded in-memory recording — there `dropped` can be
/// non-zero). Write errors after construction are ignored: tracing must
/// never take down the traced program.
pub struct JsonlSink {
    start: Instant,
    labels: Labels,
    state: Mutex<JsonlState>,
}

/// Writer state behind one lock, so the wave stamp and the output stream
/// stay consistent with each other under concurrent events.
struct JsonlState {
    wave: Option<u64>,
    out: Box<dyn IoWrite + Send>,
}

impl JsonlSink {
    /// Wraps a writer and emits the meta line.
    pub fn new(out: impl IoWrite + Send + 'static) -> std::io::Result<JsonlSink> {
        let mut out: Box<dyn IoWrite + Send> = Box::new(out);
        writeln!(
            out,
            r#"{{"meta":{{"format":"{JSONL_FORMAT}","version":{JSONL_VERSION},"dropped":0}}}}"#
        )?;
        Ok(JsonlSink {
            start: Instant::now(),
            labels: Labels::default(),
            state: Mutex::new(JsonlState { wave: None, out }),
        })
    }

    /// Creates (truncating) `path` and streams the trace to it, buffered.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        lock(&self.state).out.flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self
            .state
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .out
            .flush();
    }
}

impl TraceSink for JsonlSink {
    fn event(&self, ev: &TraceEvent) {
        let _mem = memacct::scope(memacct::Tag::Trace);
        self.labels.observe(ev);
        let ts = self.start.elapsed().as_micros() as u64;
        let state = &mut *lock(&self.state);
        let line = jsonl_line(ts, &mut state.wave, ev, &self.labels);
        let _ = state.out.write_all(line.as_bytes());
        let _ = state.out.write_all(b"\n");
    }
}

// ---------------------------------------------------------------------------
// Tee: fan one event stream out to several sinks
// ---------------------------------------------------------------------------

/// Delivers every event to each of its sinks, in order.
///
/// [`session::ActiveTrace`] uses it to run the live [`Provenance`] index
/// alongside whichever consumer the user asked for.
pub struct Tee {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl Tee {
    /// Builds a tee over `sinks` (delivery order = vector order).
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Tee {
        Tee { sinks }
    }
}

impl TraceSink for Tee {
    fn event(&self, ev: &TraceEvent) {
        for s in &self.sinks {
            s.event(ev);
        }
    }
}

// ---------------------------------------------------------------------------
// Label map shared by the self-contained sinks
// ---------------------------------------------------------------------------

/// Dense id→label map maintained from `NodeCreated` / `Labeled` events.
#[derive(Default)]
struct Labels {
    names: Mutex<Vec<Option<Arc<str>>>>,
}

impl Labels {
    fn observe(&self, ev: &TraceEvent) {
        match ev {
            TraceEvent::NodeCreated { node, label, .. } => {
                let mut names = lock(&self.names);
                let i = node.index();
                if names.len() <= i {
                    names.resize(i + 1, None);
                }
                names[i] = label.clone();
            }
            TraceEvent::Labeled { node, label } => {
                let mut names = lock(&self.names);
                let i = node.index();
                if names.len() <= i {
                    names.resize(i + 1, None);
                }
                names[i] = Some(Arc::clone(label));
            }
            _ => {}
        }
    }

    fn clear(&self) {
        lock(&self.names).clear();
    }

    fn of(&self, n: NodeId) -> String {
        match lock(&self.names).get(n.index()) {
            Some(Some(name)) => format!("{name} ({n})"),
            _ => n.to_string(),
        }
    }

    fn raw(&self, n: NodeId) -> Option<String> {
        lock(&self.names)
            .get(n.index())
            .and_then(|o| o.as_deref().map(str::to_owned))
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------------

/// Exports the event stream in the Chrome trace-event JSON format, loadable
/// in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Executions and propagation runs become duration (`B`/`E`) spans; writes,
/// dirtyings, cache hits, cutoffs and batch commits become instant (`i`)
/// events. Per-node names come from the label events in the stream, so the
/// exporter stays valid after the traced runtime is dropped.
///
/// Very hot per-read events ([`TraceEvent::Read`], [`TraceEvent::EdgeAdded`],
/// [`TraceEvent::EdgesRemoved`]) are tallied into span arguments instead of
/// emitted individually, keeping traces loadable for large runs.
pub struct ChromeTrace {
    start: Instant,
    labels: Labels,
    records: Mutex<Vec<String>>,
    /// Reads and new edges observed since the current innermost span began
    /// (attached to that span's `args` at its end).
    reads_in_span: AtomicU64,
    edges_in_span: AtomicU64,
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ChromeTrace {
    /// Creates an empty exporter; timestamps are relative to this call.
    pub fn new() -> ChromeTrace {
        ChromeTrace {
            start: Instant::now(),
            labels: Labels::default(),
            records: Mutex::new(Vec::new()),
            reads_in_span: AtomicU64::new(0),
            edges_in_span: AtomicU64::new(0),
        }
    }

    fn ts(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    fn push(&self, record: String) {
        let _mem = memacct::scope(memacct::Tag::Trace);
        lock(&self.records).push(record);
    }

    fn span_begin(&self, name: &str, cat: &str) {
        let rec = format!(
            r#"{{"name":"{}","cat":"{cat}","ph":"B","ts":{:.3},"pid":1,"tid":1}}"#,
            json_escape(name),
            self.ts()
        );
        self.push(rec);
    }

    fn span_end(&self, args: String) {
        let rec = format!(
            r#"{{"ph":"E","ts":{:.3},"pid":1,"tid":1,"args":{{{args}}}}}"#,
            self.ts()
        );
        self.push(rec);
    }

    fn instant(&self, name: &str, cat: &str, args: String) {
        let rec = format!(
            r#"{{"name":"{}","cat":"{cat}","ph":"i","s":"t","ts":{:.3},"pid":1,"tid":1,"args":{{{args}}}}}"#,
            json_escape(name),
            self.ts()
        );
        self.push(rec);
    }

    /// Number of JSON records accumulated so far.
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// Returns `true` if no records were accumulated.
    pub fn is_empty(&self) -> bool {
        lock(&self.records).is_empty()
    }

    /// Renders the accumulated records as a complete Chrome trace JSON
    /// document (a JSON array of event objects).
    pub fn to_json(&self) -> String {
        let records = lock(&self.records);
        let mut out = String::with_capacity(records.iter().map(|r| r.len() + 2).sum::<usize>() + 2);
        out.push_str("[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str(r);
            if i + 1 < records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

impl TraceSink for ChromeTrace {
    fn event(&self, ev: &TraceEvent) {
        self.labels.observe(ev);
        match ev {
            TraceEvent::NodeCreated { .. } | TraceEvent::Labeled { .. } => {}
            TraceEvent::Read { .. } => {
                self.reads_in_span.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::EdgeAdded { .. } => {
                self.edges_in_span.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::EdgesRemoved { .. } => {}
            TraceEvent::Write { node, changed } => self.instant(
                &format!("write {}", self.labels.of(*node)),
                "write",
                format!(r#""changed":{changed}"#),
            ),
            TraceEvent::Dirtied {
                node,
                reason,
                cause,
            } => self.instant(
                &format!("dirty {}", self.labels.of(*node)),
                "dirty",
                match cause {
                    Some(c) => format!(r#""reason":"{reason:?}","cause":"{c}""#),
                    None => format!(r#""reason":"{reason:?}""#),
                },
            ),
            TraceEvent::PropagateBegin { .. } => {
                self.span_begin("propagate", "propagate");
            }
            TraceEvent::PropagateEnd { wave, steps } => {
                self.span_end(format!(r#""wave":{wave},"steps":{steps}"#));
            }
            // Level brackets surround executions that may overlap in time,
            // which the single-track B/E span pairing cannot represent;
            // levels export as instants so exec spans keep pairing up.
            TraceEvent::LevelBegin {
                wave,
                height,
                width,
            } => self.instant(
                &format!("level h{height}"),
                "level",
                format!(r#""wave":{wave},"height":{height},"width":{width}"#),
            ),
            TraceEvent::LevelEnd { .. } => {}
            TraceEvent::ExecuteBegin { node } => {
                self.reads_in_span.store(0, Ordering::Relaxed);
                self.edges_in_span.store(0, Ordering::Relaxed);
                self.span_begin(&format!("exec {}", self.labels.of(*node)), "execute");
            }
            TraceEvent::ExecuteEnd { changed, .. } => {
                self.span_end(format!(
                    r#""changed":{changed},"reads":{},"edges":{}"#,
                    self.reads_in_span.load(Ordering::Relaxed),
                    self.edges_in_span.load(Ordering::Relaxed)
                ));
            }
            TraceEvent::CacheHit { node } => self.instant(
                &format!("hit {}", self.labels.of(*node)),
                "cache",
                String::new(),
            ),
            TraceEvent::CutoffStop { node } => self.instant(
                &format!("cutoff {}", self.labels.of(*node)),
                "cutoff",
                String::new(),
            ),
            TraceEvent::BatchCommit {
                writes,
                coalesced,
                wave,
            } => self.instant(
                "batch commit",
                "batch",
                format!(r#""writes":{writes},"coalesced":{coalesced},"wave":{wave}"#),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Dependency-graph snapshots and the DOT exporter
// ---------------------------------------------------------------------------

/// One node of a [`GraphSnapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotNode {
    /// The dependency-graph node.
    pub id: NodeId,
    /// Location or computation.
    pub kind: NodeKind,
    /// Diagnostic label, when one was assigned.
    pub label: Option<String>,
    /// For computations: the consistency flag (`true` for locations).
    pub consistent: bool,
    /// Whether the node currently sits in an inconsistent set.
    pub queued: bool,
    /// Canonical partition root (Section 6.3), when partitioning is on.
    pub partition: Option<NodeId>,
    /// Ordinal of the node's most recent execution start (0 = never
    /// executed). The node with the highest ordinal executed last.
    pub last_exec: u64,
    /// Total executions observed (only populated by event-driven mirrors
    /// such as [`GraphSink`]; a live [`Runtime::graph_snapshot`] reports 0).
    pub execs: u64,
}

/// A point-in-time copy of the dependency graph, renderable with
/// [`render_dot`]. Obtained from a live runtime
/// ([`Runtime::graph_snapshot`](crate::Runtime::graph_snapshot)) or from an
/// event-stream mirror ([`GraphSink::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct GraphSnapshot {
    /// All nodes, in id order.
    pub nodes: Vec<SnapshotNode>,
    /// All dependence edges, `(predecessor, successor)`.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// Renders a [`GraphSnapshot`] as a Graphviz DOT document.
///
/// Visual encoding:
/// * **kind** — locations are grey boxes, computations are ellipses;
/// * **dirty state** — consistent computations are green, stale ones
///   salmon; nodes queued in an inconsistent set get a bold red border;
/// * **last execution** — the most recently executed node is drawn with a
///   double outline, and every executed node shows its execution ordinal
///   (`#k`);
/// * **partitions** — with partitioning on, each component becomes a
///   `subgraph cluster`.
pub fn render_dot(snap: &GraphSnapshot) -> String {
    let mut out = String::new();
    out.push_str("digraph alphonse {\n");
    out.push_str("  rankdir=BT;\n");
    out.push_str("  node [fontname=\"Helvetica\" fontsize=10];\n");
    let latest = snap.nodes.iter().map(|n| n.last_exec).max().unwrap_or(0);

    let node_line = |n: &SnapshotNode| -> String {
        let mut label = match &n.label {
            Some(l) => format!("{}\\n{}", l.replace('"', "'"), n.id),
            None => n.id.to_string(),
        };
        if n.last_exec > 0 {
            let _ = write!(label, " #{}", n.last_exec);
        }
        if n.execs > 0 {
            let _ = write!(label, "\\nexecs={}", n.execs);
        }
        let (shape, fill) = match n.kind {
            NodeKind::Location => ("box", "lightsteelblue"),
            NodeKind::Computation if n.consistent => ("ellipse", "palegreen"),
            NodeKind::Computation => ("ellipse", "salmon"),
        };
        let mut attrs = format!("label=\"{label}\" shape={shape} style=filled fillcolor={fill}");
        if n.queued {
            attrs.push_str(" color=red penwidth=2");
        }
        if n.last_exec > 0 && n.last_exec == latest {
            attrs.push_str(" peripheries=2");
        }
        format!("  {} [{attrs}];\n", n.id)
    };

    // Group by partition when any node carries one.
    if snap.nodes.iter().any(|n| n.partition.is_some()) {
        let mut roots: Vec<NodeId> = snap.nodes.iter().filter_map(|n| n.partition).collect();
        roots.sort();
        roots.dedup();
        for root in roots {
            let _ = writeln!(out, "  subgraph cluster_{} {{", root.index());
            let _ = writeln!(out, "    label=\"partition {root}\";");
            for n in snap.nodes.iter().filter(|n| n.partition == Some(root)) {
                out.push_str("  ");
                out.push_str(&node_line(n));
            }
            out.push_str("  }\n");
        }
        for n in snap.nodes.iter().filter(|n| n.partition.is_none()) {
            out.push_str(&node_line(n));
        }
    } else {
        for n in &snap.nodes {
            out.push_str(&node_line(n));
        }
    }

    let mut edges = snap.edges.clone();
    edges.sort();
    for (u, v) in edges {
        let _ = writeln!(out, "  {u} -> {v};");
    }
    out.push_str("}\n");
    out
}

/// An event-driven mirror of the dependency graph.
///
/// Maintains nodes, labels, edges, dirty flags, execution ordinals and a
/// union-find partition mirror purely from the trace stream, so a DOT
/// rendering stays available after the traced runtime is gone. Node ids are
/// per-runtime: when several runtimes share one sink (e.g. via
/// [`set_default_sink`]), the mirror resets each time a fresh runtime's
/// first node arrives, so it reflects the most recently started runtime.
/// For a live runtime prefer
/// [`Runtime::graph_snapshot`](crate::Runtime::graph_snapshot), which reads
/// the authoritative state.
#[derive(Default)]
pub struct GraphSink {
    labels: Labels,
    kinds: Mutex<Vec<NodeKind>>,
    /// Incoming-edge lists, indexed by successor — mirrors the direction
    /// `RemovePredEdges` clears in bulk.
    preds: Mutex<Vec<Vec<NodeId>>>,
    dirty: Mutex<Vec<bool>>,
    execs: Mutex<Vec<(u64, u64)>>, // (count, last ordinal)
    uf: Mutex<UnionFind>,
    exec_clock: AtomicU64,
}

impl GraphSink {
    /// Creates an empty mirror.
    pub fn new() -> GraphSink {
        GraphSink::default()
    }

    fn ensure(&self, n: NodeId) {
        let i = n.index();
        let mut kinds = lock(&self.kinds);
        if kinds.len() <= i {
            kinds.resize(i + 1, NodeKind::Location);
            lock(&self.preds).resize(i + 1, Vec::new());
            lock(&self.dirty).resize(i + 1, false);
            lock(&self.execs).resize(i + 1, (0, 0));
        }
        lock(&self.uf).ensure(n);
    }

    /// Number of nodes mirrored so far.
    pub fn node_count(&self) -> usize {
        lock(&self.kinds).len()
    }

    /// A renderable snapshot of the mirrored graph.
    pub fn snapshot(&self) -> GraphSnapshot {
        let kinds = lock(&self.kinds);
        let preds = lock(&self.preds);
        let dirty = lock(&self.dirty);
        let execs = lock(&self.execs);
        let mut uf = lock(&self.uf);
        let partitioned = kinds.len() > 1;
        let mut nodes = Vec::with_capacity(kinds.len());
        let mut edges = Vec::new();
        for i in 0..kinds.len() {
            let id = NodeId::from_index(i);
            let (count, last) = execs[i];
            nodes.push(SnapshotNode {
                id,
                kind: kinds[i],
                label: self.labels.raw(id),
                consistent: !dirty[i],
                queued: dirty[i],
                partition: partitioned.then(|| uf.find(id)),
                last_exec: last,
                execs: count,
            });
            for &p in &preds[i] {
                edges.push((p, id));
            }
        }
        GraphSnapshot { nodes, edges }
    }

    /// Convenience: render the current snapshot as DOT.
    pub fn to_dot(&self) -> String {
        render_dot(&self.snapshot())
    }
}

impl TraceSink for GraphSink {
    fn event(&self, ev: &TraceEvent) {
        if let TraceEvent::NodeCreated { node, .. } = ev {
            if node.index() == 0 && self.node_count() > 0 {
                // A fresh runtime started mirroring into this sink; its ids
                // restart from zero, so drop the previous runtime's graph.
                self.labels.clear();
                lock(&self.kinds).clear();
                lock(&self.preds).clear();
                lock(&self.dirty).clear();
                lock(&self.execs).clear();
                *lock(&self.uf) = UnionFind::new();
                self.exec_clock.store(0, Ordering::Relaxed);
            }
        }
        self.labels.observe(ev);
        match ev {
            TraceEvent::NodeCreated { node, kind, .. } => {
                self.ensure(*node);
                lock(&self.kinds)[node.index()] = *kind;
            }
            TraceEvent::EdgeAdded { from, to } => {
                self.ensure(*from);
                self.ensure(*to);
                lock(&self.preds)[to.index()].push(*from);
                lock(&self.uf).union(*from, *to);
            }
            TraceEvent::EdgesRemoved { node, .. } => {
                self.ensure(*node);
                lock(&self.preds)[node.index()].clear();
            }
            TraceEvent::Dirtied { node, .. } => {
                self.ensure(*node);
                lock(&self.dirty)[node.index()] = true;
            }
            TraceEvent::ExecuteBegin { node } => {
                self.ensure(*node);
                let clock = self.exec_clock.fetch_add(1, Ordering::Relaxed) + 1;
                let mut execs = lock(&self.execs);
                let (count, _) = execs[node.index()];
                execs[node.index()] = (count + 1, clock);
            }
            TraceEvent::ExecuteEnd { node, .. } => {
                self.ensure(*node);
                lock(&self.dirty)[node.index()] = false;
            }
            TraceEvent::Write { node, .. } => {
                // A location settles once written; dirt on it drains at the
                // next propagation, which pops it immediately.
                self.ensure(*node);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Per-node profiler
// ---------------------------------------------------------------------------

#[derive(Default, Clone, Copy)]
struct NodeProfile {
    execs: u64,
    cache_hits: u64,
    dirtied: u64,
    cumulative: Duration,
    self_time: Duration,
}

struct ProfFrame {
    node: NodeId,
    start: Instant,
    child_time: Duration,
}

/// Aggregates per-node execution statistics from the event stream:
/// execution count, cumulative and self wall-clock time, cache hits and
/// dirtyings. [`Profiler::report`] prints the top-K hot nodes as a table.
#[derive(Default)]
pub struct Profiler {
    labels: Labels,
    per_node: Mutex<Vec<NodeProfile>>,
    stack: Mutex<Vec<ProfFrame>>,
    propagations: AtomicU64,
    propagate_time: Mutex<Duration>,
    propagate_start: Mutex<Vec<Instant>>,
    /// `ExecuteEnd` events whose `ExecuteBegin` was never observed (the
    /// profiler was attached mid-execution): those executions are missing
    /// from every aggregate, so reports warn about them.
    dropped: AtomicU64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    fn slot(&self, n: NodeId) -> MutexGuard<'_, Vec<NodeProfile>> {
        let mut per = lock(&self.per_node);
        if per.len() <= n.index() {
            per.resize(n.index() + 1, NodeProfile::default());
        }
        per
    }

    /// Propagation runs observed.
    pub fn propagations(&self) -> u64 {
        self.propagations.load(Ordering::Relaxed)
    }

    /// Total wall-clock time spent inside propagation runs.
    pub fn propagate_time(&self) -> Duration {
        *lock(&self.propagate_time)
    }

    /// Total executions observed across all nodes.
    pub fn total_execs(&self) -> u64 {
        lock(&self.per_node).iter().map(|p| p.execs).sum()
    }

    /// Executions whose begin was never observed (attachment mid-execution)
    /// and which are therefore missing from the aggregates.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The `top_k` hottest nodes by self time, as an aligned table.
    pub fn report(&self, top_k: usize) -> String {
        let per = lock(&self.per_node);
        let mut rows: Vec<(NodeId, NodeProfile)> = per
            .iter()
            .enumerate()
            .filter(|(_, p)| p.execs > 0 || p.cache_hits > 0 || p.dirtied > 0)
            .map(|(i, p)| (NodeId::from_index(i), *p))
            .collect();
        rows.sort_by(|a, b| {
            b.1.self_time
                .cmp(&a.1.self_time)
                .then(b.1.execs.cmp(&a.1.execs))
                .then(a.0.cmp(&b.0))
        });
        rows.truncate(top_k);

        let header = ["node", "execs", "hits", "dirtied", "self_us", "cum_us"];
        let mut cells: Vec<[String; 6]> = Vec::with_capacity(rows.len());
        for (id, p) in &rows {
            cells.push([
                self.labels.of(*id),
                p.execs.to_string(),
                p.cache_hits.to_string(),
                p.dirtied.to_string(),
                format!("{:.1}", p.self_time.as_secs_f64() * 1e6),
                format!("{:.1}", p.cumulative.as_secs_f64() * 1e6),
            ]);
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        if self.dropped.load(Ordering::Relaxed) > 0 {
            let _ = writeln!(
                out,
                "warning: {} events dropped (profiler attached mid-execution) — aggregates undercount",
                self.dropped.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "hot nodes (top {} by self time; {} propagations, {:.1} us propagating)",
            rows.len(),
            self.propagations.load(Ordering::Relaxed),
            lock(&self.propagate_time).as_secs_f64() * 1e6,
        );
        let fmt_row = |cols: &[String]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cols.iter().zip(&widths).enumerate() {
                if i == 0 {
                    let _ = write!(line, "{c:<w$}");
                } else {
                    let _ = write!(line, "  {c:>w$}");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(
            &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        ));
        for row in &cells {
            out.push_str(&fmt_row(row.as_slice()));
        }
        out
    }
}

impl TraceSink for Profiler {
    fn event(&self, ev: &TraceEvent) {
        self.labels.observe(ev);
        match ev {
            TraceEvent::ExecuteBegin { node } => {
                lock(&self.stack).push(ProfFrame {
                    node: *node,
                    start: Instant::now(),
                    child_time: Duration::ZERO,
                });
            }
            TraceEvent::ExecuteEnd { node, .. } => {
                let Some(frame) = lock(&self.stack).pop() else {
                    // Sink attached mid-execution: this execution is lost.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                debug_assert_eq!(frame.node, *node, "profiler stack imbalance");
                let elapsed = frame.start.elapsed();
                {
                    let mut per = self.slot(*node);
                    let p = &mut per[node.index()];
                    p.execs += 1;
                    p.cumulative += elapsed;
                    p.self_time += elapsed.saturating_sub(frame.child_time);
                }
                if let Some(parent) = lock(&self.stack).last_mut() {
                    parent.child_time += elapsed;
                }
            }
            TraceEvent::CacheHit { node } => {
                self.slot(*node)[node.index()].cache_hits += 1;
            }
            TraceEvent::Dirtied { node, .. } => {
                self.slot(*node)[node.index()].dirtied += 1;
            }
            TraceEvent::PropagateBegin { .. } => {
                lock(&self.propagate_start).push(Instant::now());
            }
            TraceEvent::PropagateEnd { .. } => {
                if let Some(start) = lock(&self.propagate_start).pop() {
                    self.propagations.fetch_add(1, Ordering::Relaxed);
                    *lock(&self.propagate_time) += start.elapsed();
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_ring_drops_oldest() {
        let rec = Recorder::new(2);
        for i in 0..3 {
            rec.event(&TraceEvent::Read {
                node: NodeId::from_index(i),
            });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        let evs = rec.events();
        assert_eq!(evs[0].node(), Some(NodeId::from_index(1)));
        assert_eq!(evs[1].node(), Some(NodeId::from_index(2)));
    }

    #[test]
    fn chrome_json_is_balanced_and_named() {
        let c = ChromeTrace::new();
        let n = NodeId::from_index(0);
        c.event(&TraceEvent::NodeCreated {
            node: n,
            kind: NodeKind::Computation,
            label: Some(Arc::from("he\"llo")),
        });
        c.event(&TraceEvent::ExecuteBegin { node: n });
        c.event(&TraceEvent::Read { node: n });
        c.event(&TraceEvent::ExecuteEnd {
            node: n,
            changed: true,
        });
        let json = c.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#"exec he\"llo"#), "{json}");
        assert!(json.contains(r#""reads":1"#), "{json}");
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn graph_sink_mirrors_edges_and_removals() {
        let g = GraphSink::new();
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        for (n, kind) in [(a, NodeKind::Location), (b, NodeKind::Computation)] {
            g.event(&TraceEvent::NodeCreated {
                node: n,
                kind,
                label: None,
            });
        }
        g.event(&TraceEvent::EdgeAdded { from: a, to: b });
        assert_eq!(g.snapshot().edges, vec![(a, b)]);
        g.event(&TraceEvent::EdgesRemoved { node: b, count: 1 });
        assert!(g.snapshot().edges.is_empty());
        let dot = g.to_dot();
        assert!(dot.contains("digraph alphonse"));
    }

    #[test]
    fn profiler_attributes_self_time_to_frames() {
        let p = Profiler::new();
        let outer = NodeId::from_index(0);
        let inner = NodeId::from_index(1);
        p.event(&TraceEvent::ExecuteBegin { node: outer });
        p.event(&TraceEvent::ExecuteBegin { node: inner });
        p.event(&TraceEvent::ExecuteEnd {
            node: inner,
            changed: true,
        });
        p.event(&TraceEvent::ExecuteEnd {
            node: outer,
            changed: true,
        });
        assert_eq!(p.total_execs(), 2);
        let report = p.report(10);
        assert!(report.contains("execs"), "{report}");
    }

    #[test]
    fn render_dot_is_deterministic() {
        let snap = GraphSnapshot {
            nodes: vec![
                SnapshotNode {
                    id: NodeId::from_index(0),
                    kind: NodeKind::Location,
                    label: Some("x".into()),
                    consistent: true,
                    queued: false,
                    partition: None,
                    last_exec: 0,
                    execs: 0,
                },
                SnapshotNode {
                    id: NodeId::from_index(1),
                    kind: NodeKind::Computation,
                    label: Some("f".into()),
                    consistent: false,
                    queued: true,
                    partition: None,
                    last_exec: 3,
                    execs: 2,
                },
            ],
            edges: vec![(NodeId::from_index(0), NodeId::from_index(1))],
        };
        let a = render_dot(&snap);
        let b = render_dot(&snap);
        assert_eq!(a, b);
        assert!(a.contains("salmon"));
        assert!(a.contains("penwidth=2"));
        assert!(a.contains("peripheries=2"));
    }
}
