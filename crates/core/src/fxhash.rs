//! Inline FxHash-style hasher for hot-path hash tables.
//!
//! Memo argument tables and the partitioned dirty store are probed on
//! every incremental call, where the default SipHash's keyed security is
//! pure overhead — the keys are program-internal argument vectors and
//! dense node ids, not attacker-controlled input. This is the multiply-
//! and-rotate word hash used by rustc and Firefox ("FxHash"), written
//! inline because the workspace takes no external dependencies beyond the
//! pre-approved set (DESIGN.md, "Dependencies").

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, non-cryptographic, non-keyed word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(chunk));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut chunk = [0u8; 4];
            chunk.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(chunk) as u64);
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut chunk = [0u8; 2];
            chunk.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u16::from_le_bytes(chunk) as u64);
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(hash_of(b"alphonse"), hash_of(b"alphonse"));
        assert_ne!(hash_of(b"alphonse"), hash_of(b"alphonse!"));
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
    }

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxHashMap<Vec<i64>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        m.insert(vec![], 9);
        assert_eq!(m.get(&vec![1, 2, 3]), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 31);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&310));
    }

    #[test]
    fn integer_writes_spread_dense_keys() {
        // Dense node ids must not collapse onto a few buckets.
        let mut buckets = [0u32; 16];
        for i in 0u64..4096 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() >> 60) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 0), "all top-nibble buckets hit");
    }
}
