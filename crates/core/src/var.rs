//! Typed handles to tracked storage locations.

use crate::batch::Batch;
use crate::runtime::Runtime;
use crate::value::{downcast_ref, Value};
use alphonse_graph::NodeId;
use alphonse_mem as mem;
use std::fmt;
use std::marker::PhantomData;

/// A typed, tracked storage location — the paper's *top-level abstract
/// location* (Section 4.3).
///
/// Reading a `Var` inside an incremental procedure records a dependence
/// edge; writing one compares against the stored value and seeds quiescence
/// propagation when the value actually changed (Algorithms 3 and 4). The
/// handle itself is a small `Copy` token; the value lives in the
/// [`Runtime`].
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// let rt = Runtime::new();
/// let x = rt.var(1i64);
/// assert_eq!(x.get(&rt), 1);
/// x.set(&rt, 2);
/// assert_eq!(x.get(&rt), 2);
/// ```
pub struct Var<T> {
    node: NodeId,
    rt_id: u64,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T> Clone for Var<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Var<T> {}

impl<T> PartialEq for Var<T> {
    fn eq(&self, other: &Self) -> bool {
        self.node == other.node && self.rt_id == other.rt_id
    }
}
impl<T> Eq for Var<T> {}

impl<T> std::hash::Hash for Var<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.node.hash(state);
        self.rt_id.hash(state);
    }
}

impl<T> fmt::Debug for Var<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var<{}>({})", std::any::type_name::<T>(), self.node)
    }
}

impl<T: Value + PartialEq + Clone> Var<T> {
    fn check(&self, rt: &Runtime) {
        assert_eq!(
            self.rt_id, rt.id,
            "Var used with a different Runtime than it was created in"
        );
    }

    /// Reads the current value, recording a dependence if an incremental
    /// procedure is executing.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime this variable was created in.
    pub fn get(&self, rt: &Runtime) -> T {
        self.check(rt);
        // Borrow-based read: one typed clone out of the cache, no boxing.
        rt.with_value(self.node, |v| downcast_ref::<T>(v, "Var::get").clone())
    }

    /// Runs `f` on the current value in place — no clone at all — recording
    /// a dependence exactly like [`Var::get`]. This is the zero-allocation
    /// read for values that do not need to escape (e.g. summing a field of
    /// a large struct).
    ///
    /// The runtime is borrowed while `f` runs: the closure must not write
    /// tracked state, call memos or run propagation, or the underlying
    /// `RefCell` panics. Use [`Var::get`] when the value must escape.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::Runtime;
    /// let rt = Runtime::new();
    /// let v = rt.var(vec![1i64, 2, 3]);
    /// let sum: i64 = v.with(&rt, |xs| xs.iter().sum());
    /// assert_eq!(sum, 6);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime this variable was created in.
    pub fn with<R>(&self, rt: &Runtime, f: impl FnOnce(&T) -> R) -> R {
        self.check(rt);
        rt.with_value(self.node, |v| f(downcast_ref::<T>(v, "Var::with")))
    }

    /// Reads the current value without recording a dependence — the
    /// `(*UNCHECKED*)` pragma applied to a single read (Section 6.4).
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime this variable was created in.
    pub fn get_untracked(&self, rt: &Runtime) -> T {
        rt.untracked(|| self.get(rt))
    }

    /// Writes a new value. If it differs from the stored one, dependents are
    /// scheduled for re-evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime this variable was created in.
    pub fn set(&self, rt: &Runtime, value: T) {
        self.check(rt);
        rt.raw_write(
            self.node,
            mem::with(mem::Tag::ValueSlab, || Box::new(value)),
        );
    }

    /// Applies `f` to the current value and stores the result.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is not the runtime this variable was created in.
    pub fn update(&self, rt: &Runtime, f: impl FnOnce(T) -> T) {
        let v = self.get(rt);
        self.set(rt, f(v));
    }

    /// Buffers a write of `value` in the transaction `tx` — the batched form
    /// of [`Var::set`]. Repeated writes to the same variable within one
    /// batch coalesce (last write wins); the surviving value is compared
    /// against the pre-batch stored value once, at commit.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::Runtime;
    /// let rt = Runtime::new();
    /// let x = rt.var(1i64);
    /// rt.batch(|tx| {
    ///     x.set_in(tx, 2);
    ///     x.set_in(tx, 3);
    /// });
    /// assert_eq!(x.get(&rt), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `tx` belongs to a different runtime than this variable.
    pub fn set_in(&self, tx: &mut Batch<'_>, value: T) {
        self.check(tx.runtime());
        tx.write_typed(self.node, value);
    }

    /// Reads this variable *through* the transaction: the pending buffered
    /// value if `tx` has one, otherwise the committed value (read exactly
    /// like [`Var::get`], including dependence recording). This gives bulk
    /// mutators read-your-writes visibility inside a batch.
    ///
    /// # Panics
    ///
    /// Panics if `tx` belongs to a different runtime than this variable.
    pub fn get_in(&self, tx: &Batch<'_>) -> T {
        self.check(tx.runtime());
        match tx.pending_value(self.node) {
            Some(v) => downcast_ref::<T>(v, "Var::get_in").clone(),
            None => self.get(tx.runtime()),
        }
    }

    /// Applies `f` to the value visible in the transaction (pending write if
    /// any, committed value otherwise) and buffers the result — the batched
    /// form of [`Var::update`].
    ///
    /// # Panics
    ///
    /// Panics if `tx` belongs to a different runtime than this variable.
    pub fn update_in(&self, tx: &mut Batch<'_>, f: impl FnOnce(T) -> T) {
        let v = self.get_in(tx);
        self.set_in(tx, f(v));
    }

    /// The dependency-graph node backing this variable.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

impl Runtime {
    /// Allocates a fresh tracked variable holding `initial`.
    pub fn var<T: Value + PartialEq + Clone>(&self, initial: T) -> Var<T> {
        Var {
            node: self.raw_alloc(mem::with(mem::Tag::ValueSlab, || Box::new(initial))),
            rt_id: self.id,
            _marker: PhantomData,
        }
    }

    /// Allocates a fresh tracked variable holding `initial` *and* records
    /// the executing incremental procedure's dependence on it, as one
    /// operation — the lazy-promotion read of Algorithm 3. Embedded hosts
    /// (Section 6.1) use this when a plain storage location is read for the
    /// first time inside a tracked context: the location's graph node and
    /// its first dependence edge are created together, for the cost of a
    /// single runtime lock round-trip. Outside a tracked context it is
    /// simply [`Runtime::var`] (there is no frame to record against).
    pub fn var_accessed<T: Value + PartialEq + Clone>(&self, initial: T) -> Var<T> {
        Var {
            node: self.alloc_accessed(mem::with(mem::Tag::ValueSlab, || Box::new(initial))),
            rt_id: self.id,
            _marker: PhantomData,
        }
    }

    /// Allocates a tracked variable with a diagnostic label, shown by
    /// [`Runtime::explain`], [`Runtime::dump_graph`] and trace sinks
    /// ([`crate::trace`]). Substrates that create many variables should
    /// guard label construction with [`Runtime::tracing`] to keep their
    /// build paths allocation-lean when nothing is listening.
    pub fn var_named<T: Value + PartialEq + Clone>(&self, name: &str, initial: T) -> Var<T> {
        let v = self.var(initial);
        self.set_label(v.node, name);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let rt = Runtime::new();
        let v = rt.var(String::from("a"));
        assert_eq!(v.get(&rt), "a");
        v.set(&rt, "b".into());
        assert_eq!(v.get(&rt), "b");
    }

    #[test]
    fn update_applies_function() {
        let rt = Runtime::new();
        let v = rt.var(10i64);
        v.update(&rt, |x| x * 2);
        assert_eq!(v.get(&rt), 20);
    }

    #[test]
    fn var_is_copy_and_hashable() {
        let rt = Runtime::new();
        let v = rt.var(1i32);
        let w = v; // copy
        assert_eq!(v, w);
        let mut set = std::collections::HashSet::new();
        set.insert(v);
        assert!(set.contains(&w));
        let u = rt.var(1i32);
        assert_ne!(v, u);
    }

    #[test]
    #[should_panic(expected = "different Runtime")]
    fn cross_runtime_use_panics() {
        let a = Runtime::new();
        let b = Runtime::new();
        let v = a.var(1i64);
        let _ = v.get(&b);
    }

    #[test]
    fn debug_mentions_type() {
        let rt = Runtime::new();
        let v = rt.var(1u8);
        assert!(format!("{v:?}").contains("u8"));
    }
}
