//! Inconsistent-set containers with pluggable draining order.

use crate::fxhash::FxHashSet;
use alphonse_graph::{HeightQueue, NodeId};
use alphonse_mem as mem;
use std::collections::VecDeque;

/// Order in which the evaluator drains the inconsistent set.
///
/// Section 4.5 of the paper: "The amount of computation is minimized when
/// done in a topological order with respect to the graph". [`HeightOrder`]
/// approximates that order by longest-path height (the scheme of Hoover's
/// incremental graph evaluation work cited there); [`Fifo`] is the naive
/// alternative, kept as an ablation knob for experiment E9.
///
/// [`HeightOrder`]: Scheduling::HeightOrder
/// [`Fifo`]: Scheduling::Fifo
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Drain dirty nodes in ascending dependency height (default).
    #[default]
    HeightOrder,
    /// Drain dirty nodes in first-in first-out order.
    Fifo,
}

/// A set of dirty nodes with the draining policy chosen at construction.
#[derive(Debug)]
pub(crate) enum DirtySet {
    Height(HeightQueue),
    Fifo {
        queue: VecDeque<NodeId>,
        members: FxHashSet<NodeId>,
    },
}

impl DirtySet {
    pub(crate) fn new(mode: Scheduling) -> Self {
        match mode {
            Scheduling::HeightOrder => DirtySet::Height(HeightQueue::new()),
            Scheduling::Fifo => DirtySet::Fifo {
                queue: VecDeque::new(),
                members: FxHashSet::default(),
            },
        }
    }

    /// Inserts `n` (with its current `height`) unless already present.
    /// Returns `true` on a fresh insertion.
    pub(crate) fn insert(&mut self, n: NodeId, height: u32) -> bool {
        let _mem = mem::scope(mem::Tag::Queues);
        match self {
            DirtySet::Height(q) => q.insert(n, height),
            DirtySet::Fifo { queue, members } => {
                if members.insert(n) {
                    queue.push_back(n);
                    true
                } else {
                    false
                }
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<NodeId> {
        match self {
            DirtySet::Height(q) => q.pop(),
            DirtySet::Fifo { queue, members } => {
                let n = queue.pop_front()?;
                members.remove(&n);
                Some(n)
            }
        }
    }

    /// Drains the whole batch of dirty nodes at the current minimum height
    /// into `out`, returning that height. Nodes re-inserted while the batch
    /// is in flight join a later level, never the current one.
    ///
    /// Fifo scheduling has no height levels; it degrades to a singleton
    /// batch (the front node, reported as height 0) so a level-at-a-time
    /// caller behaves exactly like repeated [`pop`] calls.
    ///
    /// [`pop`]: DirtySet::pop
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))] // level drain is feature-gated
    pub(crate) fn pop_level(&mut self, out: &mut Vec<NodeId>) -> Option<u32> {
        let _mem = mem::scope(mem::Tag::Queues);
        match self {
            DirtySet::Height(q) => q.pop_level(out),
            DirtySet::Fifo { queue, members } => {
                let n = queue.pop_front()?;
                members.remove(&n);
                out.push(n);
                Some(0)
            }
        }
    }

    /// Visits every queued node, in no particular order.
    pub(crate) fn for_each_member(&self, mut f: impl FnMut(NodeId)) {
        match self {
            DirtySet::Height(q) => q.for_each_member(f),
            DirtySet::Fifo { members, .. } => {
                for &n in members {
                    f(n);
                }
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            DirtySet::Height(q) => q.is_empty(),
            DirtySet::Fifo { members, .. } => members.is_empty(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            DirtySet::Height(q) => q.len(),
            DirtySet::Fifo { members, .. } => members.len(),
        }
    }

    /// Approximate heap bytes held by the set's containers, from their
    /// capacities. Folded into the runtime's `mem_bytes_hwm` gauge so the
    /// memory-per-node metric covers propagation state, not just the graph.
    pub(crate) fn approx_bytes(&self) -> u64 {
        match self {
            DirtySet::Height(q) => q.approx_bytes(),
            DirtySet::Fifo { queue, members } => {
                let q = queue.capacity() * std::mem::size_of::<NodeId>();
                let m = members.capacity() * std::mem::size_of::<NodeId>();
                (q + m) as u64
            }
        }
    }

    /// Moves all members of `other` into `self` (partition union).
    pub(crate) fn absorb(&mut self, other: &mut DirtySet) {
        let _mem = mem::scope(mem::Tag::Queues);
        match (self, other) {
            (DirtySet::Height(a), DirtySet::Height(b)) => a.absorb(b),
            (
                DirtySet::Fifo { queue, members },
                DirtySet::Fifo {
                    queue: oq,
                    members: om,
                },
            ) => {
                for n in oq.drain(..) {
                    if members.insert(n) {
                        queue.push_back(n);
                    }
                }
                om.clear();
            }
            _ => unreachable!("all dirty sets of a runtime share one scheduling mode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphonse_graph::DepGraph;

    fn nodes(n: usize) -> Vec<NodeId> {
        let mut g = DepGraph::new();
        (0..n).map(|_| g.add_node()).collect()
    }

    #[test]
    fn fifo_preserves_insertion_order() {
        let ns = nodes(3);
        let mut s = DirtySet::new(Scheduling::Fifo);
        s.insert(ns[2], 9);
        s.insert(ns[0], 0);
        s.insert(ns[1], 5);
        assert_eq!(s.pop(), Some(ns[2]));
        assert_eq!(s.pop(), Some(ns[0]));
        assert_eq!(s.pop(), Some(ns[1]));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn height_order_ignores_insertion_order() {
        let ns = nodes(3);
        let mut s = DirtySet::new(Scheduling::HeightOrder);
        s.insert(ns[2], 9);
        s.insert(ns[0], 0);
        s.insert(ns[1], 5);
        assert_eq!(s.pop(), Some(ns[0]));
        assert_eq!(s.pop(), Some(ns[1]));
        assert_eq!(s.pop(), Some(ns[2]));
    }

    #[test]
    fn fifo_dedupes() {
        let ns = nodes(1);
        let mut s = DirtySet::new(Scheduling::Fifo);
        assert!(s.insert(ns[0], 0));
        assert!(!s.insert(ns[0], 0));
        assert_eq!(s.len(), 1);
        s.pop();
        assert!(s.is_empty());
    }

    #[test]
    fn height_pop_level_batches_by_height() {
        let ns = nodes(4);
        let mut s = DirtySet::new(Scheduling::HeightOrder);
        s.insert(ns[0], 1);
        s.insert(ns[1], 0);
        s.insert(ns[2], 1);
        s.insert(ns[3], 0);
        let mut batch = Vec::new();
        assert_eq!(s.pop_level(&mut batch), Some(0));
        batch.sort();
        assert_eq!(batch, vec![ns[1], ns[3]]);
        batch.clear();
        // Same-height re-insertion during the "in-flight" window goes to
        // the next level, not the drained batch.
        s.insert(ns[1], 1);
        assert_eq!(s.pop_level(&mut batch), Some(1));
        batch.sort();
        assert_eq!(batch, vec![ns[0], ns[1], ns[2]]);
        batch.clear();
        assert_eq!(s.pop_level(&mut batch), None);
    }

    #[test]
    fn fifo_pop_level_is_a_singleton() {
        let ns = nodes(3);
        let mut s = DirtySet::new(Scheduling::Fifo);
        s.insert(ns[2], 9);
        s.insert(ns[0], 0);
        let mut batch = Vec::new();
        assert_eq!(s.pop_level(&mut batch), Some(0));
        assert_eq!(batch, vec![ns[2]]);
        batch.clear();
        assert_eq!(s.pop_level(&mut batch), Some(0));
        assert_eq!(batch, vec![ns[0]]);
        batch.clear();
        assert_eq!(s.pop_level(&mut batch), None);
        assert!(s.is_empty());
    }

    #[test]
    fn fifo_absorb() {
        let ns = nodes(3);
        let mut a = DirtySet::new(Scheduling::Fifo);
        let mut b = DirtySet::new(Scheduling::Fifo);
        a.insert(ns[0], 0);
        b.insert(ns[1], 0);
        b.insert(ns[0], 0);
        b.insert(ns[2], 0);
        a.absorb(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.len(), 3);
    }
}
