//! Behavioral tests for level-parallel wave propagation (feature
//! `parallel`): correctness of the level scheduler at 0/1/N workers,
//! the parallel stats counters, and the configuration gates that keep
//! every non-default setup on the sequential evaluator.

#![cfg(feature = "parallel")]

use alphonse::{Runtime, Scheduling, Strategy, Var};

/// A wide two-layer fan: `width` vars, one eager memo per var (height 1),
/// one eager sum over all of them (height 2). Every update wave is one
/// `width`-node level followed by a single-node level.
fn fan(rt: &Runtime, width: usize) -> (Vec<Var<i64>>, alphonse::Memo<(), i64>) {
    let vars: Vec<Var<i64>> = (0..width).map(|i| rt.var(i as i64)).collect();
    let cells: Vec<alphonse::Memo<(), i64>> = vars
        .iter()
        .map(|v| {
            let v = *v;
            rt.memo_with("cell", Strategy::Eager, move |rt, &(): &()| v.get(rt) * 10)
        })
        .collect();
    let total = {
        let cells = cells.clone();
        rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
            cells.iter().map(|c| c.call(rt, ())).sum()
        })
    };
    total.call(rt, ());
    (vars, total)
}

#[test]
fn parallel_wave_matches_sequential_values() {
    for workers in [0usize, 1, 2, 4] {
        let rt = Runtime::new();
        rt.set_parallelism(workers);
        assert_eq!(rt.parallelism(), workers);
        let (vars, total) = fan(&rt, 8);
        assert_eq!(total.call(&rt, ()), (0..8).sum::<i64>() * 10);
        for (i, v) in vars.iter().enumerate() {
            v.set(&rt, (i as i64) + 100);
        }
        rt.propagate();
        assert_eq!(rt.dirty_count(), 0);
        assert_eq!(
            total.call(&rt, ()),
            (0..8).map(|i| i + 100).sum::<i64>() * 10,
            "wrong total at parallelism {workers}"
        );
        rt.check_invariants();
    }
}

#[test]
fn pool_levels_are_counted_and_bounded() {
    let rt = Runtime::new();
    rt.set_parallelism(4);
    let (vars, _) = fan(&rt, 8);
    rt.reset_stats();
    for v in &vars {
        v.set(&rt, 999);
    }
    rt.propagate();
    let s = rt.stats();
    // The 8-cell level runs on the pool; the single-node total level is
    // inline and therefore not a "parallel level".
    assert_eq!(s.parallel_levels, 1);
    assert_eq!(s.parallel_executions, 8);
    assert!(s.parallel_executions <= s.executions);
    assert_eq!(s.level_width_hwm, 8);
    // 8 vars + 8 cells + 1 total processed.
    assert_eq!(s.propagation_steps, 17);
}

#[test]
fn single_worker_control_counts_levels_but_spawns_no_pool_work() {
    let rt = Runtime::new();
    rt.set_parallelism(1);
    let (vars, _) = fan(&rt, 4);
    rt.reset_stats();
    vars[0].set(&rt, 50);
    vars[1].set(&rt, 51);
    rt.propagate();
    let s = rt.stats();
    assert_eq!(s.parallel_levels, 0, "inline levels are not pool levels");
    assert_eq!(s.parallel_executions, 0);
    assert_eq!(s.level_width_hwm, 2, "level drain still batches by height");
}

#[test]
fn sequential_default_keeps_parallel_counters_at_zero() {
    let rt = Runtime::new();
    let (vars, _) = fan(&rt, 4);
    rt.reset_stats();
    for v in &vars {
        v.set(&rt, 7);
    }
    rt.propagate();
    let s = rt.stats();
    assert_eq!(s.parallel_levels, 0);
    assert_eq!(s.parallel_executions, 0);
    assert_eq!(s.level_width_hwm, 0, "sequential drain never batches");
}

#[test]
fn fifo_scheduling_stays_sequential_despite_the_knob() {
    let rt = Runtime::builder().scheduling(Scheduling::Fifo).build();
    rt.set_parallelism(4);
    let (vars, total) = fan(&rt, 4);
    rt.reset_stats();
    for v in &vars {
        v.set(&rt, 3);
    }
    rt.propagate();
    let s = rt.stats();
    assert_eq!(s.parallel_levels, 0);
    assert_eq!(s.level_width_hwm, 0);
    assert_eq!(total.call(&rt, ()), 4 * 3 * 10);
}

#[test]
fn partitioned_runtimes_stay_sequential_despite_the_knob() {
    let rt = Runtime::builder().partitioning(true).build();
    rt.set_parallelism(4);
    let (vars, total) = fan(&rt, 4);
    rt.reset_stats();
    for v in &vars {
        v.set(&rt, 5);
    }
    rt.propagate();
    let s = rt.stats();
    assert_eq!(s.parallel_levels, 0);
    assert_eq!(s.level_width_hwm, 0);
    assert_eq!(total.call(&rt, ()), 4 * 5 * 10);
}

#[test]
fn nested_memo_calls_from_workers_record_dependencies() {
    // Each eager `outer` calls a shared demand memo from its worker thread:
    // cache hits, fresh nested executions and edge recording all happen
    // under worker-held locks.
    let rt = Runtime::new();
    rt.set_parallelism(2);
    let base = rt.var(2i64);
    let shared = rt.memo("shared", move |rt, &(): &()| base.get(rt) * 100);
    let outers: Vec<alphonse::Memo<(), i64>> = (0..4)
        .map(|i| {
            let shared = shared.clone();
            let v = rt.var(i as i64);
            rt.memo_with("outer", Strategy::Eager, move |rt, &(): &()| {
                v.get(rt) + shared.call(rt, ())
            })
        })
        .collect();
    let sum = {
        let outers = outers.clone();
        rt.memo_with("sum", Strategy::Eager, move |rt, &(): &()| {
            outers.iter().map(|m| m.call(rt, ())).sum::<i64>()
        })
    };
    assert_eq!(sum.call(&rt, ()), 6 + 4 * 200);
    base.set(&rt, 3);
    rt.propagate();
    assert_eq!(sum.call(&rt, ()), 6 + 4 * 300);
    rt.check_invariants();
}

#[test]
fn bounded_drains_are_level_granular_and_resume() {
    let rt = Runtime::new();
    rt.set_parallelism(2);
    let (vars, total) = fan(&rt, 6);
    for v in &vars {
        v.set(&rt, 1000);
    }
    // One step only: the first level (the 6 dirty vars) is never split,
    // so one bounded call drains at least that level; the cells and the
    // total still owe work.
    let done = rt.propagate_steps(1);
    assert!(!done, "work must remain after a one-step slice");
    assert!(rt.dirty_count() > 0);
    while !rt.propagate_steps(1) {}
    assert_eq!(rt.dirty_count(), 0);
    assert_eq!(total.call(&rt, ()), 6 * 1000 * 10);
}

#[test]
fn parallelism_knob_survives_resizing() {
    let rt = Runtime::new();
    let (vars, total) = fan(&rt, 6);
    for workers in [2usize, 4, 3, 0, 2] {
        rt.set_parallelism(workers);
        for (i, v) in vars.iter().enumerate() {
            v.set(&rt, (workers * 10 + i) as i64);
        }
        rt.propagate();
        assert_eq!(
            total.call(&rt, ()),
            (0..6).map(|i| (workers * 10 + i) as i64).sum::<i64>() * 10
        );
    }
    rt.check_invariants();
}

#[cfg(feature = "trace")]
#[test]
fn level_brackets_appear_in_the_trace() {
    use alphonse::trace::{Recorder, TraceEvent};
    use std::sync::Arc;
    let rt = Runtime::new();
    rt.set_parallelism(2);
    let (vars, _) = fan(&rt, 4);
    let rec = Arc::new(Recorder::new(1 << 12));
    rt.with_trace(rec.clone(), || {
        for v in &vars {
            v.set(&rt, -1);
        }
        rt.propagate();
    });
    let events = rec.events();
    let mut begins = 0;
    let mut executed_in_levels = 0;
    for e in &events {
        match e {
            TraceEvent::LevelBegin { width, .. } => {
                begins += 1;
                assert!(*width >= 1);
            }
            TraceEvent::LevelEnd { executed, .. } => executed_in_levels += *executed,
            _ => {}
        }
    }
    // Three levels: vars (width 4, 0 executed), cells (4 executed),
    // total (1 executed).
    assert_eq!(begins, 3);
    assert_eq!(executed_in_levels, 5);
}

/// Worker busy/idle gauges come from the executor pool, so they populate
/// only when a pool actually runs — `set_parallelism(n >= 2)` with a
/// multi-node level — never under sequential or inline (n = 1) draining.
#[cfg(feature = "metrics")]
#[test]
fn worker_gauges_populate_only_under_pooled_draining() {
    use std::time::Duration;

    // A wide row of stall-bound eager cells, so pooled workers accumulate
    // measurable busy time.
    let stall_fan = |rt: &Runtime, width: usize| {
        let vars: Vec<Var<i64>> = (0..width).map(|i| rt.var(i as i64)).collect();
        let cells: Vec<alphonse::Memo<(), i64>> = vars
            .iter()
            .map(|v| {
                let v = *v;
                rt.memo_with("cell", Strategy::Eager, move |rt, &(): &()| {
                    std::thread::sleep(Duration::from_micros(200));
                    v.get(rt) + 1
                })
            })
            .collect();
        for c in &cells {
            c.call(rt, ());
        }
        vars
    };

    for workers in [0usize, 1] {
        let rt = Runtime::new();
        rt.set_parallelism(workers);
        let vars = stall_fan(&rt, 6);
        for v in &vars {
            v.set(&rt, 50);
        }
        rt.propagate();
        let snap = rt.metrics_snapshot();
        assert!(
            snap.workers.is_empty(),
            "no pool ran at parallelism {workers}, yet worker gauges appeared"
        );
        assert_eq!(snap.queue_depth_hwm, 0);
        // The wave itself is still observed, pool or not.
        assert!(snap.wave_latency_ns.count() > 0);
    }

    let rt = Runtime::new();
    rt.set_parallelism(4);
    let vars = stall_fan(&rt, 6);
    for v in &vars {
        v.set(&rt, 50);
    }
    rt.propagate();
    let snap = rt.metrics_snapshot();
    assert!(
        !snap.workers.is_empty(),
        "pooled draining must populate worker gauges"
    );
    let jobs: u64 = snap.workers.iter().map(|w| w.jobs).sum();
    assert_eq!(jobs, 6, "one pool job per stalled cell");
    assert!(
        snap.workers.iter().any(|w| w.busy_ns >= 200_000),
        "at least one worker sat in a 200µs stall: {:?}",
        snap.workers
    );
    for w in &snap.workers {
        assert!(w.slot < 4);
        assert!(w.utilization() <= 1.0);
    }
    assert!(snap.queue_depth_hwm >= 1, "jobs passed through the queue");
    assert_eq!(snap.queue_depth, 0, "queue drained at quiescence");
    assert_eq!(snap.level_width.max, 6, "widest level was the cell row");
    assert!(snap.level_latency_ns.count() >= 1, "one pooled level timed");
}
