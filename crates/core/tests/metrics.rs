//! The always-on metrics layer: histogram laws (record/merge/percentile
//! monotonicity), snapshot-delta round-trips mirroring the `Stats` delta
//! test, and the runtime/pool wiring — wave latency, executed/wasted work
//! and serving gauges flowing into `Runtime::metrics_snapshot`.

use alphonse::metrics::{bucket_index, bucket_upper_bound, N_BUCKETS};
use alphonse::{Histogram, HistogramSnapshot, Runtime, Strategy, Var};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// The exact quantile-`q` order statistic of `samples` (the value the
/// histogram's bucketed readout approximates from above).
fn exact_percentile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

proptest! {
    #[test]
    fn merge_matches_concatenation(
        a in proptest::collection::vec(0u64..2_000_000, 0..120),
        b in proptest::collection::vec(0u64..2_000_000, 0..120),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, hist_of(&all));
    }

    #[test]
    fn percentiles_are_monotone_in_q(
        samples in proptest::collection::vec(0u64..10_000_000, 1..150),
    ) {
        let s = hist_of(&samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                s.percentile(w[0]) <= s.percentile(w[1]),
                "percentile not monotone: p{} = {} > p{} = {}",
                w[0], s.percentile(w[0]), w[1], s.percentile(w[1]),
            );
        }
        prop_assert_eq!(s.percentile(1.0), *samples.iter().max().unwrap());
    }

    #[test]
    fn percentile_error_is_within_one_bucket(
        mut samples in proptest::collection::vec(0u64..50_000_000, 1..150),
        qi in 0usize..5,
    ) {
        let q = [0.5, 0.9, 0.95, 0.99, 1.0][qi];
        let reported = hist_of(&samples).percentile(q);
        let truth = exact_percentile(&mut samples, q);
        prop_assert!(reported >= truth, "reported {reported} below exact {truth}");
        prop_assert!(
            reported <= truth + truth / 3 + 1,
            "reported {reported} exceeds the 4/3 bound on exact {truth}"
        );
    }

    #[test]
    fn recording_is_monotone(
        samples in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        // Every record grows count and sum and never shrinks max — snapshot
        // after each sample and compare with its predecessor.
        let h = Histogram::new();
        let mut prev = h.snapshot();
        for &v in &samples {
            h.record(v);
            let cur = h.snapshot();
            prop_assert_eq!(cur.count(), prev.count() + 1);
            prop_assert_eq!(cur.sum, prev.sum + v);
            prop_assert!(cur.max >= prev.max);
            // And the delta from the predecessor is exactly this sample.
            let d = cur.delta_since(&prev);
            prop_assert_eq!(d.count(), 1);
            prop_assert_eq!(d.sum, v);
            prev = cur;
        }
    }

    #[test]
    fn snapshot_delta_round_trips(
        early in proptest::collection::vec(0u64..3_000_000, 0..100),
        late in proptest::collection::vec(0u64..3_000_000, 0..100),
    ) {
        // Mirrors the Stats delta round-trip: record `early`, snapshot,
        // record `late` on top; the delta must equal a histogram that saw
        // only `late` (bucket-wise; `max` is carried from the later
        // snapshot since maxima cannot be subtracted).
        let h = Histogram::new();
        for &v in &early {
            h.record(v);
        }
        let s1 = h.snapshot();
        for &v in &late {
            h.record(v);
        }
        let s2 = h.snapshot();
        let d = s2.delta_since(&s1);
        let late_only = hist_of(&late);
        prop_assert_eq!(d.to_sparse(), late_only.to_sparse());
        prop_assert_eq!(d.sum, late_only.sum);
        prop_assert_eq!(d.count(), late.len() as u64);
        prop_assert_eq!(d.max, s2.max);
        // Delta against the empty snapshot recovers the full histogram.
        prop_assert_eq!(s2.delta_since(&HistogramSnapshot::empty()), s2);
    }

    #[test]
    fn sparse_form_round_trips(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let s = hist_of(&samples);
        let back = HistogramSnapshot::from_sparse(&s.to_sparse(), s.sum, s.max)
            .expect("own sparse form is valid");
        prop_assert_eq!(back, s);
    }

    #[test]
    fn bucket_index_brackets_every_value(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }
}

/// A diamond with a cutoff arm: one write recomputes `coarse` to the same
/// value (wasted) and `double` to a new one (productive).
fn diamond(rt: &Runtime) -> Var<i64> {
    let a = rt.var_named("a", 10i64);
    let coarse = rt.memo_with("coarse", Strategy::Eager, move |rt, &(): &()| {
        a.get(rt) / 100
    });
    let double = rt.memo_with("double", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let (c, d) = (coarse.clone(), double.clone());
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        c.call(rt, ()) + d.call(rt, ())
    });
    top.call(rt, ());
    a
}

#[test]
fn wasted_executions_counts_cutoff_stopped_work() {
    let rt = Runtime::new();
    let a = diamond(&rt);
    rt.reset_stats();
    a.set(&rt, 20); // coarse: 0 -> 0 (wasted), double: 20 -> 40 (productive)
    rt.propagate();
    let s = rt.stats();
    assert_eq!(s.wasted_executions, 1, "exactly the cutoff arm is wasted");
    assert!(s.executions > s.wasted_executions);
}

#[cfg(feature = "metrics")]
mod wired {
    use super::*;
    use alphonse::pool::SessionPool;
    use alphonse::MetricsSnapshot;

    #[test]
    fn waves_flow_into_the_snapshot() {
        let rt = Runtime::new();
        let a = diamond(&rt);
        let before = rt.metrics_snapshot();
        a.set(&rt, 20);
        rt.propagate();
        a.set(&rt, 30);
        rt.propagate();
        let after = rt.metrics_snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.wave_latency_ns.count(), 2, "one sample per wave");
        assert!(d.wave_latency_ns.sum > 0, "waves take nonzero time");
        assert_eq!(d.wave_executed.count(), 2);
        assert!(
            d.wave_executed.max >= 2,
            "each wave re-executed both arms and the top"
        );
        assert_eq!(d.wave_wasted.max, 1, "the cutoff arm per wave");
        // The counters ride along, driven by the same Stats single source.
        let waves = d.counters.iter().find(|(n, _)| *n == "waves").unwrap().1;
        assert_eq!(waves, 2);
    }

    #[test]
    fn snapshot_renders_prometheus_and_json() {
        let rt = Runtime::new();
        let a = diamond(&rt);
        a.set(&rt, 20);
        rt.propagate();
        let snap = rt.metrics_snapshot();
        let prom = snap.render_prometheus();
        for needle in [
            "# TYPE alphonse_executions counter",
            "# TYPE alphonse_wave_latency_ns histogram",
            "alphonse_wave_latency_ns_bucket{le=\"+Inf\"}",
            "alphonse_exec_queue_depth 0",
        ] {
            assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "unparseable sample `{line}`");
        }
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"alphonse-metrics-v1\""));
        assert!(json.contains("\"wave_latency_ns\""));
    }

    #[test]
    fn merged_sessions_aggregate_their_waves() {
        let snap_of = |writes: i64| {
            let rt = Runtime::new();
            let a = diamond(&rt);
            let before = rt.metrics_snapshot();
            for i in 1..=writes {
                a.set(&rt, 200 * i);
                rt.propagate();
            }
            rt.metrics_snapshot().delta_since(&before)
        };
        let mut merged = snap_of(2);
        merged.merge(&snap_of(3));
        assert_eq!(merged.wave_latency_ns.count(), 5);
    }

    #[test]
    fn session_pool_reports_serving_metrics() {
        struct Sess {
            rt: Runtime,
            x: Var<i64>,
        }
        let pool = SessionPool::new(2);
        for t in 0..4u64 {
            let rt = Runtime::new();
            let x = rt.var(t as i64);
            pool.insert(t, Sess { rt, x });
        }
        for t in 0..4u64 {
            pool.submit(t, move |s: &mut Sess| s.x.set(&s.rt, 99));
        }
        pool.flush();
        let snap = pool.metrics_snapshot();
        let p = snap.pool.as_ref().expect("pool section present");
        assert_eq!(p.shards.len(), 2);
        assert_eq!(p.tenants(), 4, "two tenants per shard");
        assert_eq!(p.shards.iter().map(|s| s.jobs).sum::<u64>(), 4);
        assert_eq!(p.submit_sojourn_ns.count(), 4, "every submit was timed");
        assert_eq!(p.flush_latency_ns.count(), 1);
        assert!(p.flush_latency_ns.sum > 0);
        // Removal moves the gauge back down.
        pool.remove(0);
        pool.flush();
        assert_eq!(pool.pool_metrics().tenants(), 3);
        // And the pool section renders.
        let prom = snap.render_prometheus();
        assert!(prom.contains("alphonse_shard_tenants{shard=\"0\"} 2"));
        assert!(prom.contains("alphonse_pool_submit_sojourn_ns_count 4"));
    }

    #[test]
    fn runtime_and_pool_snapshots_merge_into_one() {
        let rt = Runtime::new();
        let a = diamond(&rt);
        a.set(&rt, 20);
        rt.propagate();
        let pool: SessionPool<()> = SessionPool::new(1);
        pool.insert(0, ());
        pool.flush();
        let mut full = rt.metrics_snapshot();
        full.merge(&pool.metrics_snapshot());
        assert!(full.wave_latency_ns.count() > 0);
        assert_eq!(full.pool.as_ref().unwrap().tenants(), 1);
        let d = MetricsSnapshot::default();
        let round = full.delta_since(&d);
        assert_eq!(round.wave_latency_ns, full.wave_latency_ns);
    }
}
