//! Event-stream correctness: the trace a canonical diamond graph produces,
//! sink management, and the DOT exporter's golden output.

use alphonse::trace::{
    render_dot, ChromeTrace, DirtyReason, GraphSink, Profiler, Recorder, TraceEvent, TraceSink,
};
use alphonse::{NodeId, Runtime, Strategy, Var};
use std::sync::Arc;

/// Builds the canonical diamond over variable `a`:
///
/// ```text
///        top = left + right
///       /                  \
///   left = a / 100      right = a * 2     (both arms EAGER)
///       \                  /
///              a
/// ```
///
/// With `a: 10 -> 20`, `left` recomputes to the same value (0) — the cutoff
/// arm — while `right` changes and forces exactly one re-execution of `top`.
///
/// Allocation order (instances materialize on first call): `a` = n0,
/// `top` = n1, `left` = n2, `right` = n3.
fn diamond(rt: &Runtime) -> (Var<i64>, [NodeId; 4]) {
    let a = rt.var_named("a", 10i64);
    let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
    let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let (l, r) = (left.clone(), right.clone());
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        l.call(rt, ()) + r.call(rt, ())
    });
    assert_eq!(top.call(rt, ()), 20);
    let nodes = [
        a.node(),
        left.instance_node(&()).unwrap(),
        right.instance_node(&()).unwrap(),
        top.instance_node(&()).unwrap(),
    ];
    (a, nodes)
}

#[test]
fn diamond_write_produces_exact_event_sequence() {
    let rt = Runtime::new();
    let (a, [na, nleft, nright, ntop]) = diamond(&rt);

    let rec = Arc::new(Recorder::new(1024));
    rt.set_sink(Some(rec.clone()));
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);

    let got = rec.events();
    let expected = vec![
        // The write changes `a` and seeds propagation.
        TraceEvent::Write {
            node: na,
            changed: true,
        },
        TraceEvent::Dirtied {
            node: na,
            reason: DirtyReason::WriteChanged,
            cause: None,
        },
        TraceEvent::PropagateBegin { wave: 1 },
        // Draining `a` fans the dirt out to both arms, in `a`'s
        // successor-list order; each carries `a` as its cause.
        TraceEvent::Dirtied {
            node: nright,
            reason: DirtyReason::Fanout,
            cause: Some(na),
        },
        TraceEvent::Dirtied {
            node: nleft,
            reason: DirtyReason::Fanout,
            cause: Some(na),
        },
        // Both arms sit at height 1; the height queue breaks the tie
        // toward the higher node id, so `right` re-executes first.
        TraceEvent::ExecuteBegin { node: nright },
        TraceEvent::EdgesRemoved {
            node: nright,
            count: 1,
        },
        TraceEvent::Read { node: na },
        TraceEvent::EdgeAdded {
            from: na,
            to: nright,
        },
        TraceEvent::ExecuteEnd {
            node: nright,
            changed: true,
        },
        // Only the changed arm dirties `top`.
        TraceEvent::Dirtied {
            node: ntop,
            reason: DirtyReason::Fanout,
            cause: Some(nright),
        },
        // The cutoff arm: 20/100 == 10/100, so change stops here.
        TraceEvent::ExecuteBegin { node: nleft },
        TraceEvent::EdgesRemoved {
            node: nleft,
            count: 1,
        },
        TraceEvent::Read { node: na },
        TraceEvent::EdgeAdded {
            from: na,
            to: nleft,
        },
        TraceEvent::ExecuteEnd {
            node: nleft,
            changed: false,
        },
        TraceEvent::CutoffStop { node: nleft },
        // The single re-execution above the fan-in: both arms answer from
        // cache, and only the changed sum commits.
        TraceEvent::ExecuteBegin { node: ntop },
        TraceEvent::EdgesRemoved {
            node: ntop,
            count: 2,
        },
        TraceEvent::CacheHit { node: nleft },
        TraceEvent::EdgeAdded {
            from: nleft,
            to: ntop,
        },
        TraceEvent::CacheHit { node: nright },
        TraceEvent::EdgeAdded {
            from: nright,
            to: ntop,
        },
        TraceEvent::ExecuteEnd {
            node: ntop,
            changed: true,
        },
        // Four dirty nodes processed: a, right, left, top.
        TraceEvent::PropagateEnd { wave: 1, steps: 4 },
    ];
    assert_eq!(
        got, expected,
        "diamond trace diverged.\ngot:\n{got:#?}\nexpected:\n{expected:#?}"
    );
}

#[test]
fn dot_export_matches_golden() {
    let rt = Runtime::new();
    let (a, _) = diamond(&rt);
    a.set(&rt, 20);
    rt.propagate();

    let dot = render_dot(&rt.graph_snapshot());
    // Execution ordinals: initial build is top=1, left=2, right=3; the
    // update re-executes right=4, left=5, top=6 — so `top` executed last
    // and is drawn with a double outline.
    let golden = "\
digraph alphonse {
  rankdir=BT;
  node [fontname=\"Helvetica\" fontsize=10];
  n0 [label=\"a\\nn0\" shape=box style=filled fillcolor=lightsteelblue];
  n1 [label=\"top\\nn1 #6\" shape=ellipse style=filled fillcolor=palegreen peripheries=2];
  n2 [label=\"left\\nn2 #5\" shape=ellipse style=filled fillcolor=palegreen];
  n3 [label=\"right\\nn3 #4\" shape=ellipse style=filled fillcolor=palegreen];
  n0 -> n2;
  n0 -> n3;
  n2 -> n1;
  n3 -> n1;
}
";
    assert_eq!(dot, golden, "DOT output diverged:\n{dot}");
}

#[test]
fn graph_sink_mirror_agrees_with_live_snapshot_topology() {
    let rt = Runtime::new();
    let mirror = Arc::new(GraphSink::new());
    rt.set_sink(Some(mirror.clone()));
    let (a, _) = diamond(&rt);
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);

    let live = rt.graph_snapshot();
    let mirrored = mirror.snapshot();
    assert_eq!(live.nodes.len(), mirrored.nodes.len());
    let mut live_edges = live.edges.clone();
    let mut mirror_edges = mirrored.edges.clone();
    live_edges.sort();
    mirror_edges.sort();
    assert_eq!(live_edges, mirror_edges);
    for (l, m) in live.nodes.iter().zip(&mirrored.nodes) {
        assert_eq!(l.kind, m.kind, "kind mismatch at {}", l.id);
        assert_eq!(l.label, m.label, "label mismatch at {}", l.id);
    }
    // The event-driven mirror also carries execution counts the live
    // snapshot cannot: 3 initial executions + 3 re-executions.
    assert_eq!(mirrored.nodes.iter().map(|n| n.execs).sum::<u64>(), 6);
}

#[test]
fn with_trace_restores_previous_sink() {
    let rt = Runtime::new();
    let x = rt.var(1i64);
    let outer = Arc::new(Recorder::new(64));
    let inner = Arc::new(Recorder::new(64));
    rt.set_sink(Some(outer.clone()));
    x.set(&rt, 2); // seen by outer
    rt.with_trace(inner.clone(), || x.set(&rt, 3)); // seen by inner only
    x.set(&rt, 4); // seen by outer
    rt.set_sink(None);
    assert_eq!(outer.events().len(), 2);
    assert_eq!(inner.events().len(), 1);
}

#[test]
fn edge_added_is_attributed_to_the_successor() {
    // Regression: `node()` used to return the predecessor `from`, filing
    // edge events under the storage that was read instead of the depending
    // computation whose dependency set changed.
    let from = NodeId::from_index(0);
    let to = NodeId::from_index(1);
    assert_eq!(TraceEvent::EdgeAdded { from, to }.node(), Some(to));

    // Per-node timelines still show the edge from both endpoints.
    let rt = Runtime::new();
    let (a, [na, _, nright, _]) = diamond(&rt);
    let rec = Arc::new(Recorder::new(1024));
    rt.set_sink(Some(rec.clone()));
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);
    let has_edge = |n: NodeId| {
        rec.timeline(n)
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::EdgeAdded { from, to } if *from == na && *to == nright))
    };
    assert!(has_edge(nright), "successor timeline must carry the edge");
    assert!(has_edge(na), "predecessor timeline must carry the edge");
}

#[test]
fn recorder_timeline_filters_per_node() {
    let rt = Runtime::new();
    let (a, [na, nleft, ..]) = diamond(&rt);
    let rec = Arc::new(Recorder::new(1024));
    rt.set_sink(Some(rec.clone()));
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);

    let a_line = rec.timeline(na);
    assert!(a_line
        .iter()
        .all(|(_, e)| e.node() == Some(na) || matches!(e, TraceEvent::EdgeAdded { .. })));
    assert!(a_line
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::Write { .. })));
    let left_line = rec.timeline(nleft);
    assert!(left_line
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::CutoffStop { .. })));
    // Timestamps are monotone.
    assert!(a_line.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn chrome_trace_from_diamond_is_valid_json_shape() {
    let rt = Runtime::new();
    let chrome = Arc::new(ChromeTrace::new());
    rt.set_sink(Some(chrome.clone()));
    let (a, _) = diamond(&rt);
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);

    let json = chrome.to_json();
    assert!(json.starts_with("[\n") && json.ends_with(']'));
    // Spans balance: one E per B (3 initial + 3 re-executions + 1
    // propagation run).
    let begins = json.matches(r#""ph":"B""#).count();
    let ends = json.matches(r#""ph":"E""#).count();
    assert_eq!(begins, ends, "unbalanced spans:\n{json}");
    assert_eq!(begins, 7, "expected 6 exec spans + 1 propagate span");
    assert!(json.contains(r#""name":"exec top (n1)""#), "{json}");
    assert!(json.contains(r#""name":"cutoff left (n2)""#), "{json}");
}

#[test]
fn profiler_counts_diamond_executions() {
    let rt = Runtime::new();
    let prof = Arc::new(Profiler::new());
    rt.set_sink(Some(prof.clone()));
    let (a, _) = diamond(&rt);
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);

    assert_eq!(prof.total_execs(), 6); // 3 initial + 3 re-executions
    assert_eq!(prof.propagations(), 1); // only the explicit rt.propagate()
    let report = prof.report(3);
    assert!(report.contains("top (n1)"), "{report}");
    assert!(
        report.lines().count() <= 2 + 3,
        "top-k not applied:\n{report}"
    );
}

#[test]
fn default_sink_attaches_to_runtimes_built_after_install() {
    let rec = Arc::new(Recorder::new(64));
    let prev = alphonse::trace::set_default_sink(Some(rec.clone()));
    assert!(prev.is_none());
    let rt = Runtime::new();
    let _ = rt.var(7i64);
    alphonse::trace::set_default_sink(None);
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e, TraceEvent::NodeCreated { .. })),
        "builder did not consult the thread-local default sink"
    );
    // Runtimes built after clearing stay silent.
    let before = rec.len();
    let rt2 = Runtime::new();
    rt2.var(1i64);
    assert_eq!(rec.len(), before);
}

#[test]
fn tracing_reflects_sink_presence() {
    let rt = Runtime::new();
    assert!(!rt.tracing());
    rt.set_sink(Some(Arc::new(Recorder::new(8))));
    assert!(rt.tracing());
    rt.set_sink(None);
    assert!(!rt.tracing());
}

#[test]
fn check_invariants_passes_through_diamond_lifecycle() {
    let rt = Runtime::new();
    rt.check_invariants();
    let (a, _) = diamond(&rt);
    rt.check_invariants();
    a.set(&rt, 20);
    rt.check_invariants(); // dirty queued, pre-propagation
    rt.propagate();
    rt.check_invariants();

    let part = Runtime::builder().partitioning(true).build();
    let (b, _) = diamond(&part);
    b.set(&part, 20);
    part.propagate();
    part.check_invariants();
}

/// A sink that fails the test if it ever receives an event.
struct PanicSink;
impl TraceSink for PanicSink {
    fn event(&self, ev: &TraceEvent) {
        panic!("detached sink received {ev:?}");
    }
}

#[test]
fn detached_sink_receives_nothing() {
    let rt = Runtime::new();
    let prev = rt.set_sink(Some(Arc::new(PanicSink)));
    assert!(prev.is_none());
    let restored = rt.set_sink(None);
    assert!(restored.is_some());
    let x = rt.var(1i64);
    x.set(&rt, 2); // must not reach PanicSink
}
