//! Property-based differential testing of the runtime.
//!
//! The central correctness claim of the paper is Theorem 5.1: Alphonse
//! execution produces the same output as conventional execution. For the
//! library embedding that means: after any sequence of mutations, querying a
//! memo must return exactly what recomputing its definition from the current
//! variable values would return. We check that over random dataflow DAGs,
//! random evaluation strategies and random mutation scripts, for every
//! runtime configuration.

use alphonse::{Memo, Runtime, Scheduling, Strategy as EvalStrategy};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// One input of a derived computation.
#[derive(Debug, Clone, Copy)]
enum Input {
    Var(usize),
    Memo(usize),
}

/// Specification of one memo: a wrapping linear combination of inputs.
#[derive(Debug, Clone)]
struct MemoSpec {
    inputs: Vec<(Input, i64)>,
    offset: i64,
    eager: bool,
}

#[derive(Debug, Clone)]
enum Op {
    Set { var: usize, value: i64 },
    Query { memo: usize },
    Propagate,
}

#[derive(Debug, Clone)]
struct Case {
    n_vars: usize,
    init: Vec<i64>,
    memos: Vec<MemoSpec>,
    script: Vec<Op>,
    partitioning: bool,
    fifo: bool,
    dedup: bool,
}

/// Ground truth: evaluate memo `k` directly from variable values.
fn oracle(memos: &[MemoSpec], vars: &[i64], k: usize) -> i64 {
    let spec = &memos[k];
    let mut acc = spec.offset;
    for &(input, coeff) in &spec.inputs {
        let v = match input {
            Input::Var(i) => vars[i],
            Input::Memo(j) => oracle(memos, vars, j),
        };
        acc = acc.wrapping_add(v.wrapping_mul(coeff));
    }
    acc
}

fn run_case(case: &Case) {
    let rt = Runtime::builder()
        .partitioning(case.partitioning)
        .scheduling(if case.fifo {
            Scheduling::Fifo
        } else {
            Scheduling::HeightOrder
        })
        .dedup_edges(case.dedup)
        .build();
    let vars: Vec<_> = case.init.iter().map(|&v| rt.var(v)).collect();
    // Memos can call earlier memos; closures resolve callees through this
    // shared registry (and keep it alive via their captured Arc).
    let registry: Arc<Mutex<Vec<Memo<(), i64>>>> = Arc::new(Mutex::new(Vec::new()));
    for (k, spec) in case.memos.iter().enumerate() {
        let spec = spec.clone();
        let vars = vars.clone();
        let reg = Arc::clone(&registry);
        let strategy = if spec.eager {
            EvalStrategy::Eager
        } else {
            EvalStrategy::Demand
        };
        let memo = rt.memo_with(&format!("m{k}"), strategy, move |rt, &(): &()| {
            let mut acc = spec.offset;
            for &(input, coeff) in &spec.inputs {
                let v = match input {
                    Input::Var(i) => vars[i].get(rt),
                    Input::Memo(j) => {
                        let callee = reg.lock().unwrap()[j].clone();
                        callee.call(rt, ())
                    }
                };
                acc = acc.wrapping_add(v.wrapping_mul(coeff));
            }
            acc
        });
        registry.lock().unwrap().push(memo);
    }

    let mut shadow = case.init.clone();
    // Query everything once so the dependency graph is fully populated.
    for k in 0..case.memos.len() {
        let m = registry.lock().unwrap()[k].clone();
        assert_eq!(m.call(&rt, ()), oracle(&case.memos, &shadow, k));
    }
    for op in &case.script {
        match *op {
            Op::Set { var, value } => {
                let i = var % case.n_vars;
                vars[i].set(&rt, value);
                shadow[i] = value;
            }
            Op::Query { memo } => {
                let k = memo % case.memos.len();
                let m = registry.lock().unwrap()[k].clone();
                let got = m.call(&rt, ());
                let want = oracle(&case.memos, &shadow, k);
                assert_eq!(
                    got, want,
                    "memo m{k} diverged from conventional execution (cfg: part={}, fifo={}, dedup={})",
                    case.partitioning, case.fifo, case.dedup
                );
            }
            Op::Propagate => rt.propagate(),
        }
    }
    // Final full audit.
    rt.propagate();
    for k in 0..case.memos.len() {
        let m = registry.lock().unwrap()[k].clone();
        assert_eq!(m.call(&rt, ()), oracle(&case.memos, &shadow, k));
    }
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        1usize..6,
        1usize..10,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_flat_map(|(n_vars, n_memos, partitioning, fifo, dedup)| {
            let memo_spec = move |k: usize| {
                let input = prop_oneof![
                    (0..n_vars).prop_map(Input::Var),
                    if k == 0 {
                        (0..n_vars).prop_map(Input::Var).boxed()
                    } else {
                        (0..k).prop_map(Input::Memo).boxed()
                    }
                ];
                (
                    proptest::collection::vec((input, -3i64..4), 1..4),
                    -10i64..10,
                    any::<bool>(),
                )
                    .prop_map(|(inputs, offset, eager)| MemoSpec {
                        inputs,
                        offset,
                        eager,
                    })
            };
            let memos: Vec<_> = (0..n_memos).map(memo_spec).collect();
            let op = prop_oneof![
                4 => (any::<usize>(), -100i64..100).prop_map(|(var, value)| Op::Set { var, value }),
                4 => any::<usize>().prop_map(|memo| Op::Query { memo }),
                1 => Just(Op::Propagate),
            ];
            (
                proptest::collection::vec(-100i64..100, n_vars),
                memos,
                proptest::collection::vec(op, 1..40),
            )
                .prop_map(move |(init, memos, script)| Case {
                    n_vars,
                    init,
                    memos,
                    script,
                    partitioning,
                    fifo,
                    dedup,
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Theorem 5.1 for the library embedding: incremental results always
    /// match conventional from-scratch evaluation.
    #[test]
    fn incremental_matches_conventional(case in case_strategy()) {
        run_case(&case);
    }

    /// Vars behave like plain storage under arbitrary write sequences.
    #[test]
    fn var_read_your_writes(writes in proptest::collection::vec(any::<i64>(), 1..50)) {
        let rt = Runtime::new();
        let v = rt.var(0i64);
        for &w in &writes {
            v.set(&rt, w);
            prop_assert_eq!(v.get(&rt), w);
        }
        prop_assert_eq!(v.get(&rt), *writes.last().unwrap());
    }

    /// Memoization is transparent for pure functions of the argument.
    #[test]
    fn pure_memo_is_function_of_argument(args in proptest::collection::vec(-1000i64..1000, 1..60)) {
        let rt = Runtime::new();
        let square = rt.memo("square", |_rt, x: &i64| x.wrapping_mul(*x));
        for &a in &args {
            prop_assert_eq!(square.call(&rt, a), a.wrapping_mul(a));
        }
        // Instances never exceed distinct argument count.
        let distinct: std::collections::HashSet<_> = args.iter().collect();
        prop_assert_eq!(square.instance_count(), distinct.len());
    }

    /// The borrow-based read path and the boxing read path agree on every
    /// value, for both scalar and heap-allocated types.
    #[test]
    fn borrow_and_boxing_reads_agree(writes in proptest::collection::vec(any::<i64>(), 1..40)) {
        let rt = Runtime::new();
        let v = rt.var(0i64);
        let s = rt.var(String::new());
        for &w in &writes {
            v.set(&rt, w);
            s.set(&rt, w.to_string());
            prop_assert_eq!(v.with(&rt, |&x| x), w);
            prop_assert_eq!(v.get(&rt), w);
            let boxed = rt.raw_read(v.node());
            prop_assert!(boxed.dyn_eq(&w));
            prop_assert!(rt.with_value(v.node(), |val| val.dyn_eq(&*boxed)));
            prop_assert_eq!(s.with(&rt, |x| x.len()), w.to_string().len());
            prop_assert!(rt.raw_read(s.node()).dyn_eq(&w.to_string()));
        }
    }
}
