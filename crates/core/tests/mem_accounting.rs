//! Reconciles the runtime's cheap capacity-based memory estimate
//! (`Stats::mem_bytes_hwm`, from `approx_bytes`) against the measured
//! allocator-backed gauges (`mem::snapshot()` with `TrackingAlloc`
//! installed).
//!
//! The estimate models the graph arena, the SoA node columns, the cold side
//! tables and the dirty queues from container capacities; the allocator
//! measures the same structures (tags `graph_core` + `queues`) plus the
//! boxed values (`value_slab`) that the estimate only counts as slot
//! pointers. **Documented accuracy factor: the estimate is within 4x of the
//! measured `graph_core + value_slab + queues` live bytes** once a structure
//! has a few hundred nodes (the E9 ladder below); on a toy graph (the
//! 4-node diamond) fixed container minimums dominate and the bound loosens
//! to 8x. DESIGN.md "Memory accounting" quotes these factors.
//!
//! Counters are process-global, so every test serializes on a mutex and
//! measures deltas (the harness's own threads only allocate untagged).
#![cfg(feature = "metrics")]

use alphonse::mem;
use alphonse::{Runtime, Strategy};
use std::sync::{Mutex, MutexGuard};

#[global_allocator]
static ALLOC: mem::TrackingAlloc = mem::TrackingAlloc;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Live bytes currently billed to the runtime-structure tags.
fn measured_core_bytes() -> u64 {
    let snap = mem::snapshot();
    ["graph_core", "value_slab", "queues"]
        .iter()
        .map(|t| snap.get(t).expect("tag present").live_bytes)
        .sum()
}

fn assert_within_factor(estimate: u64, measured: u64, factor: u64, what: &str) {
    assert!(estimate > 0, "{what}: estimate is zero");
    assert!(measured > 0, "{what}: measured is zero");
    assert!(
        estimate <= measured * factor && measured <= estimate * factor,
        "{what}: estimate {estimate} vs measured {measured} exceeds {factor}x \
         (ratio {:.2})",
        estimate as f64 / measured as f64
    );
}

#[test]
fn diamond_estimate_within_documented_factor() {
    let _l = lock();
    let before = measured_core_bytes();
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
    let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        left.call(rt, ()) + right.call(rt, ())
    });
    assert_eq!(top.call(&rt, ()), 2);
    for i in 0..32i64 {
        a.set(&rt, i);
        rt.propagate();
    }
    let stats = rt.stats();
    let measured = measured_core_bytes() - before;
    assert_eq!(stats.mem_nodes, 4, "diamond allocates 4 nodes");
    assert_within_factor(stats.mem_bytes_hwm, measured, 8, "diamond");
    drop(rt);
}

#[test]
fn e9_ladder_estimate_within_documented_factor() {
    let _l = lock();
    let before = measured_core_bytes();
    let rt = Runtime::new();
    // The E9 ladder: one base var and a chain of eager cells, each reading
    // its predecessor — the bench harness's `workloads::ladder` shape.
    let n = 512usize;
    let base = rt.var(0i64);
    let mut cells: Vec<alphonse::Memo<(), i64>> = Vec::with_capacity(n);
    for i in 0..n {
        let prev = cells.last().cloned();
        let cell = rt.memo_with(
            &format!("lvl{i}"),
            Strategy::Eager,
            move |rt, &(): &()| match &prev {
                Some(p) => p.call(rt, ()) + 1,
                None => base.get(rt) + 1,
            },
        );
        cell.call(&rt, ());
        cells.push(cell);
    }
    assert_eq!(cells.last().unwrap().call(&rt, ()), n as i64);
    for w in 1..4i64 {
        base.set(&rt, w);
        rt.propagate();
        assert_eq!(cells.last().unwrap().call(&rt, ()), w + n as i64);
    }
    let stats = rt.stats();
    let measured = measured_core_bytes() - before;
    assert_eq!(stats.mem_nodes, n as u64 + 1);
    assert_within_factor(stats.mem_bytes_hwm, measured, 4, "ladder");
    drop(rt);
}

/// The estimate's per-node figure and the measured per-node figure agree on
/// order of magnitude at scale, and both gauges move when nodes are added
/// (no drift between `mem_nodes` and what the allocator sees).
#[test]
fn estimate_tracks_growth() {
    let _l = lock();
    let rt = Runtime::new();
    let first_est = rt.stats().mem_bytes_hwm;
    let first_measured = measured_core_bytes();
    let mut last_est = first_est;
    let mut last_measured = first_measured;
    for round in 0..4 {
        for _ in 0..256 {
            let v = rt.var(0i64);
            let _ = v.get_untracked(&rt);
        }
        let est = rt.stats().mem_bytes_hwm;
        let measured = measured_core_bytes();
        // Both gauges are capacity-shaped (Vec doubling), so a single round
        // may land inside existing capacity: monotone per round, strictly
        // larger end to end.
        assert!(
            est >= last_est,
            "estimate regressed on round {round}: {est} < {last_est}"
        );
        assert!(
            measured >= last_measured,
            "measured regressed on round {round}"
        );
        last_est = est;
        last_measured = measured;
    }
    assert!(last_est > first_est, "estimate never grew");
    assert!(last_measured > first_measured, "measured bytes never grew");
}
