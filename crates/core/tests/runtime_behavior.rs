//! Integration tests for the Alphonse runtime semantics: evaluation
//! strategies, quiescence cutoff, partitioning, UNCHECKED regions, and the
//! paper's fixpoint behaviour for procedures that write tracked state.

use alphonse::{Runtime, Scheduling, Strategy};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Counts executions of a memo body.
#[derive(Clone)]
struct ExecCount(Arc<AtomicU32>);

impl ExecCount {
    fn get(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }
}

fn counter() -> (ExecCount, impl Fn() + Send + Sync) {
    let c = ExecCount(Arc::new(AtomicU32::new(0)));
    let c2 = c.clone();
    (c, move || {
        c2.0.fetch_add(1, Ordering::Relaxed);
    })
}

#[test]
fn demand_chain_recomputes_only_when_queried() {
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let (n1, bump1) = counter();
    let m1 = rt.memo("m1", move |rt, &(): &()| {
        bump1();
        a.get(rt) * 2
    });
    let m1c = m1.clone();
    let (n2, bump2) = counter();
    let m2 = rt.memo("m2", move |rt, &(): &()| {
        bump2();
        m1c.call(rt, ()) + 1
    });
    assert_eq!(m2.call(&rt, ()), 3);
    assert_eq!((n1.get(), n2.get()), (1, 1));

    a.set(&rt, 5);
    // Nothing recomputes until the next call.
    assert_eq!((n1.get(), n2.get()), (1, 1));
    assert_eq!(m2.call(&rt, ()), 11);
    assert_eq!((n1.get(), n2.get()), (2, 2));
}

#[test]
fn eager_updates_during_propagate_without_a_call() {
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let (n, bump) = counter();
    let m = rt.memo_with("eager", Strategy::Eager, move |rt, &(): &()| {
        bump();
        a.get(rt) * 10
    });
    assert_eq!(m.call(&rt, ()), 10);
    a.set(&rt, 2);
    rt.propagate();
    assert_eq!(n.get(), 2, "eager node re-ran inside propagate");
    let before = rt.stats();
    assert_eq!(m.call(&rt, ()), 20);
    let d = rt.stats().delta_since(&before);
    assert_eq!(d.executions, 0, "the call itself was a pure cache hit");
}

#[test]
fn eager_cutoff_stops_propagation_at_equal_values() {
    // a -> abs -> downstream. Changing a from 3 to -3 re-runs abs but the
    // result (3) is unchanged, so downstream must NOT re-run (quiescence).
    let rt = Runtime::new();
    let a = rt.var(3i64);
    let (n_abs, bump_abs) = counter();
    let abs = rt.memo_with("abs", Strategy::Eager, move |rt, &(): &()| {
        bump_abs();
        a.get(rt).abs()
    });
    let absc = abs.clone();
    let (n_down, bump_down) = counter();
    let down = rt.memo_with("down", Strategy::Eager, move |rt, &(): &()| {
        bump_down();
        absc.call(rt, ()) + 100
    });
    assert_eq!(down.call(&rt, ()), 103);
    assert_eq!((n_abs.get(), n_down.get()), (1, 1));

    a.set(&rt, -3);
    rt.propagate();
    assert_eq!(n_abs.get(), 2, "abs re-ran");
    assert_eq!(n_down.get(), 1, "downstream cut off: abs value unchanged");
    assert_eq!(down.call(&rt, ()), 103);
    assert_eq!(n_down.get(), 1);
}

#[test]
fn demand_dirtying_is_transitively_conservative() {
    // With demand evaluation the dirtying phase does not compare values, so
    // downstream re-executes even when the intermediate value is unchanged
    // (paper Section 4.5 semantics).
    let rt = Runtime::new();
    let a = rt.var(3i64);
    let abs = rt.memo("abs", move |rt, &(): &()| a.get(rt).abs());
    let absc = abs.clone();
    let (n_down, bump_down) = counter();
    let down = rt.memo("down", move |rt, &(): &()| {
        bump_down();
        absc.call(rt, ()) + 100
    });
    assert_eq!(down.call(&rt, ()), 103);
    a.set(&rt, -3);
    assert_eq!(down.call(&rt, ()), 103);
    assert_eq!(n_down.get(), 2, "demand node re-ran conservatively");
}

#[test]
fn partitioning_isolates_independent_components() {
    let rt = Runtime::builder().partitioning(true).build();
    let a = rt.var(1i64);
    let b = rt.var(100i64);
    let (n_a, bump_a) = counter();
    let ma = rt.memo_with("comp_a", Strategy::Eager, move |rt, &(): &()| {
        bump_a();
        a.get(rt) + 1
    });
    let mb = rt.memo("comp_b", move |rt, &(): &()| b.get(rt) + 1);
    assert_eq!(ma.call(&rt, ()), 2);
    assert_eq!(mb.call(&rt, ()), 101);
    assert_eq!(n_a.get(), 1);

    // Change component A, then query component B: A's eager node must not
    // be forced (Section 6.3 — irrelevant changes stay batched).
    a.set(&rt, 5);
    assert_eq!(mb.call(&rt, ()), 101);
    assert_eq!(n_a.get(), 1, "query of B did not force A's partition");
    assert!(rt.dirty_count() > 0, "A's change is still pending");

    // A global propagate settles everything.
    rt.propagate();
    assert_eq!(n_a.get(), 2);
    assert_eq!(ma.call(&rt, ()), 6);
}

#[test]
fn without_partitioning_any_call_forces_all_pending_changes() {
    let rt = Runtime::new(); // global inconsistent set
    let a = rt.var(1i64);
    let b = rt.var(100i64);
    let (n_a, bump_a) = counter();
    let ma = rt.memo_with("comp_a", Strategy::Eager, move |rt, &(): &()| {
        bump_a();
        a.get(rt) + 1
    });
    let mb = rt.memo("comp_b", move |rt, &(): &()| b.get(rt) + 1);
    ma.call(&rt, ());
    mb.call(&rt, ());
    a.set(&rt, 5);
    // Calling the unrelated B evaluates the single global set, forcing A.
    mb.call(&rt, ());
    assert_eq!(n_a.get(), 2, "global set forced A's eager node");
    assert_eq!(rt.dirty_count(), 0);
}

#[test]
fn untracked_reads_do_not_invalidate() {
    let rt = Runtime::new();
    let tracked = rt.var(1i64);
    let peeked = rt.var(100i64);
    let (n, bump) = counter();
    let m = rt.memo("m", move |rt, &(): &()| {
        bump();
        tracked.get(rt) + peeked.get_untracked(rt)
    });
    assert_eq!(m.call(&rt, ()), 101);
    peeked.set(&rt, 999);
    assert_eq!(m.call(&rt, ()), 101, "stale by design: untracked read");
    assert_eq!(n.get(), 1);
    tracked.set(&rt, 2);
    assert_eq!(
        m.call(&rt, ()),
        1001,
        "tracked change picks up new peek too"
    );
    assert_eq!(n.get(), 2);
}

#[test]
fn untracked_scope_does_not_leak_into_nested_procedures() {
    let rt = Runtime::new();
    let inner_dep = rt.var(1i64);
    let inner = rt.memo("inner", move |rt, &(): &()| inner_dep.get(rt) * 2);
    let innerc = inner.clone();
    let outer = rt.memo("outer", move |rt, &(): &()| {
        // The *call edge* to `inner` is suppressed, but inner's own
        // dependency on inner_dep must still be recorded.
        rt.untracked(|| innerc.call(rt, ()))
    });
    assert_eq!(outer.call(&rt, ()), 2);
    inner_dep.set(&rt, 5);
    // inner recomputes correctly when asked directly…
    assert_eq!(inner.call(&rt, ()), 10);
    // …while outer (which opted out of the dependence) stays stale.
    assert_eq!(outer.call(&rt, ()), 2);
}

#[test]
fn procedure_writing_tracked_state_converges() {
    // A "normalize" procedure that clamps a variable into [0, 10] by
    // writing it back — the Section 7.3 pattern (balance performs
    // rotations). Writes inside the procedure re-dirty it; determinism
    // guarantees convergence.
    let rt = Runtime::new();
    let x = rt.var(42i64);
    let norm = rt.memo("normalize", move |rt, &(): &()| {
        let v = x.get(rt);
        let clamped = v.clamp(0, 10);
        if clamped != v {
            x.set(rt, clamped);
        }
        clamped
    });
    assert_eq!(norm.call(&rt, ()), 10);
    assert_eq!(x.get(&rt), 10);
    // Re-calling settles to a consistent fixpoint.
    assert_eq!(norm.call(&rt, ()), 10);
    x.set(&rt, -5);
    assert_eq!(norm.call(&rt, ()), 0);
    assert_eq!(x.get(&rt), 0);
    x.set(&rt, 7);
    assert_eq!(norm.call(&rt, ()), 7);
    assert_eq!(x.get(&rt), 7, "in-range value untouched");
}

#[test]
#[should_panic(expected = "DET")]
fn self_recursive_same_arguments_panics() {
    let rt = Runtime::new();
    let bad = rt.memo_recursive("bad", |rt, me, &n: &i64| -> i64 { me.call(rt, n) });
    let _ = bad.call(&rt, 1);
}

#[test]
fn height_order_executes_diamond_layers_once() {
    let (h_execs, _) = schedule_experiment(Scheduling::HeightOrder);
    assert_eq!(h_execs, 2, "c1 and j execute exactly once each");
}

#[test]
fn fifo_order_can_duplicate_work() {
    let (f_execs, j_execs) = schedule_experiment(Scheduling::Fifo);
    assert!(f_execs >= 2);
    assert_eq!(
        j_execs, 2,
        "FIFO pops the join node before its chain is settled"
    );
}

/// Builds a two-level eager graph where the join node `j` reads the source
/// `a` *before* the intermediate `c1`, so a FIFO drain processes `j` with a
/// stale `c1` and must re-run it. Returns (total executions after the
/// change, executions of j alone).
fn schedule_experiment(mode: Scheduling) -> (u64, u32) {
    let rt = Runtime::builder().scheduling(mode).build();
    let a = rt.var(1i64);
    let c1 = rt.memo_with("c1", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let c1c = c1.clone();
    let (nj, bumpj) = counter();
    let j = rt.memo_with("j", Strategy::Eager, move |rt, &(): &()| {
        bumpj();
        // Call c1 first, read a last: successor lists are head-inserted, so
        // a's succ list becomes [j, c1] and a FIFO drain pops j while c1 is
        // still stale.
        c1c.call(rt, ()) + a.get(rt)
    });
    assert_eq!(j.call(&rt, ()), 3);
    let before_j = nj.get();
    let before = rt.stats();
    a.set(&rt, 10);
    rt.propagate();
    assert_eq!(j.call(&rt, ()), 30);
    let d = rt.stats().delta_since(&before);
    (d.executions, nj.get() - before_j)
}

#[test]
fn stats_account_for_cache_behaviour() {
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let m = rt.memo("m", move |rt, k: &i64| a.get(rt) + k);
    for _ in 0..5 {
        m.call(&rt, 7);
    }
    let s = rt.stats();
    assert_eq!(s.calls, 5);
    assert_eq!(s.executions, 1);
    assert_eq!(s.cache_hits, 4);
    assert_eq!(s.nodes_created, 2); // the var + one instance
    assert!(s.edges_created >= 1);
}

#[test]
fn edges_are_deduplicated_per_execution_by_default() {
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let m = rt.memo("m", move |rt, &(): &()| a.get(rt) + a.get(rt) + a.get(rt));
    m.call(&rt, ());
    assert_eq!(rt.stats().edges_created, 1);

    let rt2 = Runtime::builder().dedup_edges(false).build();
    let b = rt2.var(1i64);
    let m2 = rt2.memo("m2", move |rt, &(): &()| b.get(rt) + b.get(rt) + b.get(rt));
    m2.call(&rt2, ());
    assert_eq!(rt2.stats().edges_created, 3, "paper-literal parallel edges");
}

#[test]
fn epoch_dedup_survives_nested_frames() {
    // Nested calls: outer reads `a`, calls inner (which reads `a` itself),
    // then reads `a` again. The nested frame overwrites `a`'s epoch stamp;
    // popping it must restore the outer frame's stamp so the second outer
    // read is recognized as already recorded — without the restore the set
    // "leaks" and a duplicate a→outer edge appears.
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let inner = rt.memo("inner", move |rt, &(): &()| a.get(rt) * 2);
    let ic = inner.clone();
    let outer = rt.memo("outer", move |rt, &(): &()| {
        let x = a.get(rt); // edge a → outer
        let y = ic.call(rt, ()); // nested frame: edge a → inner
        let z = a.get(rt); // must dedup against the first outer read
        x + y + z
    });
    assert_eq!(outer.call(&rt, ()), 4);
    let s = rt.stats();
    assert_eq!(s.edges_created, 3, "exactly a→outer, a→inner, inner→outer");
    assert_eq!(s.dedup_hits, 1, "outer's second read of a deduped");
}

#[test]
fn epoch_dedup_does_not_leak_between_executions() {
    // Stamps left by finished frames must never be mistaken for the current
    // frame's: consecutive executions of different instances reading the
    // same var each record their own edge.
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let m1 = rt.memo("m1", move |rt, &(): &()| a.get(rt));
    let m2 = rt.memo("m2", move |rt, &(): &()| a.get(rt));
    m1.call(&rt, ());
    m2.call(&rt, ());
    let s = rt.stats();
    assert_eq!(s.edges_created, 2, "one edge per instance");
    assert_eq!(s.dedup_hits, 0, "no false dedup across executions");
}

#[test]
fn read_counters_distinguish_borrow_and_clone() {
    let rt = Runtime::new();
    let v = rt.var(7i64);
    assert_eq!(v.get(&rt), 7); // borrow-based typed read
    assert_eq!(v.with(&rt, |&x| x * 2), 14); // borrow-based in-place read
    assert!(rt.raw_read(v.node()).dyn_eq(&7i64)); // boxing read
    let s = rt.stats();
    assert_eq!(s.reads, 3);
    assert_eq!(s.borrow_reads, 2);
    assert_eq!(s.cloned_reads, 1);
}

#[test]
fn memo_probes_count_argument_table_lookups() {
    let rt = Runtime::new();
    let m = rt.memo("m", |_rt, &k: &i64| k * 2);
    for _ in 0..3 {
        m.call(&rt, 1);
    }
    m.call_with(&rt, 2, |&v| assert_eq!(v, 4));
    assert_eq!(rt.stats().memo_probes, 4, "one probe per call");
}

#[test]
fn call_with_matches_call() {
    let rt = Runtime::new();
    let base = rt.var(vec![1i64, 2, 3]);
    let sum = rt.memo("sum", move |rt, &(): &()| base.with(rt, |xs| xs.to_vec()));
    // Cache miss path…
    assert_eq!(sum.call_with(&rt, (), |v| v.len()), 3);
    // …and cache hit path read the same value `call` clones out.
    assert_eq!(sum.call_with(&rt, (), |v| v.iter().sum::<i64>()), 6);
    assert_eq!(sum.call(&rt, ()), vec![1, 2, 3]);
    base.set(&rt, vec![10]);
    assert_eq!(
        sum.call_with(&rt, (), |v| v[0]),
        10,
        "invalidation reaches call_with"
    );
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "on a computation node")]
fn with_value_rejects_computation_nodes() {
    let rt = Runtime::new();
    let m = rt.memo("m", |_rt, &(): &()| 1i64);
    m.call(&rt, ());
    let n = m.instance_node(&()).expect("instance exists");
    rt.with_value(n, |_| ());
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "on a computation node")]
fn raw_read_rejects_computation_nodes() {
    let rt = Runtime::new();
    let m = rt.memo("m", |_rt, &(): &()| 1i64);
    m.call(&rt, ());
    let n = m.instance_node(&()).expect("instance exists");
    let _ = rt.raw_read(n);
}

#[test]
fn stale_dependencies_are_dropped_on_reexecution() {
    // m reads `sel`, then one of a/b. After switching sel, the edge from the
    // unused branch must be gone: changing the now-unused var must not
    // invalidate m.
    let rt = Runtime::new();
    let sel = rt.var(false);
    let a = rt.var(10i64);
    let b = rt.var(20i64);
    let (n, bump) = counter();
    let m = rt.memo("select", move |rt, &(): &()| {
        bump();
        if sel.get(rt) {
            a.get(rt)
        } else {
            b.get(rt)
        }
    });
    assert_eq!(m.call(&rt, ()), 20);
    sel.set(&rt, true);
    assert_eq!(m.call(&rt, ()), 10);
    assert_eq!(n.get(), 2);
    // b is no longer a dependency.
    b.set(&rt, 999);
    assert_eq!(m.call(&rt, ()), 10);
    assert_eq!(n.get(), 2, "change to unused branch did not re-execute");
    // a still is.
    a.set(&rt, 11);
    assert_eq!(m.call(&rt, ()), 11);
    assert_eq!(n.get(), 3);
}

#[test]
fn many_instances_invalidate_independently() {
    let rt = Runtime::new();
    let vars: Vec<_> = (0..10).map(|i| rt.var(i as i64)).collect();
    let vs = vars.clone();
    let (n, bump) = counter();
    let pick = rt.memo("pick", move |rt, &i: &usize| {
        bump();
        vs[i].get(rt)
    });
    for i in 0..10 {
        assert_eq!(pick.call(&rt, i), i as i64);
    }
    assert_eq!(n.get(), 10);
    vars[3].set(&rt, 333);
    for i in 0..10 {
        let expect = if i == 3 { 333 } else { i as i64 };
        assert_eq!(pick.call(&rt, i), expect);
    }
    assert_eq!(n.get(), 11, "only instance 3 re-executed");
}

#[test]
fn batched_changes_coalesce() {
    // Many writes between queries are batched: one query pays once.
    let rt = Runtime::new();
    let a = rt.var(0i64);
    let (n, bump) = counter();
    let m = rt.memo("m", move |rt, &(): &()| {
        bump();
        a.get(rt)
    });
    m.call(&rt, ());
    for i in 1..=100 {
        a.set(&rt, i);
    }
    assert_eq!(m.call(&rt, ()), 100);
    assert_eq!(n.get(), 2, "100 writes, one recomputation");
}

#[test]
fn explain_lists_dependencies() {
    let rt = Runtime::new();
    let a = rt.var(2i64);
    let b = rt.var(3i64);
    let mid = rt.memo("mid", move |rt, &(): &()| a.get(rt) + b.get(rt));
    let midc = mid.clone();
    let top = rt.memo("top", move |rt, &(): &()| midc.call(rt, ()) * 10);
    assert_eq!(top.call(&rt, ()), 50);
    let why = top.explain(&rt, &()).unwrap();
    assert!(why.contains("instance of top (consistent)"), "{why}");
    assert!(why.contains("depends on"), "{why}");
    assert!(why.contains("instance of mid"), "{why}");
    let why_mid = mid.explain(&rt, &()).unwrap();
    assert!(why_mid.contains("location"), "{why_mid}");
    // Uncalled instances have no explanation.
    assert!(top.explain(&rt, &()).is_some());
    let other = rt.memo("other", |_rt, &(): &()| 0i64);
    assert!(other.explain(&rt, &()).is_none());
    // Stale instances are labelled as such.
    a.set(&rt, 100);
    let why = top.explain(&rt, &()).unwrap();
    assert!(why.contains("stale") || why.contains("consistent"), "{why}");
}

#[test]
fn dump_graph_renders_every_node() {
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let m = rt.memo("shown", move |rt, &(): &()| a.get(rt));
    m.call(&rt, ());
    let dump = rt.dump_graph();
    assert!(dump.contains("shown"), "{dump}");
    assert!(dump.contains("loc"), "{dump}");
    assert_eq!(dump.lines().count(), rt.node_count());
}

#[test]
fn bounded_memo_evicts_lru_values() {
    let rt = Runtime::new();
    let base = rt.var(1i64);
    let (n, bump) = counter();
    let m = rt.memo_bounded("bounded", Strategy::Demand, 3, move |rt, &k: &i64| {
        bump();
        base.get(rt) * k
    });
    for k in 1..=3 {
        assert_eq!(m.call(&rt, k), k);
    }
    assert_eq!(n.get(), 3);
    assert_eq!(m.evictions(), 0);
    // A fourth instance evicts the least recently used (k=1).
    assert_eq!(m.call(&rt, 4), 4);
    assert_eq!(m.evictions(), 1);
    // k=2 and k=3 are still live values (pure hits)…
    assert_eq!(m.call(&rt, 2), 2);
    assert_eq!(m.call(&rt, 3), 3);
    assert_eq!(n.get(), 4);
    // …but k=1 was evicted and recomputes (evicting the next LRU victim).
    assert_eq!(m.call(&rt, 1), 1);
    assert_eq!(n.get(), 5);
    assert_eq!(m.capacity(), Some(3));
    assert_eq!(m.instance_count(), 4, "argument table keeps all instances");
}

#[test]
fn evicted_instances_still_propagate_changes() {
    // Eviction must not break dependence: a dependent computed through an
    // evicted instance still invalidates when the underlying var changes.
    let rt = Runtime::new();
    let base = rt.var(10i64);
    let small = rt.memo_bounded("small", Strategy::Demand, 1, move |rt, &k: &i64| {
        base.get(rt) + k
    });
    let sc = small.clone();
    let top = rt.memo("top", move |rt, &(): &()| sc.call(rt, 1) * 100);
    assert_eq!(top.call(&rt, ()), 1100);
    // Evict instance k=1 by touching k=2.
    small.call(&rt, 2);
    assert!(small.evictions() >= 1);
    // The change must still reach `top` through the evicted instance.
    base.set(&rt, 20);
    assert_eq!(top.call(&rt, ()), 2100, "propagation survived eviction");
}

#[test]
fn propagate_steps_preempts_and_resumes() {
    let rt = Runtime::new();
    let src = rt.var(1i64);
    let mut prev = rt.memo_with("p0", Strategy::Eager, move |rt, &(): &()| src.get(rt));
    prev.call(&rt, ());
    for i in 1..20 {
        let below = prev.clone();
        let m = rt.memo_with(&format!("p{i}"), Strategy::Eager, move |rt, &(): &()| {
            below.call(rt, ()) + 1
        });
        m.call(&rt, ());
        prev = m;
    }
    src.set(&rt, 5);
    // One step at a time: must take several slices, then finish.
    let mut slices = 0;
    while !rt.propagate_steps(3) {
        slices += 1;
        assert!(slices < 100, "propagation must terminate");
    }
    assert!(slices >= 2, "a 20-deep chain needs multiple 3-step slices");
    assert_eq!(rt.dirty_count(), 0);
    let before = rt.stats();
    assert_eq!(prev.call(&rt, ()), 24);
    assert_eq!(rt.stats().delta_since(&before).executions, 0);
}

/// Builds the diamond Total(Left(base), Right(rate)) and returns the runtime
/// plus the stats after the first full evaluation, optionally pre-seeding
/// each memo's node height from the static strata (Left/Right at 1, Total
/// at 2) as the compiler's SCC condensation would.
fn diamond_with_hints(seed: bool) -> alphonse::Stats {
    let rt = Runtime::new();
    let base = rt.var(10i64);
    let rate = rt.var(3i64);
    let left = rt.memo("Left", move |rt, &(): &()| base.get(rt) * 2);
    let right = rt.memo("Right", move |rt, &(): &()| rate.get(rt) + 1);
    let (lc, rc) = (left.clone(), right.clone());
    let total = rt.memo("Total", move |rt, &(): &()| {
        lc.call(rt, ()) + rc.call(rt, ())
    });
    if seed {
        left.set_height_hint(1);
        right.set_height_hint(1);
        total.set_height_hint(2);
    }
    assert_eq!(total.call(&rt, ()), 24);
    rt.stats()
}

#[test]
fn static_height_seeding_eliminates_online_raises() {
    let unseeded = diamond_with_hints(false);
    assert_eq!(unseeded.height_seeded, 0);
    assert!(
        unseeded.height_raises > 0,
        "the diamond built bottom-up must raise heights online: {unseeded:?}"
    );

    let seeded = diamond_with_hints(true);
    assert_eq!(
        seeded.height_seeded, 3,
        "all three instances took their hint"
    );
    assert_eq!(
        seeded.height_raises, 0,
        "nodes born at their static stratum never cascade: {seeded:?}"
    );
}

#[test]
fn overestimated_height_hints_stay_correct() {
    let rt = Runtime::new();
    let a = rt.var(1i64);
    let m = rt.memo("wide", move |rt, &(): &()| a.get(rt) * 7);
    // A wildly overestimated stratum: heights only order processing.
    m.set_height_hint(1000);
    assert_eq!(m.call(&rt, ()), 7);
    a.set(&rt, 3);
    assert_eq!(m.call(&rt, ()), 21);
    assert_eq!(rt.stats().height_seeded, 1);
}
