//! Batched write transactions: observational equivalence and cutoff
//! regressions.
//!
//! A `Runtime::batch` of N writes must be indistinguishable from N
//! sequential `Var::set` calls — same final variable values, same memo
//! results, same quiescent state — while performing no *more* recomputation
//! (coalescing can only shrink the dirty frontier, e.g. a location written
//! and then restored to its pre-batch value inside one batch never dirties
//! at all).

use alphonse::{Memo, Runtime, Scheduling, Strategy};
use proptest::prelude::*;

/// A fixed dataflow shape: `vars` feed group memos, group memos feed one
/// total memo. Deterministic, so two runtimes built from it are twins.
struct Fixture {
    rt: Runtime,
    vars: Vec<alphonse::Var<i64>>,
    groups: Vec<Memo<(), i64>>,
    total: Memo<(), i64>,
}

fn fixture(n_vars: usize, group: usize, strategy: Strategy, fifo: bool) -> Fixture {
    let rt = Runtime::builder()
        .scheduling(if fifo {
            Scheduling::Fifo
        } else {
            Scheduling::HeightOrder
        })
        .build();
    let vars: Vec<_> = (0..n_vars).map(|i| rt.var(i as i64)).collect();
    let groups: Vec<Memo<(), i64>> = vars
        .chunks(group)
        .enumerate()
        .map(|(g, chunk)| {
            let chunk = chunk.to_vec();
            rt.memo_with(&format!("group{g}"), strategy, move |rt, &(): &()| {
                chunk.iter().map(|v| v.get(rt)).sum()
            })
        })
        .collect();
    let gs = groups.clone();
    let total = rt.memo_with("total", strategy, move |rt, &(): &()| {
        gs.iter().map(|g| g.call(rt, ())).sum()
    });
    // Warm: populate the dependency graph, reach quiescence.
    total.call(&rt, ());
    rt.propagate();
    Fixture {
        rt,
        vars,
        groups,
        total,
    }
}

/// Applies `script` to twin fixtures — sequentially on one, as a single
/// batch on the other — and checks observational equivalence plus the
/// no-extra-work bound.
fn check_equivalence(n_vars: usize, script: &[(usize, i64)], strategy: Strategy, fifo: bool) {
    let seq = fixture(n_vars, 4, strategy, fifo);
    let bat = fixture(n_vars, 4, strategy, fifo);
    let seq_before = seq.rt.stats();
    let bat_before = bat.rt.stats();

    for &(i, v) in script {
        seq.vars[i % n_vars].set(&seq.rt, v);
    }
    bat.rt.batch(|tx| {
        for &(i, v) in script {
            bat.vars[i % n_vars].set_in(tx, v);
        }
    });

    seq.rt.propagate();
    bat.rt.propagate();
    assert_eq!(seq.rt.dirty_count(), 0);
    assert_eq!(bat.rt.dirty_count(), 0, "batch must reach quiescence too");

    for (a, b) in seq.vars.iter().zip(&bat.vars) {
        assert_eq!(a.get(&seq.rt), b.get(&bat.rt), "final variable values");
    }
    for (a, b) in seq.groups.iter().zip(&bat.groups) {
        assert_eq!(a.call(&seq.rt, ()), b.call(&bat.rt, ()), "group results");
    }
    assert_eq!(
        seq.total.call(&seq.rt, ()),
        bat.total.call(&bat.rt, ()),
        "total result"
    );

    let ds = seq.rt.stats().delta_since(&seq_before);
    let db = bat.rt.stats().delta_since(&bat_before);
    assert!(
        db.executions <= ds.executions,
        "batch re-executed more than sequential: {} > {}",
        db.executions,
        ds.executions
    );
    assert!(
        db.dirtied <= ds.dirtied,
        "batch dirtied more than sequential: {} > {}",
        db.dirtied,
        ds.dirtied
    );
    assert_eq!(db.batches, 1);
    assert_eq!(db.batched_writes, script.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `Runtime::batch` of N writes ≡ N sequential `Var::set` calls, for
    /// both strategies and both drain orders, under scripts heavy with
    /// repeated writes to the same location (to exercise coalescing).
    #[test]
    fn batch_is_observationally_equivalent_to_sequential_sets(
        script in proptest::collection::vec((0usize..12, -50i64..50), 1..60),
        eager in any::<bool>(),
        fifo in any::<bool>(),
    ) {
        let strategy = if eager { Strategy::Eager } else { Strategy::Demand };
        check_equivalence(12, &script, strategy, fifo);
    }
}

#[test]
fn same_value_twice_in_one_batch_triggers_zero_propagation() {
    let f = fixture(8, 4, Strategy::Eager, false);
    let v0 = f.vars[0].get(&f.rt);
    let before = f.rt.stats();
    f.rt.batch(|tx| {
        f.vars[0].set_in(tx, v0);
        f.vars[0].set_in(tx, v0);
    });
    let d = f.rt.stats().delta_since(&before);
    assert_eq!(f.rt.dirty_count(), 0, "unchanged value must not dirty");
    assert_eq!(d.dirtied, 0);
    assert_eq!(d.changes, 0);
    assert_eq!(d.comparisons, 1, "one cutoff comparison per location");
    assert_eq!(d.coalesced_writes, 1);
    let before = f.rt.stats();
    f.rt.propagate();
    assert_eq!(f.rt.stats().delta_since(&before).executions, 0);
}

#[test]
fn same_value_across_batches_triggers_zero_propagation() {
    let f = fixture(8, 4, Strategy::Eager, false);
    f.rt.batch(|tx| f.vars[3].set_in(tx, 99));
    f.rt.propagate();
    let before = f.rt.stats();
    f.rt.batch(|tx| f.vars[3].set_in(tx, 99));
    let d = f.rt.stats().delta_since(&before);
    assert_eq!(f.rt.dirty_count(), 0);
    assert_eq!(d.dirtied, 0);
    assert_eq!(d.changes, 0);
}

#[test]
fn write_then_restore_in_one_batch_never_dirties() {
    // Coalescing strictly beats the sequential path here: set-then-restore
    // collapses to a single compare-equal against the pre-batch value,
    // while sequential sets would dirty and re-execute (then cut off).
    let f = fixture(8, 4, Strategy::Eager, false);
    let v0 = f.vars[0].get(&f.rt);
    let before = f.rt.stats();
    f.rt.batch(|tx| {
        f.vars[0].set_in(tx, v0 + 1000);
        f.vars[0].set_in(tx, v0);
    });
    let d = f.rt.stats().delta_since(&before);
    assert_eq!(f.rt.dirty_count(), 0);
    assert_eq!(d.dirtied, 0);
    assert_eq!(d.executions, 0);
}

#[test]
fn scratch_high_water_mark_stops_growing_at_steady_state() {
    // After the first full propagation wave the scratch buffer has seen the
    // widest fan-out in the graph; later waves must not grow it — i.e.
    // successor fan-out is allocation-free at steady state.
    let f = fixture(64, 8, Strategy::Eager, false);
    for i in 0..64 {
        f.vars[i].set(&f.rt, 1_000 + i as i64);
    }
    f.rt.propagate();
    let hwm_after_first_wave = f.rt.stats().scratch_hwm;
    assert!(hwm_after_first_wave > 0, "propagation must use the scratch");
    for wave in 0..10 {
        f.rt.batch(|tx| {
            for i in 0..64 {
                f.vars[i].set_in(tx, (wave * 64 + i) as i64);
            }
        });
        f.rt.propagate();
    }
    assert_eq!(
        f.rt.stats().scratch_hwm,
        hwm_after_first_wave,
        "scratch buffer grew after steady state: fan-out allocated"
    );
}
