//! Compile-time and runtime proof that a whole session crosses threads.
//!
//! `Runtime` is a `Send` value — the struct-of-arrays node store, every
//! cached `Box<dyn Value>`, every executor closure and every handle
//! (`Var`, `Memo`) move together. These assertions are the API contract
//! the `SessionPool` serving layer builds on; if a field ever regresses to
//! a non-`Send` type (`Rc`, `RefCell`, a non-`Send` trait object), this
//! file stops compiling.

use alphonse::pool::SessionPool;
use alphonse::{Memo, Runtime, Var};

fn assert_send<T: Send>() {}

#[test]
fn session_types_are_send() {
    assert_send::<Runtime>();
    assert_send::<Var<i64>>();
    assert_send::<Var<String>>();
    assert_send::<Memo<(), i64>>();
    assert_send::<Memo<String, Vec<i64>>>();
    assert_send::<SessionPool<Runtime>>();
}

/// A session built on one thread keeps full history after moving to
/// another: cached results stay cached, edits propagate.
#[test]
fn session_moves_across_threads() {
    let rt = Runtime::new();
    let x = rt.var(2i64);
    let sq = rt.memo("sq", move |rt, &(): &()| x.get(rt) * x.get(rt));
    assert_eq!(sq.call(&rt, ()), 4);
    let execs_before = rt.stats().executions;

    let handle = std::thread::spawn(move || {
        // Cache survives the move: this call must not re-execute.
        assert_eq!(sq.call(&rt, ()), 4);
        assert_eq!(rt.stats().executions, execs_before);
        x.set(&rt, 3);
        assert_eq!(sq.call(&rt, ()), 9);
        rt
    });
    let rt = handle
        .join()
        .expect("moved session works on the new thread");
    // And back again.
    assert_eq!(rt.stats().executions, execs_before + 1);
}
