//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so the pre-approved
//! external crates are vendored as minimal, API-compatible stubs (see
//! DESIGN.md, "Dependencies"). This harness keeps criterion's calling
//! convention (`benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) and performs a simple
//! warm-up + timed-loop measurement, reporting mean ns/iter to stdout.
//! It has none of criterion's statistics, plotting, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            name,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _parent: self,
        }
    }
}

/// Identifier for one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Accepted for API compatibility; the stub sizes its sample by the
    /// measurement window instead of a fixed sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        f(&mut bencher, input);
        match bencher.report {
            Some((iters, mean_ns)) => {
                println!(
                    "{}/{}: {:>12.1} ns/iter ({} iters)",
                    self.name, id.id, mean_ns, iters
                )
            }
            None => println!("{}/{}: no measurement taken", self.name, id.id),
        }
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId { id: name.into() };
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, mean_ns)) => {
                println!(
                    "{}/{}: {:>12.1} ns/iter ({} iters)",
                    self.name, id.id, mean_ns, iters
                )
            }
            None => println!("{}/{}: no measurement taken", self.name, id.id),
        }
        self
    }

    pub fn finish(self) {}
}

/// Runs the measured closure; mirrors `criterion::Bencher`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<(u64, f64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        let measure_end = start + self.measurement;
        while Instant::now() < measure_end {
            black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        let mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        self.report = Some((iters, mean_ns));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
