//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the pre-approved
//! external crates are vendored as minimal, API-compatible stubs (see
//! DESIGN.md, "Dependencies"). This implementation keeps proptest's
//! surface — `Strategy` combinators, `proptest!`/`prop_oneof!`/
//! `prop_assert*!` macros, `collection::vec`, `option::of`, `any` — but
//! generates cases from a deterministic per-test RNG and does **not**
//! shrink failures. Failing cases are reproducible because the RNG seed
//! is derived from the test's module path and name, and the case index
//! is printed on failure.

pub mod test_runner {
    /// Configuration accepted by `proptest! { #![proptest_config(...)] }`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Number of cases to run, honouring the `PROPTEST_CASES`
        /// environment variable like upstream proptest does.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed assertion inside a `proptest!` body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Derive a stable seed from the test's fully qualified name so
        /// every run of a given test replays the same case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking; a
    /// strategy simply draws a value from the RNG. The combinator surface
    /// (`prop_map`, `prop_flat_map`, `prop_recursive`, `boxed`) matches
    /// upstream so test code is source-compatible.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Build recursive structures of bounded depth. `desired_size`
        /// and `expected_branch_size` are accepted for API compatibility
        /// but only `depth` is honoured.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                // Mix leaves back in at every level so shallow values
                // remain reachable from the top-level strategy.
                current = Union::new(vec![(1, leaf.clone()), (3, deeper)]).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy (upstream's `BoxedStrategy`
    /// is likewise `Clone`).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! requires a positive total weight"
            );
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, strat) in &self.options {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + offset as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    ((start as i128) + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A `Vec` of strategies generates element-wise (upstream behaviour).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for `collection::vec` (mirrors upstream's
    /// `SizeRange`, constructible from a `usize` or a `Range<usize>`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Upstream defaults to a high probability of Some.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports the subset of upstream syntax used in
/// this workspace: an optional `#![proptest_config(...)]` header followed
/// by test functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = __config.resolved_cases();
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a `proptest!` body; failures abort only the current case
/// closure via `return Err(...)`, matching upstream semantics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges produce in-bounds values.
        #[test]
        fn range_strategy_in_bounds(v in -50i64..50, w in 0u32..7) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!(w < 7);
        }

        /// Mapped tuples compose.
        #[test]
        fn map_and_tuple((a, b) in (0usize..10, 0usize..10).prop_map(|(x, y)| (x + 1, y + 1))) {
            prop_assert!((1..=10).contains(&a));
            prop_assert!((1..=10).contains(&b));
        }

        /// collection::vec honours both exact and ranged sizes.
        #[test]
        fn vec_sizes(
            exact in proptest::collection::vec(0i64..5, 3),
            ranged in proptest::collection::vec(0i64..5, 1..4),
        ) {
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(!ranged.is_empty() && ranged.len() < 4);
        }

        /// prop_oneof respects arm typing and weights reach all arms.
        #[test]
        fn oneof_arms(v in prop_oneof![2 => Just(1i64), 1 => Just(2i64)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Expr {
            Leaf(#[allow(dead_code)] i64),
            Pair(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> u32 {
            match e {
                Expr::Leaf(_) => 0,
                Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Expr::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::from_seed(99);
        let mut saw_pair = false;
        for _ in 0..200 {
            let e = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(depth(&e) <= 4);
            saw_pair |= matches!(e, Expr::Pair(..));
        }
        assert!(saw_pair, "recursion should produce compound values");
    }
}
