//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the pre-approved
//! external crates are vendored as minimal, API-compatible stubs (see
//! DESIGN.md, "Dependencies"). Only the surface the workspace actually
//! calls is provided: `SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): tiny, fast, and good
//! enough for workload shuffling and property-test case generation. It is
//! deterministic for a given seed, which the benchmarks rely on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range {}..={}", start, end);
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = r.gen_range(0usize..=9);
            assert!(w <= 9);
        }
    }

    #[test]
    fn covers_full_range() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
