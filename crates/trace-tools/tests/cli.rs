//! Smoke tests of the `alphonse-trace` binary: the why/waves/waste commands
//! over a real recorded trace, and the truncation refusal.

use alphonse::trace::{Recorder, TraceSink};
use alphonse::{Runtime, Strategy};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_alphonse-trace"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("alphonse-trace-test-{}-{name}", std::process::id()))
}

/// Writes a complete diamond trace to a temp file and returns its path.
fn recorded_diamond(name: &str, capacity: usize) -> PathBuf {
    let rt = Runtime::new();
    let rec = Arc::new(Recorder::new(capacity));
    rt.set_sink(Some(rec.clone() as Arc<dyn TraceSink>));
    let a = rt.var_named("a", 10i64);
    let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
    let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let (l, r) = (left.clone(), right.clone());
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        l.call(rt, ()) + r.call(rt, ())
    });
    top.call(&rt, ());
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);
    let path = temp_path(name);
    std::fs::write(&path, rec.to_jsonl()).unwrap();
    path
}

#[test]
fn why_waves_waste_run_over_a_recorded_trace() {
    let path = recorded_diamond("full.jsonl", 4096);

    let why = bin().args(["why", "top"]).arg(&path).output().unwrap();
    assert!(
        why.status.success(),
        "{}",
        String::from_utf8_lossy(&why.stderr)
    );
    let out = String::from_utf8_lossy(&why.stdout);
    assert!(out.contains("why top"), "{out}");
    assert!(out.contains("write a (n0) changed=true"), "{out}");

    let dot = bin()
        .args(["why", "top", "--dot"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(dot.status.success());
    assert!(String::from_utf8_lossy(&dot.stdout).contains("digraph why"));

    let waves = bin().arg("waves").arg(&path).output().unwrap();
    assert!(waves.status.success());
    let out = String::from_utf8_lossy(&waves.stdout);
    assert!(out.contains("wave 1:"), "{out}");
    assert!(out.contains("critical path:"), "{out}");

    let waste = bin().arg("waste").arg(&path).output().unwrap();
    assert!(waste.status.success());
    let out = String::from_utf8_lossy(&waste.stdout);
    assert!(out.contains("productive"), "{out}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn why_refuses_truncated_traces_without_the_flag() {
    // Capacity 4 cannot hold the diamond's event stream: events drop.
    let path = recorded_diamond("truncated.jsonl", 4);

    let refused = bin().args(["why", "top"]).arg(&path).output().unwrap();
    assert!(!refused.status.success(), "truncated trace must be refused");
    let err = String::from_utf8_lossy(&refused.stderr);
    assert!(err.contains("truncated"), "{err}");
    assert!(err.contains("--allow-truncated"), "{err}");

    // With the override the query runs (it may still fail to find a chain —
    // only the refusal itself must be bypassed).
    let allowed = bin()
        .args(["why", "top", "--allow-truncated"])
        .arg(&path)
        .output()
        .unwrap();
    let err = String::from_utf8_lossy(&allowed.stderr);
    assert!(!err.contains("--allow-truncated"), "{err}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_prints_and_diffs_snapshots() {
    // Two snapshots of the same runtime, a few waves apart.
    let rt = Runtime::new();
    let v = rt.var(0i64);
    let m = rt.memo_with("double", Strategy::Eager, move |rt, &(): &()| v.get(rt) * 2);
    m.call(&rt, ());
    for i in 1..=3 {
        v.set(&rt, i);
        rt.propagate();
    }
    let before = temp_path("metrics-before.json");
    std::fs::write(&before, rt.metrics_snapshot().to_json()).unwrap();
    for i in 4..=8 {
        v.set(&rt, i);
        rt.propagate();
    }
    let after = temp_path("metrics-after.json");
    std::fs::write(&after, rt.metrics_snapshot().to_json()).unwrap();

    let print = bin().arg("metrics").arg(&after).output().unwrap();
    assert!(
        print.status.success(),
        "{}",
        String::from_utf8_lossy(&print.stderr)
    );
    let out = String::from_utf8_lossy(&print.stdout);
    assert!(out.contains("waves"), "{out}");
    assert!(out.contains("wave_latency_ns"), "{out}");
    assert!(out.contains("p99="), "{out}");

    // Diff mode subtracts: 8 total waves − 3 at baseline = 5.
    let diff = bin()
        .arg("metrics")
        .arg(&after)
        .arg(&before)
        .output()
        .unwrap();
    assert!(
        diff.status.success(),
        "{}",
        String::from_utf8_lossy(&diff.stderr)
    );
    let out = String::from_utf8_lossy(&diff.stdout);
    assert!(out.contains("metrics delta"), "{out}");
    let wave_line = out
        .lines()
        .find(|l| l.trim_start().starts_with("waves "))
        .unwrap_or_else(|| panic!("no waves counter line in:\n{out}"));
    assert!(wave_line.trim_end().ends_with('5'), "{wave_line}");

    let refused = bin()
        .arg("metrics")
        .arg("/no/such/metrics.json")
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(2));

    std::fs::remove_file(&before).ok();
    std::fs::remove_file(&after).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let none = bin().output().unwrap();
    assert_eq!(none.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&none.stderr).contains("usage:"));

    let unknown = bin().arg("explode").output().unwrap();
    assert_eq!(unknown.status.code(), Some(2));

    let missing = bin()
        .args(["why", "top", "/no/such/file.jsonl"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
}
