//! Dynamic ⊆ static: cross-validation of the runtime dependence graph
//! against the compiler's abstract dependency graph.
//!
//! Two suites share one generic driver ([`drive`]):
//!
//! * the whole lint corpus (the paper's programs plus every lint fixture)
//!   is executed under a `JsonlSink` and the recorded trace is checked
//!   against `depgraph::build` output via the same
//!   [`staticgraph::check`] logic the `alphonse-trace check-static` CLI
//!   runs in CI;
//! * a proptest harness generates hundreds of random Alphonse-L programs
//!   (globals, plain/cached procedures, checked/unchecked reads, tracked
//!   writes, calls) and asserts the over-approximation holds for every
//!   one — any dynamic edge without static cover is a soundness bug in
//!   the abstract interpretation.

use alphonse::trace::JsonlSink;
use alphonse::Runtime;
use alphonse_lang::hir::Ty;
use alphonse_lang::{compile, depgraph, effects, Interp, Val};
use alphonse_trace_tools::model::TraceFile;
use alphonse_trace_tools::staticgraph::{self, StaticGraphFile};
use proptest::prelude::*;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// An `io::Write` that appends into a shared buffer, so the trace written
/// by the sink (which owns its writer) can be read back afterwards.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Executes `source` under a JSONL trace with a generic mutator script:
/// call every all-INTEGER-parameter procedure, try every zero-argument
/// method on object-valued results (so maintained methods like `height()`
/// run too), bump every INTEGER global, and repeat with shifted arguments.
/// Runtime errors and panics (fuel exhaustion and F_ON_STACK aborts on
/// deliberately-divergent lint fixtures, NIL dereferences in
/// partially-driven programs) are ignored — whatever trace was produced
/// up to that point is still a valid sample of the dynamic graph.
///
/// Returns the parsed trace and the program's static graph, round-tripped
/// through its JSON serialization so the document format is exercised too.
fn drive(source: &str) -> (TraceFile, StaticGraphFile) {
    let program = compile(source).expect("program compiles");
    let table = effects::infer(&program);
    let graph_json = depgraph::build(&program, &table).to_json(&program, "test.alf");
    let graph = StaticGraphFile::parse(&graph_json).expect("graph round-trips");

    let buf = SharedBuf::default();
    let rt = Runtime::new();
    rt.set_sink(Some(Arc::new(
        JsonlSink::new(buf.clone()).expect("sink writes"),
    )));
    let interp = Interp::with_runtime(Arc::clone(&program), rt).expect("interp builds");
    // Deliberately-divergent fixtures (W05) must fail fast, not hang.
    interp.set_fuel(200_000);

    let callable: Vec<(String, usize)> = program
        .procs
        .iter()
        .filter(|p| p.params.iter().all(|(_, t)| *t == Ty::Integer))
        .map(|p| (p.name.clone(), p.params.len()))
        .collect();
    let int_globals: Vec<String> = program
        .globals
        .iter()
        .filter(|g| g.ty == Ty::Integer)
        .map(|g| g.name.clone())
        .collect();

    let mut method_names: Vec<String> = program
        .types
        .iter()
        .flat_map(|t| t.methods.iter())
        .filter(|m| m.params.is_empty())
        .map(|m| m.name.clone())
        .collect();
    method_names.sort();
    method_names.dedup();

    let mut pool: Vec<Val> = Vec::new();
    for round in 0..3i64 {
        for (name, arity) in &callable {
            let args: Vec<Val> = (0..*arity as i64).map(|i| Val::Int(round + i)).collect();
            // The runtime aborts F_ON_STACK violations (w05_bad) with a
            // panic by design; the trace up to the abort is still valid.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| interp.call(name, args)));
            if let Ok(Ok(v @ Val::Obj(_))) = outcome {
                if pool.len() < 64 {
                    pool.push(v);
                }
            }
        }
        for obj in pool.clone() {
            for m in &method_names {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    interp.call_method(obj.clone(), m, vec![])
                }));
                if let Ok(Ok(v @ Val::Obj(_))) = outcome {
                    if pool.len() < 64 {
                        pool.push(v);
                    }
                }
            }
        }
        for g in &int_globals {
            if let Ok(Val::Int(v)) = interp.global(g) {
                let _ = interp.set_global(g, Val::Int(v + 1));
            }
        }
    }
    drop(interp); // flushes the sink

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 trace");
    let trace = TraceFile::parse(&text).expect("trace parses");
    (trace, graph)
}

fn assert_covered(name: &str, source: &str) {
    let (trace, graph) = drive(source);
    let report = staticgraph::check(&trace, &graph);
    assert!(
        report.is_covered(),
        "{name}: dynamic edge without static cover\n{}",
        report.render()
    );
}

#[test]
fn lint_corpus_dynamic_edges_are_statically_covered() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../lang/tests/lint");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("lint corpus exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "alf"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 22, "corpus shrank: {paths:?}");
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = fs::read_to_string(&path).expect("fixture is readable");
        assert_covered(&name, &source);
    }
}

// ---------------------------------------------------------------------------
// Random-program generation
// ---------------------------------------------------------------------------

/// A random expression over `n_globals` globals, `n_params` parameters of
/// the current procedure, and calls to the first `n_callees` procedures
/// (lower-indexed only, so generated programs never recurse and always
/// terminate). `depth` bounds nesting.
#[derive(Debug, Clone)]
enum GenExpr {
    Lit(i64),
    Param(usize),
    Global(usize),
    UncheckedGlobal(usize),
    Bin(char, Box<GenExpr>, Box<GenExpr>),
    Call(usize, Vec<GenExpr>),
}

/// One generated procedure: cached or plain, arity, body statements
/// (assignments to globals) and a return expression.
#[derive(Debug, Clone)]
struct GenProc {
    cached: bool,
    arity: usize,
    writes: Vec<(usize, GenExpr)>,
    ret: GenExpr,
}

#[derive(Debug, Clone)]
struct GenProgram {
    n_globals: usize,
    procs: Vec<GenProc>,
}

fn expr_strategy(
    n_globals: usize,
    n_params: usize,
    arities: Vec<usize>,
    depth: u32,
) -> BoxedStrategy<GenExpr> {
    let leaf = {
        let mut arms: Vec<(u32, BoxedStrategy<GenExpr>)> =
            vec![(1, (-9i64..10).prop_map(GenExpr::Lit).boxed())];
        if n_params > 0 {
            arms.push((1, (0..n_params).prop_map(GenExpr::Param).boxed()));
        }
        if n_globals > 0 {
            arms.push((2, (0..n_globals).prop_map(GenExpr::Global).boxed()));
            arms.push((1, (0..n_globals).prop_map(GenExpr::UncheckedGlobal).boxed()));
        }
        proptest::strategy::Union::new(arms).boxed()
    };
    if depth == 0 {
        return leaf;
    }
    let sub = expr_strategy(n_globals, n_params, arities.clone(), depth - 1);
    let mut arms: Vec<(u32, BoxedStrategy<GenExpr>)> = vec![
        (2, leaf.clone()),
        (
            2,
            (
                prop_oneof![Just('+'), Just('-'), Just('*')],
                sub.clone(),
                sub.clone(),
            )
                .prop_map(|(op, a, b)| GenExpr::Bin(op, Box::new(a), Box::new(b)))
                .boxed(),
        ),
    ];
    if !arities.is_empty() {
        arms.push((
            2,
            (0..arities.len())
                .prop_flat_map(move |callee| {
                    let argc = arities[callee];
                    (
                        Just(callee),
                        proptest::collection::vec(sub.clone(), argc..argc + 1),
                    )
                })
                .prop_map(|(callee, args)| GenExpr::Call(callee, args))
                .boxed(),
        ));
    }
    proptest::strategy::Union::new(arms).boxed()
}

fn program_strategy() -> BoxedStrategy<GenProgram> {
    (2usize..5, 1usize..5)
        .prop_flat_map(|(n_globals, n_procs)| {
            // Arities are fixed first so call sites can match them.
            proptest::collection::vec(0usize..3, n_procs..n_procs + 1)
                .prop_flat_map(move |arities| {
                    let procs: Vec<BoxedStrategy<GenProc>> = (0..arities.len())
                        .map(|i| {
                            let arity = arities[i];
                            let callees: Vec<usize> = arities[..i].to_vec();
                            let expr = expr_strategy(n_globals, arity, callees, 2);
                            (
                                any::<bool>(),
                                proptest::collection::vec(((0..n_globals), expr.clone()), 0..3),
                                expr,
                            )
                                .prop_map(move |(cached, writes, ret)| GenProc {
                                    cached,
                                    arity,
                                    writes,
                                    ret,
                                })
                                .boxed()
                        })
                        .collect();
                    procs
                })
                .prop_map(move |procs| GenProgram { n_globals, procs })
        })
        .boxed()
}

fn render_expr(e: &GenExpr, out: &mut String) {
    match e {
        GenExpr::Lit(v) => {
            if *v < 0 {
                out.push_str(&format!("(0 - {})", -v));
            } else {
                out.push_str(&v.to_string());
            }
        }
        GenExpr::Param(i) => out.push_str(&format!("a{i}")),
        GenExpr::Global(g) => out.push_str(&format!("g{g}")),
        GenExpr::UncheckedGlobal(g) => out.push_str(&format!("((*UNCHECKED*) g{g})")),
        GenExpr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        GenExpr::Call(p, args) => {
            out.push_str(&format!("P{p}("));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn render_program(p: &GenProgram) -> String {
    let mut out = String::new();
    let names: Vec<String> = (0..p.n_globals).map(|g| format!("g{g}")).collect();
    out.push_str(&format!("VAR {} : INTEGER;\n", names.join(", ")));
    for (i, proc) in p.procs.iter().enumerate() {
        if proc.cached {
            out.push_str("(*CACHED*) ");
        }
        let params: Vec<String> = (0..proc.arity).map(|a| format!("a{a}")).collect();
        let sig = if params.is_empty() {
            String::new()
        } else {
            format!("{} : INTEGER", params.join(", "))
        };
        out.push_str(&format!("PROCEDURE P{i}({sig}) : INTEGER =\nBEGIN\n"));
        for (g, e) in &proc.writes {
            out.push_str(&format!("    g{g} := "));
            render_expr(e, &mut out);
            out.push_str(";\n");
        }
        out.push_str("    RETURN ");
        render_expr(&proc.ret, &mut out);
        out.push_str(&format!(";\nEND P{i};\n"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The abstract graph is a sound over-approximation: for every random
    /// program and a generic mutation script, every dependence edge the
    /// runtime records is covered by a static read/write/call edge.
    #[test]
    fn random_programs_dynamic_subset_of_static(p in program_strategy()) {
        let source = render_program(&p);
        let (trace, graph) = drive(&source);
        let report = staticgraph::check(&trace, &graph);
        prop_assert!(
            report.is_covered(),
            "dynamic edge without static cover in:\n{source}\n{}",
            report.render()
        );
    }
}
