//! Level-parallel wave propagation must be a legal linearization of the
//! sequential schedule: same final values, same work counters, same
//! per-wave propagation analytics — the only permitted difference is the
//! level brackets themselves.
//!
//! Each run records its full event stream with a `Recorder`, the JSONL dump
//! is parsed back with [`TraceFile::parse`], and the per-wave statistics
//! (dirtied / executed / changed / cutoffs / cache hits, causal depth,
//! critical path) must be *identical* between the parallel and sequential
//! runs once the parallel report's level fields (`levels`,
//! `level_width_max`, `level_executed` — zero by construction in sequential
//! traces) are normalized away. Within a wave the runtime books and commits
//! a level's executions in batch order — the exact order the sequential
//! evaluator would have popped them — so even the causal critical path must
//! agree event-for-event, not just in aggregate.
//!
//! Without the `parallel` feature `set_parallelism` is a stub and this
//! degenerates to sequential ≡ sequential; the level-bracket legality
//! assertions are feature-gated accordingly.

use alphonse::trace::{Recorder, TraceSink};
use alphonse::{Memo, Runtime, Strategy, Var};
use alphonse_trace_tools::model::TraceFile;
use alphonse_trace_tools::report::{waves, WavesReport};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

const VARS: usize = 8;
const GROUP: usize = 4;

/// The `pool_equivalence` fixture shape: vars feed eager group memos feed
/// one eager total, with an always-on recorder.
struct Session {
    rt: Runtime,
    rec: Arc<Recorder>,
    vars: Vec<Var<i64>>,
    total: Memo<(), i64>,
}

fn session(seed: i64, parallelism: usize) -> Session {
    let rt = Runtime::new();
    rt.set_parallelism(parallelism);
    let rec = Arc::new(Recorder::new(1 << 16));
    rt.set_sink(Some(Arc::clone(&rec) as Arc<dyn TraceSink>));
    let vars: Vec<_> = (0..VARS).map(|i| rt.var(seed + i as i64)).collect();
    let groups: Vec<Memo<(), i64>> = vars
        .chunks(GROUP)
        .enumerate()
        .map(|(g, chunk)| {
            let chunk = chunk.to_vec();
            rt.memo_with(
                &format!("group{g}"),
                Strategy::Eager,
                move |rt, &(): &()| chunk.iter().map(|v| v.get(rt)).sum(),
            )
        })
        .collect();
    let gs = groups;
    let total = rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
        gs.iter().map(|g| g.call(rt, ())).sum()
    });
    total.call(&rt, ());
    rt.propagate();
    Session {
        rt,
        rec,
        vars,
        total,
    }
}

/// Replays the edit script: one propagation wave per script entry.
fn apply(s: &Session, script: &[Vec<(usize, i64)>]) {
    for wave in script {
        for &(i, v) in wave {
            s.vars[i % VARS].set(&s.rt, v);
        }
        s.rt.propagate();
    }
}

/// Offline wave analytics of everything the session's recorder has seen.
fn analytics(rec: &Recorder) -> WavesReport {
    let tf = TraceFile::parse(&rec.to_jsonl()).expect("recorder emits parseable JSONL");
    waves(&tf)
}

/// Strips the level brackets' footprint from a report, leaving only the
/// schedule-independent propagation statistics.
fn without_levels(mut report: WavesReport) -> WavesReport {
    for w in &mut report.waves {
        w.levels = 0;
        w.level_width_max = 0;
        w.level_executed = 0;
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_schedule_matches_sequential(
        workers in 1usize..=4,
        script in vec(vec((0usize..VARS, -16i64..16), 1..6), 1..5),
    ) {
        // Sequential reference.
        let seq = session(3, 0);
        apply(&seq, &script);
        prop_assert_eq!(seq.rt.dirty_count(), 0);
        let seq_waves = analytics(&seq.rec);
        let seq_stats = seq.rt.stats();
        let seq_vals: Vec<i64> = seq.vars.iter().map(|v| v.get_untracked(&seq.rt)).collect();
        let seq_total = seq.total.call(&seq.rt, ());

        // The same session driven through the level scheduler.
        let par = session(3, workers);
        apply(&par, &script);
        prop_assert_eq!(par.rt.dirty_count(), 0);
        let par_waves = analytics(&par.rec);
        let par_stats = par.rt.stats();

        // Exact same values...
        let par_vals: Vec<i64> = par.vars.iter().map(|v| v.get_untracked(&par.rt)).collect();
        prop_assert_eq!(par_vals, seq_vals);
        prop_assert_eq!(par.total.call(&par.rt, ()), seq_total);

        // ...the same work, counter for counter...
        prop_assert_eq!(par_stats.executions, seq_stats.executions);
        prop_assert_eq!(par_stats.propagation_steps, seq_stats.propagation_steps);
        prop_assert_eq!(par_stats.dirtied, seq_stats.dirtied);
        prop_assert_eq!(par_stats.changes, seq_stats.changes);
        prop_assert_eq!(par_stats.comparisons, seq_stats.comparisons);
        prop_assert_eq!(par_stats.cache_hits, seq_stats.cache_hits);
        prop_assert_eq!(par_stats.edges_created, seq_stats.edges_created);
        prop_assert_eq!(par_stats.waves, seq_stats.waves);

        // ...and the same per-wave analytics once the level brackets —
        // absent by construction from sequential traces — are normalized.
        prop_assert_eq!(without_levels(par_waves.clone()), without_levels(seq_waves));

        // Legality of the level schedule itself (only meaningful when the
        // scheduler is actually compiled in and engaged).
        #[cfg(feature = "parallel")]
        {
            for w in &par_waves.waves {
                if w.executed > 0 {
                    prop_assert!(
                        w.levels > 0,
                        "wave {} executed {} nodes outside any level",
                        w.wave,
                        w.executed
                    );
                }
                // Groups execute before the total's cache hits, so every
                // execution of this fixture happens inside its level.
                prop_assert_eq!(w.level_executed as usize, w.executed);
            }
            if workers >= 2 {
                prop_assert!(par_stats.parallel_executions <= par_stats.executions);
                prop_assert!(par_stats.level_width_hwm >= 1);
            }
        }
    }
}
