//! Sharded serving must be invisible to any single tenant: a session served
//! through a [`SessionPool`] (moved to a worker thread, interleaved with
//! other tenants' sessions on other shards) must produce exactly the values
//! — and exactly the propagation behavior — of the same session run
//! sequentially on the calling thread.
//!
//! Values are compared directly. Propagation behavior is compared through
//! the `waves` analytics of this crate: each runtime records its full event
//! stream with a `Recorder`, the JSONL dump is parsed back with
//! [`TraceFile::parse`], and the per-wave statistics (dirtied / executed /
//! changed / cutoffs / cache hits, causal depth, critical path) must be
//! *identical* between the pooled and the sequential run. The reports are
//! deterministic functions of the event sequence — no timestamps — so this
//! is an exact structural equality, not a fuzzy comparison.

use alphonse::pool::SessionPool;
use alphonse::trace::{Recorder, TraceSink};
use alphonse::{Memo, Runtime, Scheduling, Strategy, Var};
use alphonse_trace_tools::model::TraceFile;
use alphonse_trace_tools::report::{waves, WavesReport};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

const VARS: usize = 8;
const GROUP: usize = 4;

/// One tenant's dependency graph: vars feed group memos feed one total —
/// the same shape as the `batch_props` equivalence fixture, with an
/// always-on recorder so the propagation waves can be replayed offline.
struct Session {
    rt: Runtime,
    rec: Arc<Recorder>,
    vars: Vec<Var<i64>>,
    total: Memo<(), i64>,
}

fn session(seed: i64, fifo: bool) -> Session {
    let rt = Runtime::builder()
        .scheduling(if fifo {
            Scheduling::Fifo
        } else {
            Scheduling::HeightOrder
        })
        .build();
    let rec = Arc::new(Recorder::new(1 << 16));
    rt.set_sink(Some(Arc::clone(&rec) as Arc<dyn TraceSink>));
    let vars: Vec<_> = (0..VARS).map(|i| rt.var(seed + i as i64)).collect();
    let groups: Vec<Memo<(), i64>> = vars
        .chunks(GROUP)
        .enumerate()
        .map(|(g, chunk)| {
            let chunk = chunk.to_vec();
            rt.memo_with(
                &format!("group{g}"),
                Strategy::Eager,
                move |rt, &(): &()| chunk.iter().map(|v| v.get(rt)).sum(),
            )
        })
        .collect();
    let gs = groups;
    let total = rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
        gs.iter().map(|g| g.call(rt, ())).sum()
    });
    total.call(&rt, ());
    rt.propagate();
    Session {
        rt,
        rec,
        vars,
        total,
    }
}

/// Replays the edit script: one propagation wave per script entry. `offset`
/// varies the written values per tenant so sessions are not carbon copies.
fn apply(s: &Session, script: &[Vec<(usize, i64)>], offset: i64) {
    for wave in script {
        for &(i, v) in wave {
            s.vars[i % VARS].set(&s.rt, v + offset);
        }
        s.rt.propagate();
    }
}

/// Offline wave analytics of everything the session's recorder has seen.
fn analytics(rec: &Recorder) -> WavesReport {
    let tf = TraceFile::parse(&rec.to_jsonl()).expect("recorder emits parseable JSONL");
    waves(&tf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn pooled_schedule_matches_sequential(
        n_sessions in 1usize..=4,
        threads in 1usize..=3,
        fifo in any::<bool>(),
        script in vec(vec((0usize..VARS, -16i64..16), 1..6), 1..5),
    ) {
        // Sequential references: every tenant's session run to completion
        // on this thread. Analytics are captured right at quiescence, so
        // the later value reads cannot perturb the comparison.
        let mut reference = Vec::new();
        for t in 0..n_sessions {
            let s = session(t as i64, fifo);
            apply(&s, &script, t as i64);
            prop_assert_eq!(s.rt.dirty_count(), 0);
            let report = analytics(&s.rec);
            let vals: Vec<i64> = s.vars.iter().map(|v| v.get_untracked(&s.rt)).collect();
            let total = s.total.call(&s.rt, ());
            reference.push((total, vals, report));
        }

        // The same tenants served through a sharded pool: sessions are
        // built here, *moved* onto worker threads, and edited via
        // submitted closures. Shard count deliberately does not divide the
        // tenant count evenly, so shards serve interleaved tenant mixes.
        let pool = SessionPool::new(threads);
        let mut recs = Vec::new();
        for t in 0..n_sessions {
            let s = session(t as i64, fifo);
            recs.push(Arc::clone(&s.rec));
            pool.insert(t as u64, s);
        }
        for t in 0..n_sessions {
            let script = script.clone();
            pool.submit(t as u64, move |s: &mut Session| apply(s, &script, t as i64));
        }
        pool.flush();

        for (t, (want_total, want_vals, want_waves)) in reference.into_iter().enumerate() {
            // Wave-by-wave propagation analytics must match exactly.
            prop_assert_eq!(analytics(&recs[t]), want_waves);
            let got_vals = pool.query(t as u64, |s: &mut Session| {
                s.vars.iter().map(|v| v.get_untracked(&s.rt)).collect::<Vec<i64>>()
            });
            prop_assert_eq!(got_vals, want_vals);
            let got_total = pool.query(t as u64, |s: &mut Session| s.total.call(&s.rt, ()));
            prop_assert_eq!(got_total, want_total);
        }
    }
}
