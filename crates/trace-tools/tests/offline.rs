//! End-to-end tests over real runtime traces: record the canonical diamond
//! through the live sinks, then replay the artifacts through the offline
//! tooling and check the two sides agree.

use alphonse::trace::{ChromeTrace, JsonlSink, Recorder, Tee, TraceSink};
use alphonse::{Runtime, Strategy};
use alphonse_trace_tools::json::Json;
use alphonse_trace_tools::model::TraceFile;
use alphonse_trace_tools::report;
use std::sync::{Arc, Mutex};

/// An in-memory writer the test can read back after the sink is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn take_string(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

/// Runs the canonical diamond (`a` feeds `left = a/100` and `right = a*2`,
/// both feed `top`) under `sink`: initial call, then a changed write and a
/// propagation wave.
fn run_diamond(sink: Arc<dyn TraceSink>) {
    let rt = Runtime::new();
    rt.set_sink(Some(sink));
    let a = rt.var_named("a", 10i64);
    let left = rt.memo_with("left", Strategy::Eager, move |rt, &(): &()| a.get(rt) / 100);
    let right = rt.memo_with("right", Strategy::Eager, move |rt, &(): &()| a.get(rt) * 2);
    let (l, r) = (left.clone(), right.clone());
    let top = rt.memo_with("top", Strategy::Eager, move |rt, &(): &()| {
        l.call(rt, ()) + r.call(rt, ())
    });
    assert_eq!(top.call(&rt, ()), 20);
    a.set(&rt, 20);
    rt.propagate();
    rt.set_sink(None);
}

/// Records the diamond simultaneously into a [`Recorder`] (live truth) and
/// a [`JsonlSink`] (the on-disk format), returning both views.
fn record_diamond() -> (Arc<Recorder>, String) {
    let buf = SharedBuf::default();
    let rec = Arc::new(Recorder::new(4096));
    let jsonl = Arc::new(JsonlSink::new(buf.clone()).unwrap());
    run_diamond(Arc::new(Tee::new(vec![rec.clone(), jsonl.clone()])));
    jsonl.flush().unwrap();
    (rec, buf.take_string())
}

#[test]
fn jsonl_round_trip_preserves_the_event_sequence() {
    let (rec, text) = record_diamond();
    let tf = TraceFile::parse(&text).expect("the streamed document parses");
    assert_eq!(tf.meta.dropped, 0);
    let replayed: Vec<_> = tf.records.iter().map(|r| r.event.clone()).collect();
    assert_eq!(
        replayed,
        rec.events(),
        "replaying the JSONL yields the exact live event sequence"
    );
}

#[test]
fn recorder_jsonl_export_round_trips_too() {
    let (rec, _) = record_diamond();
    let tf = TraceFile::parse(&rec.to_jsonl()).expect("Recorder::to_jsonl parses");
    assert_eq!(tf.meta.capacity, Some(4096));
    let replayed: Vec<_> = tf.records.iter().map(|r| r.event.clone()).collect();
    assert_eq!(replayed, rec.events());
}

#[test]
fn offline_why_matches_the_live_golden() {
    let (_, text) = record_diamond();
    let tf = TraceFile::parse(&text).unwrap();
    let prov = tf.replay_provenance();
    let top = prov.node_by_label("top").expect("top is labeled");
    let report = prov.why_report(top).expect("top was dirtied");
    // Same golden as the live-index test in alphonse::trace::provenance.
    let golden = "\
why top (n1): wave 1
  write a (n0) changed=true
  -> dirtied a (n0) [WriteChanged]
  -> dirtied right (n3) [Fanout <- a (n0)]
  -> dirtied top (n1) [Fanout <- right (n3)]
  -> executed top (n1) changed=true
";
    assert_eq!(report, golden, "offline why diverged:\n{report}");
}

#[test]
fn waste_accounts_for_every_execution() {
    let (_, text) = record_diamond();
    let tf = TraceFile::parse(&text).unwrap();
    let w = report::waste(&tf);
    assert_eq!(w.total, tf.executions());
    assert_eq!(w.productive + w.wasted, w.total);
    // Initial run: left, right, top execute (3 productive). The wave:
    // left recomputes to an equal value (wasted), right and top change.
    assert_eq!(w.productive, 5);
    assert_eq!(w.wasted, 1);
    let left = w.rows.iter().find(|r| r.label == "left").unwrap();
    assert_eq!((left.productive, left.wasted), (1, 1));
}

#[test]
fn waves_summarizes_the_propagation() {
    let (_, text) = record_diamond();
    let tf = TraceFile::parse(&text).unwrap();
    let r = report::waves(&tf);
    assert_eq!(r.initial_executions, 3);
    assert_eq!(r.waves.len(), 1);
    let w = &r.waves[0];
    assert_eq!(w.wave, 1);
    assert_eq!(w.executed, 3);
    assert_eq!(w.changed, 2);
    assert_eq!(w.steps, Some(4));
    // Longest causal chain: a -> right -> top (left's arm cuts off).
    assert_eq!(w.depth, 3);
    assert_eq!(w.critical_path, vec!["a (n0)", "right (n3)", "top (n1)"]);
}

#[test]
fn chrome_trace_is_valid_json_with_well_nested_spans() {
    let chrome = Arc::new(ChromeTrace::new());
    run_diamond(chrome.clone());
    let doc = Json::parse(&chrome.to_json()).expect("Chrome trace is valid JSON");
    let events = doc.as_arr().expect("top level is an array");
    assert!(!events.is_empty());
    let mut open = 0i64;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every record has ph");
        match ph {
            "B" => {
                assert!(ev.get("name").is_some(), "begin spans carry a name");
                open += 1;
            }
            "E" => {
                open -= 1;
                assert!(open >= 0, "span end without a matching begin");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(open, 0, "every begun span ends");
}
