//! Offline analytics over a parsed trace: per-wave propagation statistics
//! and the waste (cutoff-effectiveness) accounting.
//!
//! Both reports are deterministic functions of the record sequence — no
//! timestamps enter the output — so they are golden-testable and stable
//! across machines.

use crate::model::{Record, TraceFile};
use alphonse::trace::TraceEvent;
use alphonse::NodeId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Display map from the `label` stamps carried on the records.
struct Names(Vec<Option<String>>);

impl Names {
    fn build(records: &[Record]) -> Names {
        let mut names: Vec<Option<String>> = Vec::new();
        for rec in records {
            if let (Some(label), Some(node)) = (&rec.label, rec.event.node()) {
                let i = node.index();
                if names.len() <= i {
                    names.resize(i + 1, None);
                }
                names[i] = Some(label.clone());
            }
        }
        Names(names)
    }

    fn raw(&self, n: NodeId) -> Option<&str> {
        self.0.get(n.index()).and_then(|l| l.as_deref())
    }

    /// `label (nI)` when labeled, `nI` otherwise — same convention as
    /// `Provenance::display`.
    fn display(&self, n: NodeId) -> String {
        match self.raw(n) {
            Some(l) => format!("{l} ({n})"),
            None => n.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Waves
// ---------------------------------------------------------------------------

/// Statistics of one propagation wave.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveStats {
    /// The wave id from its `PropagateBegin`.
    pub wave: u64,
    /// Nodes dirtied into this wave — including the seed dirt queued before
    /// the wave began (writes and batch commits between waves).
    pub dirtied: usize,
    /// Bodies re-executed during the wave.
    pub executed: usize,
    /// Executions that committed a different value.
    pub changed: usize,
    /// Cutoff stops (equal value found; propagation pruned).
    pub cutoffs: usize,
    /// Calls answered from cache.
    pub cache_hits: usize,
    /// Dirty nodes processed, from `PropagateEnd` (`None` if the trace ends
    /// mid-wave).
    pub steps: Option<u64>,
    /// Length of the longest causal dirtying chain in the wave.
    pub depth: usize,
    /// That longest chain, origin first, rendered with labels.
    pub critical_path: Vec<String>,
    /// Height levels drained by the level scheduler (`LevelBegin` events).
    /// Zero for sequential runs, which emit no level brackets.
    pub levels: usize,
    /// Widest level batch of the wave — the parallelism actually available.
    pub level_width_max: u64,
    /// Executor runs the level brackets account for (sum of `LevelEnd`
    /// `executed` fields). When the wave ran level-parallel this must equal
    /// [`WaveStats::executed`] minus nested re-executions — the legality
    /// check that every execution happened inside exactly one level.
    pub level_executed: u64,
}

/// All waves of a trace plus the work done outside any wave.
#[derive(Debug, Clone, PartialEq)]
pub struct WavesReport {
    /// Executions delivered outside any wave — the initial from-scratch
    /// runs when memos are first called.
    pub initial_executions: usize,
    /// Per-wave statistics, in wave order.
    pub waves: Vec<WaveStats>,
}

/// Computes per-wave statistics (see [`WaveStats`]).
///
/// Dirtying that happens *between* waves (the seed write, batch commits) is
/// charged to the wave that drains it — the next one to begin — mirroring
/// the `BatchCommit.wave` linkage the runtime emits.
pub fn waves(tf: &TraceFile) -> WavesReport {
    let names = Names::build(&tf.records);
    let mut report = WavesReport {
        initial_executions: 0,
        waves: Vec::new(),
    };
    // Seed dirt queued since the last wave ended: (node, cause).
    let mut pending: Vec<(NodeId, Option<NodeId>)> = Vec::new();
    let mut current: Option<WaveStats> = None;
    // Per-node dirtying depth and cause link within the open wave.
    let mut depth: HashMap<usize, (usize, Option<NodeId>)> = HashMap::new();

    let mark = |depth: &mut HashMap<usize, (usize, Option<NodeId>)>,
                node: NodeId,
                cause: Option<NodeId>| {
        let d = cause
            .and_then(|c| depth.get(&c.index()).map(|(d, _)| *d))
            .unwrap_or(0)
            + 1;
        depth.insert(node.index(), (d, cause));
    };

    for rec in &tf.records {
        match &rec.event {
            TraceEvent::PropagateBegin { wave } => {
                let mut stats = WaveStats {
                    wave: *wave,
                    dirtied: 0,
                    executed: 0,
                    changed: 0,
                    cutoffs: 0,
                    cache_hits: 0,
                    steps: None,
                    depth: 0,
                    critical_path: Vec::new(),
                    levels: 0,
                    level_width_max: 0,
                    level_executed: 0,
                };
                depth.clear();
                for (node, cause) in pending.drain(..) {
                    stats.dirtied += 1;
                    mark(&mut depth, node, cause);
                }
                current = Some(stats);
            }
            TraceEvent::PropagateEnd { steps, .. } => {
                if let Some(mut stats) = current.take() {
                    stats.steps = Some(*steps);
                    finalize(&mut stats, &depth, &names);
                    report.waves.push(stats);
                }
            }
            TraceEvent::Dirtied { node, cause, .. } => match current.as_mut() {
                Some(stats) => {
                    stats.dirtied += 1;
                    mark(&mut depth, *node, *cause);
                }
                None => pending.push((*node, *cause)),
            },
            TraceEvent::ExecuteEnd { changed, .. } => match current.as_mut() {
                Some(stats) => {
                    stats.executed += 1;
                    if *changed {
                        stats.changed += 1;
                    }
                }
                None => report.initial_executions += 1,
            },
            TraceEvent::CutoffStop { .. } => {
                if let Some(stats) = current.as_mut() {
                    stats.cutoffs += 1;
                }
            }
            TraceEvent::CacheHit { .. } => {
                if let Some(stats) = current.as_mut() {
                    stats.cache_hits += 1;
                }
            }
            TraceEvent::LevelBegin { width, .. } => {
                if let Some(stats) = current.as_mut() {
                    stats.levels += 1;
                    stats.level_width_max = stats.level_width_max.max(*width);
                }
            }
            TraceEvent::LevelEnd { executed, .. } => {
                if let Some(stats) = current.as_mut() {
                    stats.level_executed += *executed;
                }
            }
            _ => {}
        }
    }
    // A trace truncated mid-wave still reports the partial wave.
    if let Some(mut stats) = current.take() {
        finalize(&mut stats, &depth, &names);
        report.waves.push(stats);
    }
    report
}

/// Fills `depth` / `critical_path` from the wave's dirtying-depth map.
fn finalize(stats: &mut WaveStats, depth: &HashMap<usize, (usize, Option<NodeId>)>, names: &Names) {
    let Some((&deepest, &(d, _))) = depth
        .iter()
        .max_by_key(|(i, (d, _))| (*d, std::cmp::Reverse(**i)))
    else {
        return;
    };
    stats.depth = d;
    let mut path = Vec::new();
    let mut cur = Some(NodeId::from_index(deepest));
    while let Some(n) = cur {
        path.push(names.display(n));
        if path.len() > depth.len() {
            break; // defensive: cause links never cycle in a real trace
        }
        cur = depth.get(&n.index()).and_then(|(_, c)| *c);
    }
    path.reverse();
    stats.critical_path = path;
}

/// Renders [`waves`] as a human-readable multi-line report.
pub fn waves_report(tf: &TraceFile) -> String {
    let r = waves(tf);
    let mut out = String::new();
    if r.initial_executions > 0 {
        let _ = writeln!(
            out,
            "initial run (outside waves): {} executions",
            r.initial_executions
        );
    }
    if r.waves.is_empty() {
        out.push_str("no propagation waves in trace\n");
        return out;
    }
    for w in &r.waves {
        let steps = match w.steps {
            Some(s) => s.to_string(),
            None => "? (trace ends mid-wave)".to_string(),
        };
        let _ = writeln!(
            out,
            "wave {}: dirtied {}, executed {} ({} changed), cutoffs {}, cache hits {}, steps {}, depth {}",
            w.wave, w.dirtied, w.executed, w.changed, w.cutoffs, w.cache_hits, steps, w.depth
        );
        if w.levels > 0 {
            let _ = writeln!(
                out,
                "  levels: {} (max width {}, {} executed in levels)",
                w.levels, w.level_width_max, w.level_executed
            );
        }
        if !w.critical_path.is_empty() {
            let _ = writeln!(out, "  critical path: {}", w.critical_path.join(" -> "));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Waste
// ---------------------------------------------------------------------------

/// Per-label execution accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WasteRow {
    /// The node label (memo name), or `nI` for unlabeled nodes.
    pub label: String,
    /// Executions whose committed value differed from the stored one.
    pub productive: usize,
    /// Executions that recomputed an equal value — work a finer-grained
    /// dependency or an earlier cutoff could have avoided.
    pub wasted: usize,
}

/// Every `ExecuteEnd` of the trace classified productive vs wasted.
///
/// Invariant: `productive + wasted == total`, and `total` equals the number
/// of `ExecuteEnd` records in the file — nothing is silently skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WasteReport {
    /// Per-label rows, most wasted first (ties break by label).
    pub rows: Vec<WasteRow>,
    /// Total executions that changed their value.
    pub productive: usize,
    /// Total executions that did not.
    pub wasted: usize,
    /// Total `ExecuteEnd` records classified.
    pub total: usize,
}

/// Classifies every execution in the trace (see [`WasteReport`]).
pub fn waste(tf: &TraceFile) -> WasteReport {
    let names = Names::build(&tf.records);
    let mut per_label: HashMap<String, (usize, usize)> = HashMap::new();
    let (mut productive, mut wasted) = (0usize, 0usize);
    for rec in &tf.records {
        let TraceEvent::ExecuteEnd { node, changed } = rec.event else {
            continue;
        };
        let label = names
            .raw(node)
            .map(str::to_string)
            .unwrap_or_else(|| node.to_string());
        let entry = per_label.entry(label).or_insert((0, 0));
        if changed {
            entry.0 += 1;
            productive += 1;
        } else {
            entry.1 += 1;
            wasted += 1;
        }
    }
    let mut rows: Vec<WasteRow> = per_label
        .into_iter()
        .map(|(label, (productive, wasted))| WasteRow {
            label,
            productive,
            wasted,
        })
        .collect();
    rows.sort_by(|a, b| b.wasted.cmp(&a.wasted).then_with(|| a.label.cmp(&b.label)));
    WasteReport {
        rows,
        productive,
        wasted,
        total: productive + wasted,
    }
}

/// Renders [`waste`] as a human-readable table.
pub fn waste_report(tf: &TraceFile) -> String {
    let r = waste(tf);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "waste: {} executions, {} productive (changed), {} wasted (unchanged value)",
        r.total, r.productive, r.wasted
    );
    if r.rows.is_empty() {
        out.push_str("  (no executions in trace)\n");
        return out;
    }
    let width = r
        .rows
        .iter()
        .map(|row| row.label.len())
        .max()
        .unwrap_or(0)
        .max("label".len());
    let _ = writeln!(out, "  {:<width$}  productive  wasted", "label");
    for row in &r.rows {
        let _ = writeln!(
            out,
            "  {:<width$}  {:>10}  {:>6}",
            row.label, row.productive, row.wasted
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceFile;

    const SAMPLE: &str = r#"{"meta":{"format":"alphonse-trace","version":1,"dropped":0}}
{"ts":0,"ev":"NodeCreated","node":0,"kind":"Location","label":"a"}
{"ts":1,"ev":"NodeCreated","node":1,"kind":"Computation","label":"top"}
{"ts":2,"ev":"ExecuteEnd","node":1,"changed":true,"label":"top"}
{"ts":3,"ev":"Write","node":0,"changed":true,"label":"a"}
{"ts":4,"ev":"Dirtied","node":0,"reason":"WriteChanged","label":"a"}
{"ts":5,"wave":1,"ev":"PropagateBegin"}
{"ts":6,"wave":1,"ev":"Dirtied","node":2,"reason":"Fanout","cause":0}
{"ts":7,"wave":1,"ev":"ExecuteEnd","node":2,"changed":false}
{"ts":8,"wave":1,"ev":"CutoffStop","node":2}
{"ts":9,"wave":1,"ev":"Dirtied","node":1,"reason":"Fanout","cause":2,"label":"top"}
{"ts":10,"wave":1,"ev":"ExecuteEnd","node":1,"changed":true,"label":"top"}
{"ts":11,"wave":1,"ev":"CacheHit","node":2}
{"ts":12,"wave":1,"ev":"PropagateEnd","steps":3}
"#;

    #[test]
    fn waves_charges_seed_dirt_to_the_draining_wave() {
        let tf = TraceFile::parse(SAMPLE).unwrap();
        let r = waves(&tf);
        assert_eq!(r.initial_executions, 1);
        assert_eq!(r.waves.len(), 1);
        let w = &r.waves[0];
        assert_eq!(w.wave, 1);
        assert_eq!(w.dirtied, 3, "seed dirt on n0 counts into wave 1");
        assert_eq!(w.executed, 2);
        assert_eq!(w.changed, 1);
        assert_eq!(w.cutoffs, 1);
        assert_eq!(w.cache_hits, 1);
        assert_eq!(w.steps, Some(3));
        assert_eq!(w.depth, 3);
        assert_eq!(w.critical_path, vec!["a (n0)", "n2", "top (n1)"]);
    }

    const LEVEL_SAMPLE: &str = r#"{"meta":{"format":"alphonse-trace","version":1,"dropped":0}}
{"ts":0,"ev":"Dirtied","node":0,"reason":"WriteChanged"}
{"ts":1,"wave":1,"ev":"PropagateBegin"}
{"ts":2,"wave":1,"ev":"LevelBegin","height":0,"width":1}
{"ts":3,"wave":1,"ev":"Dirtied","node":1,"reason":"Fanout","cause":0}
{"ts":4,"wave":1,"ev":"Dirtied","node":2,"reason":"Fanout","cause":0}
{"ts":5,"wave":1,"ev":"LevelEnd","height":0,"executed":0}
{"ts":6,"wave":1,"ev":"LevelBegin","height":1,"width":2}
{"ts":7,"wave":1,"ev":"ExecuteEnd","node":1,"changed":true}
{"ts":8,"wave":1,"ev":"ExecuteEnd","node":2,"changed":true}
{"ts":9,"wave":1,"ev":"LevelEnd","height":1,"executed":2}
{"ts":10,"wave":1,"ev":"PropagateEnd","steps":3}
"#;

    #[test]
    fn waves_reports_level_structure() {
        let tf = TraceFile::parse(LEVEL_SAMPLE).unwrap();
        let r = waves(&tf);
        assert_eq!(r.waves.len(), 1);
        let w = &r.waves[0];
        assert_eq!(w.levels, 2);
        assert_eq!(w.level_width_max, 2);
        assert_eq!(w.executed, 2);
        assert_eq!(
            w.level_executed, w.executed as u64,
            "every execution of a level-parallel wave happens inside a level"
        );
        let text = waves_report(&tf);
        assert!(text.contains("levels: 2 (max width 2"), "{text}");
    }

    #[test]
    fn sequential_waves_report_zero_levels() {
        let tf = TraceFile::parse(SAMPLE).unwrap();
        let r = waves(&tf);
        assert_eq!(r.waves[0].levels, 0);
        assert_eq!(r.waves[0].level_width_max, 0);
        let text = waves_report(&tf);
        assert!(!text.contains("levels:"), "{text}");
    }

    #[test]
    fn waste_totals_cover_every_execution() {
        let tf = TraceFile::parse(SAMPLE).unwrap();
        let r = waste(&tf);
        assert_eq!(r.total, tf.executions());
        assert_eq!(r.productive + r.wasted, r.total);
        assert_eq!(r.productive, 2);
        assert_eq!(r.wasted, 1);
        // Most wasted first: the unlabeled n2 row leads.
        assert_eq!(r.rows[0].label, "n2");
        assert_eq!(r.rows[0].wasted, 1);
        assert_eq!(r.rows[1].label, "top");
        assert_eq!(r.rows[1].productive, 2);
    }

    #[test]
    fn reports_render_without_panicking() {
        let tf = TraceFile::parse(SAMPLE).unwrap();
        let w = waves_report(&tf);
        assert!(w.contains("wave 1:"), "{w}");
        assert!(w.contains("critical path: a (n0) -> n2 -> top (n1)"), "{w}");
        let s = waste_report(&tf);
        assert!(s.contains("3 executions"), "{s}");
    }
}
