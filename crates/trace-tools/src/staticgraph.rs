//! The `alphonse-staticgraph` document model and the dynamic-vs-static
//! coverage check behind `alphonse-trace check-static`.
//!
//! `alphonse-check graph` serializes the compiler's whole-program abstract
//! dependency graph: abstract locations (`g:<name>` globals, `f:<offset>`
//! per-class field summaries, the `arr` array summary) and incremental
//! procedures, connected by `read` (loc → proc), `write` (proc → loc) and
//! `call` (callee → caller) edges. Because the abstraction is a
//! conservative over-approximation of everything the runtime can record,
//! every *dynamic* dependence edge must be covered by a static one:
//!
//! * a dynamic `location → computation` edge is covered when the static
//!   graph reads that location from that procedure, **or** writes it from
//!   that procedure — the runtime's `modify` records a dependence on the
//!   written location *before* storing (read-before-write), so a tracked
//!   write also manifests as a location → writer edge;
//! * a dynamic `computation → computation` edge is covered when the static
//!   graph has a `call` edge from the callee's procedure to the caller's.
//!
//! [`check`] replays a JSONL trace against a parsed graph and reports every
//! uncovered edge; an empty violation list is the machine-checked proof
//! that dynamic ⊆ static held for that run.

use crate::json::Json;
use crate::model::TraceFile;
use alphonse::trace::TraceEvent;
use alphonse::NodeKind;
use std::collections::{BTreeMap, BTreeSet};

/// A parsed `alphonse-staticgraph` JSON document, projected down to the
/// label-keyed edge sets the coverage check needs.
#[derive(Debug, Clone)]
pub struct StaticGraphFile {
    /// Document version (currently always 1).
    pub version: u64,
    /// Source file the graph was computed from.
    pub file: String,
    /// Labels of abstract-location nodes.
    pub locs: BTreeSet<String>,
    /// Labels of procedure nodes.
    pub procs: BTreeSet<String>,
    /// `read` edges: (location label, reading procedure label).
    pub reads: BTreeSet<(String, String)>,
    /// `write` edges: (writing procedure label, location label).
    pub writes: BTreeSet<(String, String)>,
    /// `call` edges: (callee procedure label, caller procedure label).
    pub calls: BTreeSet<(String, String)>,
}

impl StaticGraphFile {
    /// Parses a document produced by `alphonse-check graph`.
    pub fn parse(text: &str) -> Result<StaticGraphFile, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != "alphonse-staticgraph" {
            return Err(format!("not a static graph document (schema `{schema}`)"));
        }
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing `version`")?;
        if version != 1 {
            return Err(format!(
                "unsupported static graph version {version} (this tool reads version 1)"
            ));
        }
        let file = doc
            .get("file")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();

        let mut locs = BTreeSet::new();
        let mut procs = BTreeSet::new();
        for node in doc
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("missing `nodes`")?
        {
            let label = node
                .get("label")
                .and_then(Json::as_str)
                .ok_or("node without `label`")?
                .to_string();
            match node.get("kind").and_then(Json::as_str) {
                Some("loc") => locs.insert(label),
                Some("proc") => procs.insert(label),
                other => return Err(format!("node with unknown kind {other:?}")),
            };
        }

        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        let mut calls = BTreeSet::new();
        for edge in doc
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or("missing `edges`")?
        {
            let from = edge
                .get("from")
                .and_then(Json::as_str)
                .ok_or("edge without `from`")?
                .to_string();
            let to = edge
                .get("to")
                .and_then(Json::as_str)
                .ok_or("edge without `to`")?
                .to_string();
            match edge.get("kind").and_then(Json::as_str) {
                Some("read") => reads.insert((from, to)),
                Some("write") => writes.insert((from, to)),
                Some("call") => calls.insert((from, to)),
                other => return Err(format!("edge with unknown kind {other:?}")),
            };
        }

        Ok(StaticGraphFile {
            version,
            file,
            locs,
            procs,
            reads,
            writes,
            calls,
        })
    }

    /// Is a dynamic `location → computation` edge covered? True when the
    /// static graph has the read edge, or the write edge in the opposite
    /// orientation (read-before-write: a tracked write records dependence
    /// on its own target).
    pub fn covers_loc_edge(&self, loc: &str, proc: &str) -> bool {
        self.reads.contains(&(loc.to_string(), proc.to_string()))
            || self.writes.contains(&(proc.to_string(), loc.to_string()))
    }

    /// Is a dynamic `computation → computation` (callee → caller) edge
    /// covered by a static call edge?
    pub fn covers_call_edge(&self, callee: &str, caller: &str) -> bool {
        self.calls
            .contains(&(callee.to_string(), caller.to_string()))
    }
}

/// One dynamic edge the static graph failed to cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Label of the edge source (the dependency), or a `n<id>` placeholder
    /// when the node was never labeled.
    pub from: String,
    /// Label of the edge target (the dependent), or a placeholder.
    pub to: String,
    /// Why this edge is a violation.
    pub reason: String,
}

/// The result of replaying one trace against one static graph.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Total `EdgeAdded` events in the trace (re-recorded edges counted
    /// each time).
    pub dynamic_edges: usize,
    /// Distinct (from-label, to-label) dependence pairs observed.
    pub distinct_pairs: usize,
    /// Every distinct pair the static graph does not cover.
    pub violations: Vec<Violation>,
}

impl CoverageReport {
    /// Did every dynamic edge have static cover?
    pub fn is_covered(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary (one line per violation).
    pub fn render(&self) -> String {
        let mut out = format!(
            "check-static: {} dynamic edge event(s), {} distinct pair(s), {} violation(s)\n",
            self.dynamic_edges,
            self.distinct_pairs,
            self.violations.len()
        );
        for v in &self.violations {
            out.push_str(&format!("  {} -> {}: {}\n", v.from, v.to, v.reason));
        }
        out
    }
}

/// Replays `trace`, resolving every `EdgeAdded` endpoint to its node kind
/// and label, and checks each distinct dependence pair against `graph`.
///
/// Nodes are labeled by the interpreter: memo instances carry their
/// procedure's name, promoted locations carry `g:<name>` / `f:<offset>` /
/// `arr` (labels require the trace to have been recorded with a sink
/// attached, which is exactly when `EdgeAdded` events exist at all). An
/// unlabeled endpoint is reported as a violation rather than skipped — a
/// cross-validation that silently ignores edges proves nothing.
pub fn check(trace: &TraceFile, graph: &StaticGraphFile) -> CoverageReport {
    let mut kinds: BTreeMap<usize, NodeKind> = BTreeMap::new();
    let mut labels: BTreeMap<usize, String> = BTreeMap::new();
    let mut dynamic_edges = 0usize;
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();

    for rec in &trace.records {
        match &rec.event {
            TraceEvent::NodeCreated { node, kind, label } => {
                kinds.insert(node.index(), *kind);
                if let Some(l) = label {
                    labels.insert(node.index(), l.to_string());
                }
            }
            TraceEvent::Labeled { node, label } => {
                labels.insert(node.index(), label.to_string());
            }
            TraceEvent::EdgeAdded { from, to } => {
                dynamic_edges += 1;
                pairs.insert((from.index(), to.index()));
            }
            _ => {}
        }
    }

    let name = |n: usize| -> String { labels.get(&n).cloned().unwrap_or_else(|| format!("n{n}")) };
    let mut violations = Vec::new();
    for &(from, to) in &pairs {
        let (from_label, to_label) = (name(from), name(to));
        let violation = |reason: String| Violation {
            from: from_label.clone(),
            to: to_label.clone(),
            reason,
        };
        let (Some(lf), Some(lt)) = (labels.get(&from), labels.get(&to)) else {
            violations.push(violation("endpoint was never labeled".to_string()));
            continue;
        };
        match (kinds.get(&from).copied(), kinds.get(&to).copied()) {
            (Some(NodeKind::Location), Some(NodeKind::Computation)) => {
                if !graph.covers_loc_edge(lf, lt) {
                    violations.push(violation(format!(
                        "no static read({lf}, {lt}) or write({lt}, {lf}) edge"
                    )));
                }
            }
            (Some(NodeKind::Computation), Some(NodeKind::Computation)) => {
                if !graph.covers_call_edge(lf, lt) {
                    violations.push(violation(format!("no static call({lf}, {lt}) edge")));
                }
            }
            (fk, tk) => {
                violations.push(violation(format!(
                    "impossible dependence shape {fk:?} -> {tk:?}"
                )));
            }
        }
    }

    CoverageReport {
        dynamic_edges,
        distinct_pairs: pairs.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRAPH: &str = r#"{"schema":"alphonse-staticgraph","version":1,
        "tool":"alphonse-check 0.0.0","file":"t.alf",
        "nodes":[
            {"id":0,"kind":"loc","label":"g:base","desc":"global `base`","height":0},
            {"id":1,"kind":"loc","label":"g:log","desc":"global `log`","height":0},
            {"id":2,"kind":"proc","label":"F","incremental":"cached","height":1},
            {"id":3,"kind":"proc","label":"Top","incremental":"cached","height":2}],
        "edges":[
            {"from":"g:base","to":"F","kind":"read"},
            {"from":"F","to":"g:log","kind":"write"},
            {"from":"F","to":"Top","kind":"call"}],
        "strata":[["g:base","g:log"],["F"],["Top"]],
        "cycles":[]}"#;

    fn trace(lines: &str) -> TraceFile {
        let text = format!(
            "{}\n{}",
            r#"{"meta":{"format":"alphonse-trace","version":1,"dropped":0}}"#, lines
        );
        TraceFile::parse(&text).unwrap()
    }

    #[test]
    fn parses_nodes_and_edge_orientations() {
        let g = StaticGraphFile::parse(GRAPH).unwrap();
        assert_eq!(g.version, 1);
        assert_eq!(g.file, "t.alf");
        assert!(g.locs.contains("g:base") && g.locs.contains("g:log"));
        assert!(g.procs.contains("F") && g.procs.contains("Top"));
        assert!(g.covers_loc_edge("g:base", "F"), "read edge");
        assert!(g.covers_loc_edge("g:log", "F"), "write edge, flipped");
        assert!(!g.covers_loc_edge("g:log", "Top"));
        assert!(g.covers_call_edge("F", "Top"));
        assert!(!g.covers_call_edge("Top", "F"), "calls are directional");
    }

    #[test]
    fn rejects_foreign_and_future_documents() {
        assert!(StaticGraphFile::parse(r#"{"schema":"other","version":1}"#).is_err());
        assert!(StaticGraphFile::parse(
            r#"{"schema":"alphonse-staticgraph","version":2,"nodes":[],"edges":[]}"#
        )
        .is_err());
    }

    #[test]
    fn covered_trace_passes_and_uncovered_edge_is_reported() {
        let g = StaticGraphFile::parse(GRAPH).unwrap();
        // base → F (read), log → F (write-manifested), F → Top (call).
        let tf = trace(
            r#"{"ts":0,"ev":"NodeCreated","node":0,"kind":"Location","label":"g:base"}
{"ts":1,"ev":"NodeCreated","node":1,"kind":"Computation","label":"F"}
{"ts":2,"ev":"NodeCreated","node":2,"kind":"Computation","label":"Top"}
{"ts":3,"ev":"NodeCreated","node":3,"kind":"Location"}
{"ts":4,"ev":"Labeled","node":3,"label":"g:log"}
{"ts":5,"ev":"EdgeAdded","from":0,"to":1}
{"ts":6,"ev":"EdgeAdded","from":3,"to":1}
{"ts":7,"ev":"EdgeAdded","from":1,"to":2}
{"ts":8,"ev":"EdgeAdded","from":0,"to":1}"#,
        );
        let report = check(&tf, &g);
        assert_eq!(report.dynamic_edges, 4, "re-recorded edges counted");
        assert_eq!(report.distinct_pairs, 3);
        assert!(report.is_covered(), "{}", report.render());

        // Top reading g:base directly has no static cover.
        let bad = trace(
            r#"{"ts":0,"ev":"NodeCreated","node":0,"kind":"Location","label":"g:base"}
{"ts":1,"ev":"NodeCreated","node":1,"kind":"Computation","label":"Top"}
{"ts":2,"ev":"EdgeAdded","from":0,"to":1}"#,
        );
        let report = check(&bad, &g);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].from, "g:base");
        assert_eq!(report.violations[0].to, "Top");
    }

    #[test]
    fn unlabeled_endpoints_are_violations_not_skips() {
        let g = StaticGraphFile::parse(GRAPH).unwrap();
        let tf = trace(
            r#"{"ts":0,"ev":"NodeCreated","node":0,"kind":"Location"}
{"ts":1,"ev":"NodeCreated","node":1,"kind":"Computation","label":"F"}
{"ts":2,"ev":"EdgeAdded","from":0,"to":1}"#,
        );
        let report = check(&tf, &g);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].from, "n0");
        assert!(report.violations[0].reason.contains("never labeled"));
    }
}
