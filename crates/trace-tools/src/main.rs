//! `alphonse-trace` — replay and analyze Alphonse JSONL trace files.
//!
//! ```text
//! alphonse-trace why <node|label> <trace.jsonl> [--dot] [--allow-truncated]
//! alphonse-trace waves <trace.jsonl>
//! alphonse-trace waste <trace.jsonl>
//! alphonse-trace metrics <snapshot.json> [<baseline.json>]
//! alphonse-trace bench-diff <baseline.json> <candidate.json> [--threshold <pct>]
//! alphonse-trace check-static <trace.jsonl> <staticgraph.json>
//! ```
//!
//! Record a trace with `--trace-out run.jsonl` on any bench binary or
//! `ALPHONSE_TRACE=run.jsonl` on the lang interpreter, then ask why a node
//! recomputed, how each propagation wave went, and which executions were
//! wasted.

use alphonse::NodeId;
use alphonse_trace_tools::metrics::MetricsDoc;
use alphonse_trace_tools::model::TraceFile;
use alphonse_trace_tools::{report, staticgraph};
use std::process::ExitCode;

const USAGE: &str = "\
usage: alphonse-trace <command> ...

commands:
  why <node|label> <trace.jsonl> [--dot] [--allow-truncated]
      Print the causal chain that last dirtied the node: the originating
      write, the dirtying fan-out path, and the re-execution (or its
      absence). <node> is a label (`top`), an id (`n3`), or a bare index
      (`3`). --dot emits a Graphviz digraph instead of text. Traces whose
      recorder dropped events are refused unless --allow-truncated is given.
  waves <trace.jsonl>
      Per-propagation-wave statistics: dirtied/executed/cutoffs/cache hits,
      causal depth, and the critical (longest) dirtying path.
  waste <trace.jsonl>
      Classify every execution as productive (value changed) or wasted
      (equal value recomputed), aggregated per memo label.
  metrics <snapshot.json> [<baseline.json>]
      Pretty-print a runtime metrics snapshot (`MetricsSnapshot::to_json`
      output, e.g. a bench METRICS_<id>.json sidecar): counter totals,
      p50/p90/p99/max per latency histogram, worker utilization, shard
      gauges, and per-subsystem memory gauges with derived bytes/node when
      the producing binary installed the tracking allocator. With a second
      file, report the change from <baseline.json> to <snapshot.json>
      instead (counters and histograms subtract).
  bench-diff <baseline.json> <candidate.json> [--threshold <pct>]
      Compare two bench result tables (BENCH_<id>.json): rows match by
      their descriptive string cells, every shared numeric column reports
      its percent change, and changes in the bad direction (latency up,
      throughput down) beyond the threshold (default 5%) are flagged.
      Exit 0 when nothing regressed past the threshold, 1 otherwise.
  check-static <trace.jsonl> <staticgraph.json>
      Cross-validate a dynamic trace against the compiler's abstract
      dependency graph (`alphonse-check graph` output): every runtime
      dependence edge must be covered by a static read/write/call edge.
      Exit 0 when the over-approximation holds, 1 with one line per
      uncovered edge otherwise.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// Prints to stdout, tolerating a closed pipe (`alphonse-trace waves … | head`).
fn emit(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn load(path: &str) -> Result<TraceFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    TraceFile::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Takes a boolean `--flag` out of `args`; returns whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn cmd_why(mut args: Vec<String>) -> ExitCode {
    let dot = take_flag(&mut args, "--dot");
    let allow_truncated = take_flag(&mut args, "--allow-truncated");
    let [target, path] = args.as_slice() else {
        return fail("why takes exactly <node|label> <trace.jsonl>\n\n— see alphonse-trace --help");
    };
    let tf = match load(path) {
        Ok(tf) => tf,
        Err(e) => return fail(&e),
    };
    if tf.meta.dropped > 0 && !allow_truncated {
        let cap = tf
            .meta
            .capacity
            .map(|c| format!(" (ring capacity {c})"))
            .unwrap_or_default();
        return fail(&format!(
            "{path} is truncated: {} events were dropped{cap}, so causal chains may be \
             incomplete or wrong. Re-record with a JSONL sink (unbounded) or pass \
             --allow-truncated to query anyway.",
            tf.meta.dropped
        ));
    }
    let prov = tf.replay_provenance();
    // `n3` / `3` select by id; anything else resolves as a label.
    let node = target
        .strip_prefix('n')
        .unwrap_or(target)
        .parse::<usize>()
        .ok()
        .map(NodeId::from_index)
        .or_else(|| prov.node_by_label(target));
    let Some(node) = node else {
        return fail(&format!("no node labeled `{target}` in {path}"));
    };
    let rendered = if dot {
        prov.why_dot(node)
    } else {
        prov.why_report(node)
    };
    match rendered {
        Some(text) => {
            emit(&text);
            ExitCode::SUCCESS
        }
        None => fail(&format!(
            "{} was never dirtied in this trace — nothing to explain",
            prov.display(node)
        )),
    }
}

fn warn_truncated(tf: &TraceFile) {
    if tf.meta.dropped > 0 {
        eprintln!(
            "warning: trace is truncated ({} events dropped) — counts undercount",
            tf.meta.dropped
        );
    }
}

fn cmd_report(args: Vec<String>, render: fn(&TraceFile) -> String) -> ExitCode {
    let [path] = args.as_slice() else {
        return fail("expected exactly one <trace.jsonl> argument");
    };
    match load(path) {
        Ok(tf) => {
            warn_truncated(&tf);
            emit(&render(&tf));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_metrics(args: Vec<String>) -> ExitCode {
    let load = |path: &str| -> Result<MetricsDoc, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        MetricsDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    match args.as_slice() {
        [snap] => match load(snap) {
            Ok(doc) => {
                emit(&doc.render(&format!("metrics: {snap}")));
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        [snap, baseline] => match (load(snap), load(baseline)) {
            (Ok(after), Ok(before)) => {
                emit(
                    &after
                        .delta_since(&before)
                        .render(&format!("metrics delta: {baseline} → {snap}")),
                );
                ExitCode::SUCCESS
            }
            (Err(e), _) | (_, Err(e)) => fail(&e),
        },
        _ => fail("metrics takes <snapshot.json> [<baseline.json>]\n\n— see alphonse-trace --help"),
    }
}

/// Takes a `--flag <value>` pair out of `args`; `None` when absent,
/// `Some(Err)` when present but malformed.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<Result<String, String>> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        args.remove(i);
        return Some(Err(format!("{flag} needs a value")));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(Ok(v))
}

fn cmd_bench_diff(mut args: Vec<String>) -> ExitCode {
    let threshold = match take_opt(&mut args, "--threshold") {
        None => 5.0,
        Some(Ok(v)) => match v.parse::<f64>() {
            Ok(t) if t >= 0.0 => t,
            _ => {
                return fail(&format!(
                    "--threshold wants a non-negative percent, got `{v}`"
                ))
            }
        },
        Some(Err(e)) => return fail(&e),
    };
    let [baseline, candidate] = args.as_slice() else {
        return fail(
            "bench-diff takes <baseline.json> <candidate.json> [--threshold <pct>]\n\n\
             — see alphonse-trace --help",
        );
    };
    let load = |path: &str| -> Result<alphonse_trace_tools::benchdiff::BenchTable, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        alphonse_trace_tools::benchdiff::BenchTable::parse(&text)
            .map_err(|e| format!("{path}: {e}"))
    };
    match (load(baseline), load(candidate)) {
        (Ok(before), Ok(after)) => {
            let report = alphonse_trace_tools::benchdiff::diff(&before, &after);
            emit(&report.render(threshold));
            if report.worst_regression_pct() > threshold {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        (Err(e), _) | (_, Err(e)) => fail(&e),
    }
}

fn cmd_check_static(args: Vec<String>) -> ExitCode {
    let [trace_path, graph_path] = args.as_slice() else {
        return fail(
            "check-static takes exactly <trace.jsonl> <staticgraph.json>\n\n\
             — see alphonse-trace --help",
        );
    };
    let tf = match load(trace_path) {
        Ok(tf) => tf,
        Err(e) => return fail(&e),
    };
    warn_truncated(&tf);
    let graph = match std::fs::read_to_string(graph_path)
        .map_err(|e| format!("cannot read {graph_path}: {e}"))
        .and_then(|text| {
            staticgraph::StaticGraphFile::parse(&text).map_err(|e| format!("{graph_path}: {e}"))
        }) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let report = staticgraph::check(&tf, &graph);
    emit(&report.render());
    if report.is_covered() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        emit(USAGE);
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "why" => cmd_why(args),
        "waves" => cmd_report(args, report::waves_report),
        "waste" => cmd_report(args, report::waste_report),
        "metrics" => cmd_metrics(args),
        "bench-diff" => cmd_bench_diff(args),
        "check-static" => cmd_check_static(args),
        other => fail(&format!("unknown command `{other}`\n\n{USAGE}")),
    }
}
