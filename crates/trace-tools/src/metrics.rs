//! Offline reader for `alphonse-metrics-v1` snapshot files.
//!
//! The runtime's [`MetricsSnapshot::to_json`] (and the bench harness's
//! `METRICS_<id>.json` sidecars) serialize histograms in sparse bucket
//! form. This module parses them back — counters, the five runtime
//! histograms, worker and shard gauges — and renders either one snapshot
//! (percentile readout per histogram, utilization per worker) or the
//! change between two (counters subtract, histograms bucket-subtract via
//! [`HistogramSnapshot::delta_since`]).
//!
//! [`MetricsSnapshot::to_json`]: alphonse::MetricsSnapshot::to_json

use crate::json::Json;
use alphonse::HistogramSnapshot;
use std::fmt::Write as _;

/// One parsed worker row (`workers` array of the snapshot document).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRow {
    /// Worker slot index within the execution pool.
    pub slot: u64,
    /// Nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent waiting for jobs.
    pub idle_ns: u64,
    /// Jobs completed.
    pub jobs: u64,
}

/// One parsed shard row (`pool.shards` of the snapshot document).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRow {
    /// Shard index within the session pool.
    pub shard: u64,
    /// Tenants currently resident (a level gauge, not a counter).
    pub tenants: u64,
    /// Jobs executed by this shard.
    pub jobs: u64,
}

/// One parsed memory-accounting row (`mem` object of the snapshot
/// document), present when the producing binary installed the tracking
/// allocator (`alphonse::mem::TrackingAlloc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRow {
    /// Subsystem tag name (`graph_core`, `value_slab`, …).
    pub tag: String,
    /// Bytes currently live under this tag.
    pub live_bytes: u64,
    /// Blocks currently live under this tag.
    pub live_allocs: u64,
    /// High-water mark of `live_bytes`.
    pub hwm_bytes: u64,
    /// Allocations ever made under this tag.
    pub total_allocs: u64,
}

/// The serving section of a snapshot (`pool`), present when the snapshot
/// came from a `SessionPool`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolDoc {
    /// Submit→execute sojourn latency histogram (ns).
    pub submit_sojourn_ns: HistogramSnapshot,
    /// `flush()` wall-time histogram (ns).
    pub flush_latency_ns: HistogramSnapshot,
    /// Per-shard gauges.
    pub shards: Vec<ShardRow>,
}

/// A parsed `alphonse-metrics-v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// Monotone counters, in document order (the `Stats` field set).
    pub counters: Vec<(String, u64)>,
    /// Named histograms, in document order. Names ending in `_ns` hold
    /// nanosecond latencies; the rest hold dimensionless per-wave counts.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Current pooled-executor queue depth.
    pub queue_depth: u64,
    /// High-water mark of the executor queue.
    pub queue_depth_hwm: u64,
    /// Per-worker busy/idle gauges (empty unless a worker pool ran).
    pub workers: Vec<WorkerRow>,
    /// Per-subsystem memory gauges (empty unless the producing binary
    /// installed the tracking allocator).
    pub mem: Vec<MemRow>,
    /// Serving-layer section, when present.
    pub pool: Option<PoolDoc>,
}

fn field_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer `{key}`"))
}

fn parse_hist(v: &Json, name: &str) -> Result<HistogramSnapshot, String> {
    let sum = field_u64(v, "sum", name)?;
    let max = field_u64(v, "max", name)?;
    let mut buckets = Vec::new();
    for pair in v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{name}: missing `buckets` array"))?
    {
        match pair.as_arr() {
            Some([i, c]) => buckets.push((
                i.as_u64()
                    .ok_or_else(|| format!("{name}: non-integer bucket index"))?
                    as usize,
                c.as_u64()
                    .ok_or_else(|| format!("{name}: non-integer bucket count"))?,
            )),
            _ => return Err(format!("{name}: bucket entries must be [index, count]")),
        }
    }
    let h = HistogramSnapshot::from_sparse(&buckets, sum, max)
        .ok_or_else(|| format!("{name}: bucket index out of range"))?;
    let declared = field_u64(v, "count", name)?;
    if h.count() != declared {
        return Err(format!(
            "{name}: declared count {declared} != bucket total {}",
            h.count()
        ));
    }
    Ok(h)
}

impl MetricsDoc {
    /// Parses one snapshot document, verifying the schema marker.
    pub fn parse(text: &str) -> Result<MetricsDoc, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some("alphonse-metrics-v1") => {}
            Some(other) => return Err(format!("unsupported schema `{other}`")),
            None => return Err("not a metrics snapshot (no `schema` field)".into()),
        }
        let mut counters = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("counters") {
            for (name, v) in fields {
                counters.push((
                    name.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("counter `{name}` is not an integer"))?,
                ));
            }
        }
        let mut histograms = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("histograms") {
            for (name, v) in fields {
                histograms.push((name.clone(), parse_hist(v, name)?));
            }
        }
        let gauges = doc.get("gauges").ok_or("missing `gauges` section")?;
        let mut workers = Vec::new();
        for w in doc.get("workers").and_then(Json::as_arr).unwrap_or(&[]) {
            workers.push(WorkerRow {
                slot: field_u64(w, "slot", "worker")?,
                busy_ns: field_u64(w, "busy_ns", "worker")?,
                idle_ns: field_u64(w, "idle_ns", "worker")?,
                jobs: field_u64(w, "jobs", "worker")?,
            });
        }
        let mut mem = Vec::new();
        if let Some(Json::Obj(tags)) = doc.get("mem") {
            for (tag, v) in tags {
                let ctx = format!("mem.{tag}");
                mem.push(MemRow {
                    tag: tag.clone(),
                    live_bytes: field_u64(v, "live_bytes", &ctx)?,
                    live_allocs: field_u64(v, "live_allocs", &ctx)?,
                    hwm_bytes: field_u64(v, "hwm_bytes", &ctx)?,
                    total_allocs: field_u64(v, "total_allocs", &ctx)?,
                });
            }
        }
        let pool = match doc.get("pool") {
            None => None,
            Some(p) => {
                let mut shards = Vec::new();
                for s in p.get("shards").and_then(Json::as_arr).unwrap_or(&[]) {
                    shards.push(ShardRow {
                        shard: field_u64(s, "shard", "shard")?,
                        tenants: field_u64(s, "tenants", "shard")?,
                        jobs: field_u64(s, "jobs", "shard")?,
                    });
                }
                Some(PoolDoc {
                    submit_sojourn_ns: parse_hist(
                        p.get("submit_sojourn_ns").ok_or("pool: missing sojourn")?,
                        "submit_sojourn_ns",
                    )?,
                    flush_latency_ns: parse_hist(
                        p.get("flush_latency_ns").ok_or("pool: missing flush")?,
                        "flush_latency_ns",
                    )?,
                    shards,
                })
            }
        };
        Ok(MetricsDoc {
            counters,
            histograms,
            queue_depth: field_u64(gauges, "queue_depth", "gauges")?,
            queue_depth_hwm: field_u64(gauges, "queue_depth_hwm", "gauges")?,
            workers,
            mem,
            pool,
        })
    }

    /// The change from `before` to `self`: counters and histogram buckets
    /// subtract (entries absent from `before` pass through); gauges, worker,
    /// shard and memory rows are level readings, so the later snapshot's
    /// values are reported as-is.
    pub fn delta_since(&self, before: &MetricsDoc) -> MetricsDoc {
        let mut d = self.clone();
        for (name, v) in &mut d.counters {
            if let Some((_, b)) = before.counters.iter().find(|(n, _)| n == name) {
                *v = v.saturating_sub(*b);
            }
        }
        for (name, h) in &mut d.histograms {
            if let Some((_, b)) = before.histograms.iter().find(|(n, _)| n == name) {
                *h = h.delta_since(b);
            }
        }
        d
    }

    /// Renders the human-readable report (see `alphonse-trace metrics`).
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {title}");
        let _ = writeln!(out, "\n## counters");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<24} {v}");
        }
        let _ = writeln!(out, "\n## histograms");
        for (name, h) in &self.histograms {
            if h.count() == 0 {
                let _ = writeln!(out, "{name:<18} (no samples)");
                continue;
            }
            let ns = name.ends_with("_ns");
            let cell = |v: u64| if ns { fmt_ns(v) } else { v.to_string() };
            let _ = writeln!(
                out,
                "{name:<18} n={:<7} mean={:<9} p50={:<9} p90={:<9} p99={:<9} max={}",
                h.count(),
                cell(h.mean().round() as u64),
                cell(h.percentile(0.50)),
                cell(h.percentile(0.90)),
                cell(h.percentile(0.99)),
                cell(h.max),
            );
        }
        let _ = writeln!(out, "\n## executor");
        let _ = writeln!(
            out,
            "queue_depth {} (hwm {})",
            self.queue_depth, self.queue_depth_hwm
        );
        for w in &self.workers {
            let total = w.busy_ns + w.idle_ns;
            let util = if total == 0 {
                0.0
            } else {
                w.busy_ns as f64 / total as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "worker {}: busy {} idle {} jobs {} utilization {util:.0}%",
                w.slot,
                fmt_ns(w.busy_ns),
                fmt_ns(w.idle_ns),
                w.jobs,
            );
        }
        if !self.mem.is_empty() {
            let _ = writeln!(out, "\n## memory");
            for r in &self.mem {
                let _ = writeln!(
                    out,
                    "{:<14} live {:>10} ({} allocs)  hwm {:>10}  total allocs {}",
                    r.tag,
                    fmt_bytes(r.live_bytes),
                    r.live_allocs,
                    fmt_bytes(r.hwm_bytes),
                    r.total_allocs,
                );
            }
            let live_total: u64 = self.mem.iter().map(|r| r.live_bytes).sum();
            let _ = write!(out, "{:<14} live {:>10}", "total", fmt_bytes(live_total));
            // Derived footprint per graph node, when the snapshot carries
            // the node counter.
            if let Some((_, nodes)) = self
                .counters
                .iter()
                .find(|(n, _)| n == "mem_nodes")
                .filter(|(_, n)| *n > 0)
            {
                let _ = write!(
                    out,
                    "  ({:.0} bytes/node over {nodes} nodes)",
                    live_total as f64 / *nodes as f64
                );
            }
            let _ = writeln!(out);
        }
        if let Some(pool) = &self.pool {
            let _ = writeln!(out, "\n## pool");
            for (name, h) in [
                ("submit_sojourn_ns", &pool.submit_sojourn_ns),
                ("flush_latency_ns", &pool.flush_latency_ns),
            ] {
                if h.count() == 0 {
                    let _ = writeln!(out, "{name:<18} (no samples)");
                } else {
                    let _ = writeln!(
                        out,
                        "{name:<18} n={:<7} p50={:<9} p99={:<9} max={}",
                        h.count(),
                        fmt_ns(h.percentile(0.50)),
                        fmt_ns(h.percentile(0.99)),
                        fmt_ns(h.max),
                    );
                }
            }
            for s in &pool.shards {
                let _ = writeln!(
                    out,
                    "shard {}: tenants {} jobs {}",
                    s.shard, s.tenants, s.jobs
                );
            }
        }
        out
    }
}

/// Formats a byte quantity at a human scale (`B`, `KiB`, `MiB`, `GiB`).
fn fmt_bytes(b: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    match b {
        0..=1023 => format!("{b} B"),
        KIB..=1048575 => format!("{:.1} KiB", b as f64 / KIB as f64),
        MIB..=1073741823 => format!("{:.1} MiB", b as f64 / MIB as f64),
        _ => format!("{:.2} GiB", b as f64 / GIB as f64),
    }
}

/// Formats a nanosecond quantity at a human scale (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphonse::{Runtime, Strategy};

    fn sample_doc() -> String {
        let rt = Runtime::new();
        let v = rt.var(1i64);
        let m = rt.memo_with("m", Strategy::Eager, move |rt, &(): &()| v.get(rt) + 1);
        m.call(&rt, ());
        for i in 0..5 {
            v.set(&rt, i);
            rt.propagate();
        }
        rt.metrics_snapshot().to_json()
    }

    #[test]
    fn round_trips_a_runtime_snapshot() {
        let text = sample_doc();
        let doc = MetricsDoc::parse(&text).expect("parses");
        assert!(doc.counters.iter().any(|(n, _)| n == "waves"));
        let rendered = doc.render("snapshot");
        assert!(rendered.contains("## counters"));
        assert!(rendered.contains("waves"));
        // trace-tools always builds alphonse with its default features, so
        // the wiring is live and the snapshot carries real waves.
        let (_, waves) = doc.counters.iter().find(|(n, _)| n == "waves").unwrap();
        assert!(*waves >= 5);
        let (_, h) = doc
            .histograms
            .iter()
            .find(|(n, _)| n == "wave_latency_ns")
            .unwrap();
        assert!(h.count() >= 5);
        assert!(rendered.contains("p99="));
    }

    #[test]
    fn delta_subtracts_counters_and_buckets() {
        let a = MetricsDoc::parse(&sample_doc()).unwrap();
        let b = MetricsDoc::parse(&sample_doc()).unwrap();
        let mut twice = b.clone();
        // Fake a strictly-later snapshot by doubling everything monotone.
        for (i, (_, v)) in twice.counters.iter_mut().enumerate() {
            *v += a.counters[i].1;
        }
        for (i, (_, h)) in twice.histograms.iter_mut().enumerate() {
            h.merge(&a.histograms[i].1);
        }
        let d = twice.delta_since(&b);
        assert_eq!(d.counters, a.counters);
        for (i, (_, h)) in d.histograms.iter().enumerate() {
            assert_eq!(h.count(), a.histograms[i].1.count());
        }
    }

    #[test]
    fn rejects_wrong_schema_and_bad_counts() {
        assert!(MetricsDoc::parse("{\"schema\":\"other\"}").is_err());
        assert!(MetricsDoc::parse("{}").is_err());
        let bad = "{\"schema\":\"alphonse-metrics-v1\",\"counters\":{},\"histograms\":{\
                   \"h\":{\"count\":2,\"sum\":1,\"max\":1,\"buckets\":[[1,1]]}},\
                   \"gauges\":{\"queue_depth\":0,\"queue_depth_hwm\":0},\"workers\":[]}";
        let err = MetricsDoc::parse(bad).unwrap_err();
        assert!(err.contains("declared count"), "got: {err}");
    }

    #[test]
    fn parses_and_renders_mem_section() {
        let text = "{\"schema\":\"alphonse-metrics-v1\",\
                    \"counters\":{\"mem_nodes\":4},\"histograms\":{},\
                    \"gauges\":{\"queue_depth\":0,\"queue_depth_hwm\":0},\"workers\":[],\
                    \"mem\":{\"graph_core\":{\"live_bytes\":4096,\"live_allocs\":3,\
                    \"hwm_bytes\":8192,\"total_allocs\":10},\
                    \"value_slab\":{\"live_bytes\":64,\"live_allocs\":4,\
                    \"hwm_bytes\":64,\"total_allocs\":4}}}";
        let doc = MetricsDoc::parse(text).expect("parses");
        assert_eq!(doc.mem.len(), 2);
        assert_eq!(doc.mem[0].tag, "graph_core");
        assert_eq!(doc.mem[0].hwm_bytes, 8192);
        let rendered = doc.render("snapshot");
        assert!(rendered.contains("## memory"));
        assert!(rendered.contains("graph_core"));
        assert!(rendered.contains("4.0 KiB"));
        // 4160 live bytes over 4 nodes.
        assert!(
            rendered.contains("1040 bytes/node over 4 nodes"),
            "got:\n{rendered}"
        );
        // A snapshot without a `mem` object renders no memory section.
        let plain = MetricsDoc::parse(&sample_doc()).unwrap();
        assert!(plain.mem.is_empty());
        assert!(!plain.render("snapshot").contains("## memory"));
    }

    #[test]
    fn formats_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(87_400), "87.4µs");
        assert_eq!(fmt_ns(3_200_000), "3.2ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
