//! The JSONL trace document model: meta line, event records, and a replay
//! into the live [`Provenance`] index from `alphonse::trace`.
//!
//! The format is produced by `alphonse::trace::JsonlSink` (and
//! `Recorder::to_jsonl`): one meta object on the first line, then one event
//! object per line. This module parses it back into real
//! [`TraceEvent`] values, so every analysis downstream reuses the same
//! types — and the same causal index — the runtime feeds live.

use crate::json::Json;
use alphonse::trace::{DirtyReason, Provenance, TraceEvent, TraceSink};
use alphonse::{NodeId, NodeKind};
use std::sync::Arc;

/// The document header: `{"meta":{...}}` on line 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    /// Format tag; must be `alphonse-trace`.
    pub format: String,
    /// Line-layout version.
    pub version: u64,
    /// Events evicted before the document was written. Non-zero only for
    /// documents exported from a bounded `Recorder`; a truncated trace
    /// cannot answer causal queries trustworthily.
    pub dropped: u64,
    /// Ring capacity of the recorder that produced a truncated document.
    pub capacity: Option<u64>,
}

/// One event line: timestamp, optional wave stamp, the decoded event, and
/// the label the writer resolved for the event's node (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Microseconds since the writing sink was created.
    pub ts: u64,
    /// The propagation wave this event was delivered in, when inside one.
    pub wave: Option<u64>,
    /// The decoded runtime event.
    pub event: TraceEvent,
    /// The `"label"` field of the line, when present.
    pub label: Option<String>,
}

/// A fully parsed trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// The meta header.
    pub meta: Meta,
    /// Every event line, in file order.
    pub records: Vec<Record>,
}

fn field_u64(obj: &Json, key: &str, line: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer `{key}`"))
}

fn field_bool(obj: &Json, key: &str, line: usize) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("line {line}: missing or non-boolean `{key}`"))
}

fn field_node(obj: &Json, key: &str, line: usize) -> Result<NodeId, String> {
    field_u64(obj, key, line).map(|i| NodeId::from_index(i as usize))
}

fn parse_reason(s: &str, line: usize) -> Result<DirtyReason, String> {
    match s {
        "WriteChanged" => Ok(DirtyReason::WriteChanged),
        "Fanout" => Ok(DirtyReason::Fanout),
        "Requeue" => Ok(DirtyReason::Requeue),
        other => Err(format!("line {line}: unknown dirty reason `{other}`")),
    }
}

fn parse_kind(s: &str, line: usize) -> Result<NodeKind, String> {
    match s {
        "Location" => Ok(NodeKind::Location),
        "Computation" => Ok(NodeKind::Computation),
        other => Err(format!("line {line}: unknown node kind `{other}`")),
    }
}

fn parse_event(obj: &Json, label: Option<&str>, line: usize) -> Result<TraceEvent, String> {
    let ev = obj
        .get("ev")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: missing `ev`"))?;
    let node = |key: &str| field_node(obj, key, line);
    Ok(match ev {
        "NodeCreated" => TraceEvent::NodeCreated {
            node: node("node")?,
            kind: obj
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {line}: missing `kind`"))
                .and_then(|s| parse_kind(s, line))?,
            label: label.map(Arc::from),
        },
        "Labeled" => TraceEvent::Labeled {
            node: node("node")?,
            label: Arc::from(label.ok_or_else(|| format!("line {line}: Labeled without `label`"))?),
        },
        "Read" => TraceEvent::Read {
            node: node("node")?,
        },
        "Write" => TraceEvent::Write {
            node: node("node")?,
            changed: field_bool(obj, "changed", line)?,
        },
        "Dirtied" => TraceEvent::Dirtied {
            node: node("node")?,
            reason: obj
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {line}: missing `reason`"))
                .and_then(|s| parse_reason(s, line))?,
            cause: match obj.get("cause") {
                Some(c) => Some(NodeId::from_index(
                    c.as_u64()
                        .ok_or_else(|| format!("line {line}: non-integer `cause`"))?
                        as usize,
                )),
                None => None,
            },
        },
        "PropagateBegin" => TraceEvent::PropagateBegin {
            wave: field_u64(obj, "wave", line)?,
        },
        "PropagateEnd" => TraceEvent::PropagateEnd {
            wave: field_u64(obj, "wave", line)?,
            steps: field_u64(obj, "steps", line)?,
        },
        "LevelBegin" => TraceEvent::LevelBegin {
            wave: field_u64(obj, "wave", line)?,
            height: field_u64(obj, "height", line)? as u32,
            width: field_u64(obj, "width", line)?,
        },
        "LevelEnd" => TraceEvent::LevelEnd {
            wave: field_u64(obj, "wave", line)?,
            height: field_u64(obj, "height", line)? as u32,
            executed: field_u64(obj, "executed", line)?,
        },
        "ExecuteBegin" => TraceEvent::ExecuteBegin {
            node: node("node")?,
        },
        "ExecuteEnd" => TraceEvent::ExecuteEnd {
            node: node("node")?,
            changed: field_bool(obj, "changed", line)?,
        },
        "CacheHit" => TraceEvent::CacheHit {
            node: node("node")?,
        },
        "CutoffStop" => TraceEvent::CutoffStop {
            node: node("node")?,
        },
        "EdgeAdded" => TraceEvent::EdgeAdded {
            from: node("from")?,
            to: node("to")?,
        },
        "EdgesRemoved" => TraceEvent::EdgesRemoved {
            node: node("node")?,
            count: field_u64(obj, "count", line)?,
        },
        "BatchCommit" => TraceEvent::BatchCommit {
            writes: field_u64(obj, "writes", line)?,
            coalesced: field_u64(obj, "coalesced", line)?,
            wave: field_u64(obj, "wave", line)?,
        },
        other => return Err(format!("line {line}: unknown event `{other}`")),
    })
}

impl TraceFile {
    /// Parses a full JSONL document (meta line + event lines). Blank lines
    /// are skipped; any malformed line aborts with its 1-based line number.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());
        let (line_no, first) = lines.next().ok_or_else(|| "empty trace file".to_string())?;
        let head = Json::parse(first).map_err(|e| format!("line {line_no}: {e}"))?;
        let meta_obj = head
            .get("meta")
            .ok_or_else(|| format!("line {line_no}: first line is not a meta object"))?;
        let meta = Meta {
            format: meta_obj
                .get("format")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            version: field_u64(meta_obj, "version", line_no)?,
            dropped: field_u64(meta_obj, "dropped", line_no)?,
            capacity: meta_obj.get("capacity").and_then(Json::as_u64),
        };
        if meta.format != alphonse::trace::JSONL_FORMAT {
            return Err(format!(
                "not an alphonse trace (format tag `{}`)",
                meta.format
            ));
        }
        if meta.version != u64::from(alphonse::trace::JSONL_VERSION) {
            return Err(format!(
                "unsupported trace version {} (this tool reads version {})",
                meta.version,
                alphonse::trace::JSONL_VERSION
            ));
        }
        let mut records = Vec::new();
        for (line_no, line) in lines {
            let obj = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
            let label = obj.get("label").and_then(Json::as_str).map(str::to_string);
            records.push(Record {
                ts: field_u64(&obj, "ts", line_no)?,
                wave: obj.get("wave").and_then(Json::as_u64),
                event: parse_event(&obj, label.as_deref(), line_no)?,
                label,
            });
        }
        Ok(TraceFile { meta, records })
    }

    /// Replays the document into a fresh [`Provenance`] index, exactly as if
    /// it had been attached live. Labels survive the round trip: writers
    /// stamp each record with its node's resolved label, and the replay
    /// re-announces any label the index has not seen yet (a `NodeCreated`
    /// may have been evicted from a bounded recording).
    pub fn replay_provenance(&self) -> Provenance {
        let prov = Provenance::new();
        for rec in &self.records {
            if let (Some(label), Some(node)) = (&rec.label, rec.event.node()) {
                if prov.label(node).as_deref() != Some(label) {
                    prov.event(&TraceEvent::Labeled {
                        node,
                        label: Arc::from(label.as_str()),
                    });
                }
            }
            prov.event(&rec.event);
        }
        prov
    }

    /// Total count of `ExecuteEnd` records — the denominator of the waste
    /// report's completeness invariant.
    pub fn executions(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ExecuteEnd { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"meta":{"format":"alphonse-trace","version":1,"dropped":0}}
{"ts":0,"ev":"NodeCreated","node":0,"kind":"Location","label":"a"}
{"ts":1,"ev":"Write","node":0,"changed":true,"label":"a"}
{"ts":2,"ev":"Dirtied","node":0,"reason":"WriteChanged","label":"a"}
{"ts":3,"wave":1,"ev":"PropagateBegin"}
{"ts":4,"wave":1,"ev":"Dirtied","node":1,"reason":"Fanout","cause":0}
{"ts":5,"wave":1,"ev":"ExecuteEnd","node":1,"changed":true}
{"ts":6,"wave":1,"ev":"PropagateEnd","steps":2}
"#;

    #[test]
    fn parses_meta_and_records() {
        let tf = TraceFile::parse(SAMPLE).unwrap();
        assert_eq!(tf.meta.dropped, 0);
        assert_eq!(tf.meta.capacity, None);
        assert_eq!(tf.records.len(), 7);
        assert_eq!(tf.records[0].label.as_deref(), Some("a"));
        assert_eq!(
            tf.records[4].event,
            TraceEvent::Dirtied {
                node: NodeId::from_index(1),
                reason: DirtyReason::Fanout,
                cause: Some(NodeId::from_index(0)),
            }
        );
        assert_eq!(tf.records[4].wave, Some(1));
        assert_eq!(tf.executions(), 1);
    }

    #[test]
    fn replay_reconstructs_why_chain() {
        let tf = TraceFile::parse(SAMPLE).unwrap();
        let prov = tf.replay_provenance();
        let chain = prov.why(NodeId::from_index(1)).expect("n1 was dirtied");
        assert_eq!(chain.wave, Some(1));
        assert_eq!(chain.write, Some((NodeId::from_index(0), true)));
        assert_eq!(chain.exec, Some(true));
        assert_eq!(prov.node_by_label("a"), Some(NodeId::from_index(0)));
    }

    #[test]
    fn parses_level_brackets() {
        let text = r#"{"meta":{"format":"alphonse-trace","version":1,"dropped":0}}
{"ts":0,"wave":3,"ev":"PropagateBegin"}
{"ts":1,"wave":3,"ev":"LevelBegin","height":2,"width":5}
{"ts":2,"wave":3,"ev":"LevelEnd","height":2,"executed":4}
{"ts":3,"wave":3,"ev":"PropagateEnd","steps":5}
"#;
        let tf = TraceFile::parse(text).unwrap();
        assert_eq!(
            tf.records[1].event,
            TraceEvent::LevelBegin {
                wave: 3,
                height: 2,
                width: 5
            }
        );
        assert_eq!(
            tf.records[2].event,
            TraceEvent::LevelEnd {
                wave: 3,
                height: 2,
                executed: 4
            }
        );
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(TraceFile::parse("").is_err());
        assert!(TraceFile::parse(r#"{"ts":0,"ev":"Read","node":0}"#).is_err());
        assert!(
            TraceFile::parse(r#"{"meta":{"format":"other","version":1,"dropped":0}}"#).is_err()
        );
        assert!(TraceFile::parse(
            r#"{"meta":{"format":"alphonse-trace","version":99,"dropped":0}}"#
        )
        .is_err());
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let text = "{\"meta\":{\"format\":\"alphonse-trace\",\"version\":1,\"dropped\":0}}\n{\"ts\":0,\"ev\":\"Nope\"}";
        let err = TraceFile::parse(text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
