//! Offline analysis of Alphonse JSONL traces.
//!
//! The runtime's `JsonlSink` (activated with `--trace-out <path>` on the
//! bench binaries or `ALPHONSE_TRACE=<path>` in the lang interpreter)
//! streams every [`TraceEvent`](alphonse::trace::TraceEvent) as one JSON
//! line. This crate reads those documents back and answers the questions an
//! incremental-computation user asks after a run:
//!
//! * **why** did this node recompute? — [`model::TraceFile::replay_provenance`]
//!   rebuilds the same causal index the runtime feeds live and renders the
//!   write → dirtying-fanout → execution chain;
//! * **waves** — [`report::waves`] summarizes each propagation wave (dirtied /
//!   executed / cutoffs / cache hits, causal depth, critical path);
//! * **waste** — [`report::waste`] classifies every execution as productive
//!   (value changed) or wasted (equal value recomputed), per memo label.
//!
//! Beyond traces, [`metrics`] reads the runtime's `alphonse-metrics-v1`
//! snapshot files (wave-latency histograms, worker/shard gauges,
//! per-subsystem memory gauges) and renders percentile reports or the
//! delta between two snapshots, [`benchdiff`] compares two bench result
//! tables (`BENCH_<id>.json`) and flags bad-direction changes, and
//! [`staticgraph`] reads the compiler's `alphonse-staticgraph` documents
//! (`alphonse-check graph`) and cross-validates a dynamic trace against
//! them: every runtime dependence edge must be covered by a static one.
//!
//! The `alphonse-trace` binary wraps all of these; see `src/main.rs` for
//! the CLI surface. Parsing is serde-free ([`json`]) because the build
//! environment is offline.

pub mod benchdiff;
pub mod json;
pub mod metrics;
pub mod model;
pub mod report;
pub mod staticgraph;
