//! Comparison of two bench-table JSON files (`BENCH_<id>.json`).
//!
//! Every experiment in `crates/bench` serializes its result table as
//! `{"title": …, "rows": [{header: cell, …}, …]}` (see `Table::to_json`),
//! with numeric cells as JSON numbers and descriptive cells (workload
//! names, modes) as strings. This module reads two such files — a baseline
//! and a candidate — matches rows by their string cells, and reports the
//! percent change of every numeric column, flagging changes in the
//! *bad* direction as regressions:
//!
//! * columns whose header suggests a rate (`…/s`, `throughput`, `speedup`,
//!   `hits`) regress when they **drop**;
//! * everything else (times, byte counts, work counters) regresses when it
//!   **grows**.
//!
//! `alphonse-trace bench-diff a.json b.json --threshold 5` exits nonzero
//! when any column regresses by more than 5%, which is how CI gates a perf
//! trajectory without bespoke per-experiment scripting.

use crate::json::Json;
use std::fmt::Write as _;

/// One cell of a bench table: numbers diff, strings identify the row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A measured quantity.
    Num(f64),
    /// A descriptive label (workload, mode, unit); part of the row key.
    Str(String),
}

/// A parsed bench table: title plus rows of `(header, cell)` pairs in
/// document order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTable {
    /// The experiment's title line.
    pub title: String,
    /// Rows in document order; each row keeps its columns in order.
    pub rows: Vec<Vec<(String, Cell)>>,
}

impl BenchTable {
    /// Parses one `BENCH_<id>.json` document.
    pub fn parse(text: &str) -> Result<BenchTable, String> {
        let doc = Json::parse(text)?;
        let title = doc
            .get("title")
            .and_then(Json::as_str)
            .ok_or("not a bench table (no `title` string)")?
            .to_string();
        let mut rows = Vec::new();
        for (i, row) in doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("not a bench table (no `rows` array)")?
            .iter()
            .enumerate()
        {
            let Json::Obj(fields) = row else {
                return Err(format!("row {i} is not an object"));
            };
            let mut cells = Vec::with_capacity(fields.len());
            for (header, v) in fields {
                let cell = match v {
                    Json::Num(n) => Cell::Num(*n),
                    Json::Str(s) => Cell::Str(s.clone()),
                    other => return Err(format!("row {i} `{header}`: unsupported cell {other:?}")),
                };
                cells.push((header.clone(), cell));
            }
            rows.push(cells);
        }
        Ok(BenchTable { title, rows })
    }

    /// The identity of a row: its string cells joined with ` / `, so the
    /// same workload/mode matches across files even if row order or the
    /// measured numbers changed. Rows with no string cells fall back to
    /// their position.
    fn row_key(row: &[(String, Cell)], index: usize) -> String {
        let parts: Vec<&str> = row
            .iter()
            .filter_map(|(_, c)| match c {
                Cell::Str(s) => Some(s.as_str()),
                Cell::Num(_) => None,
            })
            .collect();
        if parts.is_empty() {
            format!("row {index}")
        } else {
            parts.join(" / ")
        }
    }
}

/// Whether a larger value of this column is an improvement. Rates and hit
/// counts improve upward; latencies, byte counts and work counters improve
/// downward.
fn higher_is_better(header: &str) -> bool {
    let h = header.to_ascii_lowercase();
    h.contains("/s")
        || h.contains("per_sec")
        || h.contains("throughput")
        || h.contains("speedup")
        || h.contains("hit")
}

/// One numeric column's change between baseline and candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ColDelta {
    /// Column header.
    pub header: String,
    /// Baseline value.
    pub before: f64,
    /// Candidate value.
    pub after: f64,
    /// Percent change, `(after - before) / before * 100`; `None` when the
    /// baseline is zero (no meaningful percentage).
    pub pct: Option<f64>,
    /// Direction sense for regression classification.
    pub higher_is_better: bool,
}

impl ColDelta {
    /// Percent change in the *bad* direction: positive when the column got
    /// worse, regardless of its direction sense.
    pub fn regression_pct(&self) -> f64 {
        match self.pct {
            Some(p) if self.higher_is_better => -p,
            Some(p) => p,
            None => 0.0,
        }
    }
}

/// One matched row's numeric deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDiff {
    /// The row identity (string cells joined).
    pub key: String,
    /// Per-column changes, in column order.
    pub cols: Vec<ColDelta>,
}

/// The full comparison of two bench tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Baseline title.
    pub before_title: String,
    /// Candidate title.
    pub after_title: String,
    /// Matched rows in candidate order.
    pub rows: Vec<RowDiff>,
    /// Row keys present only in the baseline.
    pub only_before: Vec<String>,
    /// Row keys present only in the candidate.
    pub only_after: Vec<String>,
}

/// Compares `after` (candidate) against `before` (baseline), matching rows
/// by key and diffing every numeric column the two sides share.
pub fn diff(before: &BenchTable, after: &BenchTable) -> DiffReport {
    let keyed_before: Vec<(String, &Vec<(String, Cell)>)> = before
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| (BenchTable::row_key(r, i), r))
        .collect();
    let mut matched_before: Vec<bool> = vec![false; keyed_before.len()];
    let mut rows = Vec::new();
    let mut only_after = Vec::new();
    for (i, row) in after.rows.iter().enumerate() {
        let key = BenchTable::row_key(row, i);
        let Some(bi) = keyed_before.iter().position(|(k, _)| *k == key) else {
            only_after.push(key);
            continue;
        };
        matched_before[bi] = true;
        let base = keyed_before[bi].1;
        let mut cols = Vec::new();
        for (header, cell) in row {
            let Cell::Num(a) = cell else { continue };
            let Some(Cell::Num(b)) = base
                .iter()
                .find(|(h, _)| h == header)
                .map(|(_, c)| c.clone())
            else {
                continue;
            };
            let pct = (b != 0.0).then(|| (a - b) / b * 100.0);
            cols.push(ColDelta {
                header: header.clone(),
                before: b,
                after: *a,
                pct,
                higher_is_better: higher_is_better(header),
            });
        }
        rows.push(RowDiff { key, cols });
    }
    let only_before = keyed_before
        .iter()
        .zip(&matched_before)
        .filter(|(_, m)| !**m)
        .map(|((k, _), _)| k.clone())
        .collect();
    DiffReport {
        before_title: before.title.clone(),
        after_title: after.title.clone(),
        rows,
        only_before,
        only_after,
    }
}

impl DiffReport {
    /// The largest bad-direction change across all rows and columns, in
    /// percent (0 when nothing regressed).
    pub fn worst_regression_pct(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| r.cols.iter())
            .map(ColDelta::regression_pct)
            .fold(0.0, f64::max)
    }

    /// Renders the human-readable comparison. Each matched row lists its
    /// numeric columns as `before → after (±pct%)`, tagging bad-direction
    /// changes beyond `threshold` percent with `REGRESSION`.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# bench-diff: {} → {}",
            self.before_title, self.after_title
        );
        for row in &self.rows {
            let _ = writeln!(out, "\n## {}", row.key);
            for c in &row.cols {
                let change = match c.pct {
                    Some(p) => format!("{p:+.1}%"),
                    None => "baseline 0".to_string(),
                };
                let flag = if c.regression_pct() > threshold {
                    "  REGRESSION"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "{:<24} {} → {} ({change}){flag}",
                    c.header,
                    fmt_num(c.before),
                    fmt_num(c.after),
                );
            }
        }
        for key in &self.only_before {
            let _ = writeln!(out, "\nonly in baseline: {key}");
        }
        for key in &self.only_after {
            let _ = writeln!(out, "\nonly in candidate: {key}");
        }
        let worst = self.worst_regression_pct();
        let _ = writeln!(
            out,
            "\nworst regression: {worst:.1}% (threshold {threshold:.1}%)"
        );
        out
    }
}

/// Formats a measured value compactly: integers stay integral, fractions
/// keep three significant decimals.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "title": "E1 chain",
      "rows": [
        {"workload": "chain", "mode": "incremental", "ns/update": 100, "updates/s": 1000},
        {"workload": "chain", "mode": "scratch", "ns/update": 500, "updates/s": 200}
      ]
    }"#;

    #[test]
    fn parses_and_keys_rows() {
        let t = BenchTable::parse(BASE).unwrap();
        assert_eq!(t.title, "E1 chain");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(BenchTable::row_key(&t.rows[0], 0), "chain / incremental");
    }

    #[test]
    fn clean_diff_has_no_regression() {
        let t = BenchTable::parse(BASE).unwrap();
        let d = diff(&t, &t);
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.worst_regression_pct(), 0.0);
        let rendered = d.render(5.0);
        assert!(rendered.contains("chain / incremental"));
        assert!(!rendered.contains("REGRESSION"));
    }

    #[test]
    fn injected_regression_is_flagged_with_direction_sense() {
        let t = BenchTable::parse(BASE).unwrap();
        // Candidate: latency up 20% (bad), rate up 20% (good).
        let cand = BenchTable::parse(
            r#"{
          "title": "E1 chain",
          "rows": [
            {"workload": "chain", "mode": "incremental", "ns/update": 120, "updates/s": 1200},
            {"workload": "chain", "mode": "scratch", "ns/update": 500, "updates/s": 200}
          ]
        }"#,
        )
        .unwrap();
        let d = diff(&t, &cand);
        let worst = d.worst_regression_pct();
        assert!((worst - 20.0).abs() < 1e-9, "worst = {worst}");
        let rendered = d.render(5.0);
        assert!(rendered.contains("REGRESSION"));
        // The improved rate must NOT be flagged.
        let rate_line = rendered.lines().find(|l| l.contains("updates/s")).unwrap();
        assert!(!rate_line.contains("REGRESSION"), "got: {rate_line}");
    }

    #[test]
    fn dropped_rate_regresses() {
        let t = BenchTable::parse(BASE).unwrap();
        let cand = BenchTable::parse(
            r#"{
          "title": "E1 chain",
          "rows": [
            {"workload": "chain", "mode": "incremental", "ns/update": 100, "updates/s": 800}
          ]
        }"#,
        )
        .unwrap();
        let d = diff(&t, &cand);
        assert!((d.worst_regression_pct() - 20.0).abs() < 1e-9);
        assert_eq!(d.only_before, vec!["chain / scratch".to_string()]);
    }

    #[test]
    fn unmatched_rows_are_reported_not_diffed() {
        let t = BenchTable::parse(BASE).unwrap();
        let cand = BenchTable::parse(
            r#"{"title": "E1 chain", "rows": [
              {"workload": "tree", "mode": "incremental", "ns/update": 1}
            ]}"#,
        )
        .unwrap();
        let d = diff(&t, &cand);
        assert!(d.rows.is_empty());
        assert_eq!(d.only_after, vec!["tree / incremental".to_string()]);
        assert_eq!(d.only_before.len(), 2);
        assert_eq!(d.worst_regression_pct(), 0.0);
    }

    #[test]
    fn zero_baseline_is_not_a_percentage() {
        let base =
            BenchTable::parse(r#"{"title": "t", "rows": [{"w": "x", "count": 0}]}"#).unwrap();
        let cand =
            BenchTable::parse(r#"{"title": "t", "rows": [{"w": "x", "count": 7}]}"#).unwrap();
        let d = diff(&base, &cand);
        assert_eq!(d.rows[0].cols[0].pct, None);
        assert_eq!(d.worst_regression_pct(), 0.0);
        assert!(d.render(5.0).contains("baseline 0"));
    }

    #[test]
    fn rejects_non_table_documents() {
        assert!(BenchTable::parse("{}").is_err());
        assert!(BenchTable::parse(r#"{"title": "t"}"#).is_err());
        assert!(BenchTable::parse(r#"{"title": "t", "rows": [3]}"#).is_err());
    }
}
