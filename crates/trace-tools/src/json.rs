//! A minimal JSON parser — just enough for the trace documents this
//! workspace produces (JSONL records and Chrome trace arrays).
//!
//! The build environment is offline, so no serde: this is a small
//! recursive-descent parser over the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null). It favors clear error
//! messages over speed; trace files are read once.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; trace fields all fit exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing whitespace is allowed,
    /// trailing content is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our
                            // escaper; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Json::parse(r#"{"a":1,"b":"x\ny","c":[true,null,-2.5],"d":{"e":3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        let arr = v.get("c").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2], Json::Num(-2.5));
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn unescapes_unicode() {
        let v = Json::parse(
            r#""a
b\"c\\""#,
        )
        .unwrap();
        assert_eq!(v.as_str(), Some("a\nb\"c\\"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse(r#"{"a":"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }
}
