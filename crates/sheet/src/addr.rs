//! Cell addresses in the familiar `B12` notation.

use std::fmt;
use std::str::FromStr;

/// A cell coordinate: zero-based column and row.
///
/// # Example
///
/// ```
/// use alphonse_sheet::Addr;
/// let a: Addr = "B12".parse().unwrap();
/// assert_eq!((a.col, a.row), (1, 11));
/// assert_eq!(a.to_string(), "B12");
/// assert_eq!("AA1".parse::<Addr>().unwrap().col, 26);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// Zero-based column (`A` = 0).
    pub col: u32,
    /// Zero-based row (`1` = 0).
    pub row: u32,
}

impl Addr {
    /// Builds an address from zero-based coordinates.
    pub fn new(col: u32, row: u32) -> Addr {
        Addr { col, row }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column in bijective base 26.
        let mut c = self.col + 1;
        let mut letters = Vec::new();
        while c > 0 {
            let rem = (c - 1) % 26;
            letters.push(char::from(b'A' + rem as u8));
            c = (c - 1) / 26;
        }
        for ch in letters.iter().rev() {
            write!(f, "{ch}")?;
        }
        write!(f, "{}", self.row + 1)
    }
}

/// Error parsing an [`Addr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError(pub(crate) String);

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cell address: {}", self.0)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Addr, ParseAddrError> {
        let bytes = s.as_bytes();
        let letters_end = bytes
            .iter()
            .position(|b| !b.is_ascii_alphabetic())
            .unwrap_or(bytes.len());
        if letters_end == 0 || letters_end == bytes.len() {
            return Err(ParseAddrError(s.to_string()));
        }
        let mut col: u64 = 0;
        for &b in &bytes[..letters_end] {
            col = col * 26 + u64::from(b.to_ascii_uppercase() - b'A' + 1);
            if col > u64::from(u32::MAX / 2) {
                return Err(ParseAddrError(s.to_string()));
            }
        }
        let row: u32 = s[letters_end..]
            .parse::<u32>()
            .ok()
            .filter(|&r| r >= 1)
            .ok_or_else(|| ParseAddrError(s.to_string()))?;
        Ok(Addr {
            col: (col - 1) as u32,
            row: row - 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_letter_round_trip() {
        for col in 0..60u32 {
            for row in [0u32, 5, 99] {
                let a = Addr::new(col, row);
                let parsed: Addr = a.to_string().parse().unwrap();
                assert_eq!(parsed, a);
            }
        }
    }

    #[test]
    fn known_addresses() {
        assert_eq!("A1".parse::<Addr>().unwrap(), Addr::new(0, 0));
        assert_eq!("Z9".parse::<Addr>().unwrap(), Addr::new(25, 8));
        assert_eq!("AA1".parse::<Addr>().unwrap(), Addr::new(26, 0));
        assert_eq!("AB10".parse::<Addr>().unwrap(), Addr::new(27, 9));
        assert_eq!(
            "b2".parse::<Addr>().unwrap(),
            Addr::new(1, 1),
            "case-insensitive"
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "1", "A", "A0", "1A", "A-1", "A1B"] {
            assert!(bad.parse::<Addr>().is_err(), "{bad:?} should not parse");
        }
    }
}
