//! Full-recalculation baseline spreadsheet.
//!
//! The conventional execution of the Section 7.2 program: every query
//! re-evaluates the queried cell's whole dependency cone from the formulas,
//! with no caching. Used by experiment E6 to quantify the incremental
//! speedup.

use crate::addr::Addr;
use crate::formula::{CellValue, Formula};
use crate::sheet::eval_formula;
use std::cell::{Cell, RefCell};
use std::fmt;

/// A spreadsheet that recomputes from scratch on every query.
///
/// # Example
///
/// ```
/// use alphonse_sheet::RecalcSheet;
/// let s = RecalcSheet::new(4, 4);
/// s.set("A1", "21").unwrap();
/// s.set("B1", "=A1+A1").unwrap();
/// assert_eq!(s.value("B1").unwrap().num(), Some(42));
/// ```
pub struct RecalcSheet {
    width: u32,
    height: u32,
    formulas: RefCell<Vec<Formula>>,
    evaluations: Cell<u64>,
}

impl fmt::Debug for RecalcSheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecalcSheet")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish()
    }
}

impl RecalcSheet {
    /// Creates a `width × height` sheet of zero cells.
    pub fn new(width: u32, height: u32) -> RecalcSheet {
        RecalcSheet {
            width,
            height,
            formulas: RefCell::new(vec![Formula::Num(0); width as usize * height as usize]),
            evaluations: Cell::new(0),
        }
    }

    fn index(&self, a: Addr) -> Option<usize> {
        (a.col < self.width && a.row < self.height).then(|| (a.row * self.width + a.col) as usize)
    }

    /// Sets a cell from source text.
    ///
    /// # Errors
    ///
    /// Returns a message for bad addresses or formulas (cycles are detected
    /// lazily at evaluation time and yield [`CellValue::Error`]).
    pub fn set(&self, addr: &str, src: &str) -> Result<(), String> {
        let addr: Addr = addr.parse().map_err(|e| format!("{e}"))?;
        let f = crate::formula::parse_formula(src)?;
        let idx = self
            .index(addr)
            .ok_or_else(|| format!("{addr} out of bounds"))?;
        self.formulas.borrow_mut()[idx] = f;
        Ok(())
    }

    /// Value of a cell, recomputed exhaustively.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable addresses.
    pub fn value(&self, addr: &str) -> Result<CellValue, String> {
        let addr: Addr = addr.parse().map_err(|e| format!("{e}"))?;
        Ok(self.value_at(addr))
    }

    /// Value by coordinate, recomputed exhaustively.
    pub fn value_at(&self, addr: Addr) -> CellValue {
        let mut on_path = std::collections::HashSet::new();
        self.eval(addr, &mut on_path)
    }

    fn eval(&self, addr: Addr, on_path: &mut std::collections::HashSet<Addr>) -> CellValue {
        self.evaluations.set(self.evaluations.get() + 1);
        let Some(idx) = self.index(addr) else {
            return CellValue::Error;
        };
        if !on_path.insert(addr) {
            return CellValue::Error; // dynamic cycle detection
        }
        let f = self.formulas.borrow()[idx].clone();
        let out = eval_formula(&f, &mut |a| self.eval(a, on_path));
        on_path.remove(&addr);
        out
    }

    /// Cell evaluations performed so far (work counter).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// Resets the work counter.
    pub fn reset_counters(&self) {
        self.evaluations.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_basic_arithmetic() {
        let s = RecalcSheet::new(8, 8);
        s.set("A1", "5").unwrap();
        s.set("A2", "=A1*A1").unwrap();
        s.set("A3", "=A2-A1+SUM(A1:A2)").unwrap();
        assert_eq!(s.value("A3").unwrap(), CellValue::Num(50));
    }

    #[test]
    fn every_query_repeats_work() {
        let s = RecalcSheet::new(8, 8);
        s.set("A1", "1").unwrap();
        s.set("B1", "=A1+1").unwrap();
        s.reset_counters();
        s.value("B1").unwrap();
        let first = s.evaluations();
        s.value("B1").unwrap();
        assert_eq!(s.evaluations(), first * 2, "no caching");
    }

    #[test]
    fn dynamic_cycles_yield_error() {
        let s = RecalcSheet::new(4, 4);
        s.set("A1", "=A2").unwrap();
        s.set("A2", "=A1").unwrap();
        assert_eq!(s.value("A1").unwrap(), CellValue::Error);
    }

    #[test]
    fn diamond_reconverges() {
        // A1 referenced twice through B-cells: visited-set must allow
        // re-visiting on sibling paths (it is a path set, not a seen set).
        let s = RecalcSheet::new(4, 4);
        s.set("A1", "3").unwrap();
        s.set("B1", "=A1+1").unwrap();
        s.set("B2", "=A1+2").unwrap();
        s.set("C1", "=B1+B2").unwrap();
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(9));
    }
}
