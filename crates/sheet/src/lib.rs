//! The spreadsheet of the Alphonse paper, Section 7.2.
//!
//! The paper builds a spreadsheet by giving every `Cell` object an
//! expression tree and a maintained `value` method, and adding a `CellExp`
//! production that reads another cell's value — "one Alphonse program used
//! to construct another". This crate reproduces that application:
//!
//! * [`Sheet`] — the incremental spreadsheet on the Alphonse runtime:
//!   formulas live in tracked storage, cell values are maintained method
//!   instances, and one edit re-evaluates only the affected cells.
//! * [`RecalcSheet`] — the conventional-execution baseline that recomputes
//!   a cell's full dependency cone on every query (experiment E6).
//! * [`parse_formula`] / [`Formula`] — `=A1+2*SUM(B1:B9)` formula language.
//!
//! # Example
//!
//! ```
//! use alphonse::Runtime;
//! use alphonse_sheet::Sheet;
//!
//! let rt = Runtime::new();
//! let sheet = Sheet::new(&rt, 26, 100);
//! sheet.set("A1", "100").unwrap();
//! sheet.set("A2", "=A1/4").unwrap();
//! sheet.set("A3", "=SUM(A1:A2)").unwrap();
//! assert_eq!(sheet.value("A3").unwrap().num(), Some(125));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod baseline;
mod formula;
mod sheet;

pub use addr::{Addr, ParseAddrError};
pub use baseline::RecalcSheet;
pub use formula::{parse_formula, CellValue, Formula, Op};
pub use sheet::{Sheet, SheetError};
