//! The incremental spreadsheet (paper Section 7.2).
//!
//! Each cell holds its formula in a tracked variable; cell values are a
//! maintained method keyed by the cell address. The paper's construction
//! — "a Cell object consisting of an expression tree … and a maintained
//! method value that simply returns the value of the expression tree",
//! with `CellExp` productions reaching across the grid — maps to a formula
//! evaluator that calls the value memo recursively for references. Editing
//! one formula re-evaluates exactly the cells whose values can change,
//! with quiescence cutoff where recomputed values are equal.

use crate::addr::Addr;
use crate::formula::{CellValue, Formula, Op};
use alphonse::{Memo, Runtime, Var};
use alphonse_mem as mem;
use std::fmt;
use std::sync::Arc;

/// Errors raised by sheet mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SheetError {
    /// Address outside the sheet bounds.
    OutOfBounds(Addr),
    /// Formula text failed to parse.
    Parse(String),
    /// The new formula would create a reference cycle through the named
    /// cell.
    Cycle(Addr),
}

impl fmt::Display for SheetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SheetError::OutOfBounds(a) => write!(f, "cell {a} is outside the sheet"),
            SheetError::Parse(m) => write!(f, "formula error: {m}"),
            SheetError::Cycle(a) => write!(f, "formula would create a cycle through {a}"),
        }
    }
}

impl std::error::Error for SheetError {}

struct Cells {
    width: u32,
    height: u32,
    formulas: Vec<Var<Formula>>,
}

impl Cells {
    fn index(&self, a: Addr) -> Option<usize> {
        (a.col < self.width && a.row < self.height).then(|| (a.row * self.width + a.col) as usize)
    }
}

/// An incremental spreadsheet.
///
/// # Example
///
/// ```
/// use alphonse::Runtime;
/// use alphonse_sheet::Sheet;
///
/// let rt = Runtime::new();
/// let sheet = Sheet::new(&rt, 10, 10);
/// sheet.set("A1", "2").unwrap();
/// sheet.set("A2", "3").unwrap();
/// sheet.set("B1", "=A1*A2 + 1").unwrap();
/// assert_eq!(sheet.value("B1").unwrap().num(), Some(7));
/// sheet.set("A1", "10").unwrap();                     // one edit…
/// assert_eq!(sheet.value("B1").unwrap().num(), Some(31)); // …propagates
/// ```
pub struct Sheet {
    rt: Runtime,
    cells: Arc<Cells>,
    value: Memo<Addr, CellValue>,
}

impl fmt::Debug for Sheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.cells;
        f.debug_struct("Sheet")
            .field("width", &c.width)
            .field("height", &c.height)
            .finish()
    }
}

impl Sheet {
    /// Creates a `width × height` sheet of empty (`0`) cells tracked in
    /// `rt`.
    pub fn new(rt: &Runtime, width: u32, height: u32) -> Sheet {
        let _mem = mem::scope(mem::Tag::Substrate);
        let tracing = rt.tracing();
        let formulas = (0..width as usize * height as usize)
            .map(|i| {
                // Trace labels carry the cell address ("A1", "B7", …) so
                // exporters name cells, not bare node ids. Skipped entirely
                // on untraced runtimes.
                if tracing {
                    let a = Addr::new(i as u32 % width, i as u32 / width);
                    rt.var_named(&a.to_string(), Formula::Num(0))
                } else {
                    rt.var(Formula::Num(0))
                }
            })
            .collect();
        let cells = Arc::new(Cells {
            width,
            height,
            formulas,
        });
        let c = Arc::clone(&cells);
        let value = rt.memo_recursive("cell_value", move |rt, me, &addr: &Addr| {
            let formula = {
                let cells = &c;
                match cells.index(addr) {
                    Some(i) => cells.formulas[i].get(rt),
                    None => return CellValue::Error,
                }
            };
            eval_formula(&formula, &mut |a| me.call(rt, a))
        });
        Sheet {
            rt: rt.clone(),
            cells,
            value,
        }
    }

    /// Sheet width in columns.
    pub fn width(&self) -> u32 {
        self.cells.width
    }

    /// Sheet height in rows.
    pub fn height(&self) -> u32 {
        self.cells.height
    }

    /// Sets a cell from source text (`"42"` or `"=A1+B2"`).
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] on bad addresses, bad formulas, or reference
    /// cycles.
    pub fn set(&self, addr: &str, src: &str) -> Result<(), SheetError> {
        let addr: Addr = addr
            .parse()
            .map_err(|e: crate::addr::ParseAddrError| SheetError::Parse(e.to_string()))?;
        let formula = crate::formula::parse_formula(src).map_err(SheetError::Parse)?;
        self.set_formula(addr, formula)
    }

    /// Sets a cell to an already-parsed formula.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] on out-of-bounds addresses or cycles.
    pub fn set_formula(&self, addr: Addr, formula: Formula) -> Result<(), SheetError> {
        let var = {
            let cells = &self.cells;
            let idx = cells.index(addr).ok_or(SheetError::OutOfBounds(addr))?;
            cells.formulas[idx]
        };
        self.check_acyclic(addr, &formula)?;
        var.set(&self.rt, formula);
        Ok(())
    }

    /// Sets many cells from source text in one write transaction — the bulk
    /// form of [`Sheet::set`]. All edits are validated (bounds, parse,
    /// cycles) against the *post-batch* sheet before anything is written, so
    /// the batch is atomic: either every edit lands or none does. Repeated
    /// edits to the same address follow last-write-wins, matching the
    /// runtime's transaction semantics.
    ///
    /// # Example
    ///
    /// ```
    /// use alphonse::Runtime;
    /// use alphonse_sheet::Sheet;
    /// let rt = Runtime::new();
    /// let sheet = Sheet::new(&rt, 10, 10);
    /// sheet
    ///     .set_bulk([("A1", "2"), ("A2", "3"), ("B1", "=A1*A2")])
    ///     .unwrap();
    /// assert_eq!(sheet.value("B1").unwrap().num(), Some(6));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first [`SheetError`] encountered; no cell is modified on
    /// error.
    pub fn set_bulk<'a>(
        &self,
        edits: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<(), SheetError> {
        let _mem = mem::scope(mem::Tag::Substrate);
        let mut parsed = Vec::new();
        for (addr, src) in edits {
            let addr: Addr = addr
                .parse()
                .map_err(|e: crate::addr::ParseAddrError| SheetError::Parse(e.to_string()))?;
            let formula = crate::formula::parse_formula(src).map_err(SheetError::Parse)?;
            parsed.push((addr, formula));
        }
        self.set_formulas(parsed)
    }

    /// Sets many cells to already-parsed formulas in one write transaction.
    /// See [`Sheet::set_bulk`] for the atomicity and last-write-wins rules.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError`] on out-of-bounds addresses or cycles in the
    /// post-batch sheet; no cell is modified on error.
    pub fn set_formulas(&self, edits: Vec<(Addr, Formula)>) -> Result<(), SheetError> {
        let _mem = mem::scope(mem::Tag::Substrate);
        // Last-write-wins overlay: the formulas the sheet would hold after
        // the batch, used both for validation and for cycle walks, so
        // cross-edit cycles (A1=B1 and B1=A1 in one batch) are caught even
        // though neither formula is stored yet.
        let mut overlay = std::collections::HashMap::new();
        {
            let cells = &self.cells;
            for (addr, formula) in &edits {
                cells.index(*addr).ok_or(SheetError::OutOfBounds(*addr))?;
                overlay.insert(*addr, formula.clone());
            }
        }
        for (addr, formula) in &overlay {
            self.check_acyclic_with(*addr, formula, &overlay)?;
        }
        self.rt.batch(|tx| {
            let cells = &self.cells;
            for (addr, formula) in edits {
                let idx = cells.index(addr).expect("validated above");
                cells.formulas[idx].set_in(tx, formula);
            }
        });
        Ok(())
    }

    /// Static cycle rejection: walks the would-be dependency graph from the
    /// new formula; reaching `addr` again means a cycle.
    fn check_acyclic(&self, addr: Addr, formula: &Formula) -> Result<(), SheetError> {
        self.check_acyclic_with(addr, formula, &std::collections::HashMap::new())
    }

    /// Cycle walk against the sheet with `overlay` applied on top: pending
    /// (not yet committed) formulas shadow stored ones.
    fn check_acyclic_with(
        &self,
        addr: Addr,
        formula: &Formula,
        overlay: &std::collections::HashMap<Addr, Formula>,
    ) -> Result<(), SheetError> {
        let mut visited = std::collections::HashSet::new();
        let mut work: Vec<Addr> = formula.references();
        while let Some(a) = work.pop() {
            if a == addr {
                return Err(SheetError::Cycle(addr));
            }
            if !visited.insert(a) {
                continue;
            }
            if let Some(f) = overlay.get(&a) {
                work.extend(f.references());
                continue;
            }
            let var = {
                let cells = &self.cells;
                cells.index(a).map(|i| cells.formulas[i])
            };
            if let Some(var) = var {
                // Untracked peek at the references, in place: cycle checking
                // is mutator bookkeeping, and cloning the whole formula per
                // visited cell would make every edit pay for it.
                let refs = self.rt.untracked(|| var.with(&self.rt, |f| f.references()));
                work.extend(refs);
            }
        }
        Ok(())
    }

    /// Current value of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`SheetError::Parse`] for unparseable addresses; evaluation
    /// problems surface as [`CellValue::Error`] instead.
    pub fn value(&self, addr: &str) -> Result<CellValue, SheetError> {
        let addr: Addr = addr
            .parse()
            .map_err(|e: crate::addr::ParseAddrError| SheetError::Parse(e.to_string()))?;
        Ok(self.value_at(addr))
    }

    /// Current value by coordinate.
    pub fn value_at(&self, addr: Addr) -> CellValue {
        self.value.call(&self.rt, addr)
    }

    /// The runtime backing this sheet.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Number of distinct cell-value instances materialized so far.
    pub fn materialized_cells(&self) -> usize {
        self.value.instance_count()
    }
}

/// Evaluates a formula, resolving references through `deref`.
pub(crate) fn eval_formula(f: &Formula, deref: &mut impl FnMut(Addr) -> CellValue) -> CellValue {
    match f {
        Formula::Num(v) => CellValue::Num(*v),
        Formula::Ref(a) => deref(*a),
        Formula::Neg(e) => match eval_formula(e, deref) {
            CellValue::Num(v) => CellValue::Num(v.wrapping_neg()),
            CellValue::Error => CellValue::Error,
        },
        Formula::Bin { op, lhs, rhs } => {
            let (l, r) = (eval_formula(lhs, deref), eval_formula(rhs, deref));
            match (l, r) {
                (CellValue::Num(l), CellValue::Num(r)) => match op {
                    Op::Add => CellValue::Num(l.wrapping_add(r)),
                    Op::Sub => CellValue::Num(l.wrapping_sub(r)),
                    Op::Mul => CellValue::Num(l.wrapping_mul(r)),
                    Op::Div => {
                        if r == 0 {
                            CellValue::Error
                        } else {
                            CellValue::Num(l.wrapping_div(r))
                        }
                    }
                },
                _ => CellValue::Error,
            }
        }
        Formula::Sum { from, to } => {
            let mut acc = 0i64;
            for col in from.col..=to.col {
                for row in from.row..=to.row {
                    match deref(Addr::new(col, row)) {
                        CellValue::Num(v) => acc = acc.wrapping_add(v),
                        CellValue::Error => return CellValue::Error,
                    }
                }
            }
            CellValue::Num(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet() -> Sheet {
        Sheet::new(&Runtime::new(), 20, 20)
    }

    #[test]
    fn empty_cells_are_zero() {
        let s = sheet();
        assert_eq!(s.value("A1").unwrap(), CellValue::Num(0));
        assert_eq!(s.width(), 20);
        assert_eq!(s.height(), 20);
    }

    #[test]
    fn arithmetic_chains() {
        let s = sheet();
        s.set("A1", "5").unwrap();
        s.set("A2", "=A1*A1").unwrap();
        s.set("A3", "=A2-A1").unwrap();
        assert_eq!(s.value("A3").unwrap(), CellValue::Num(20));
        s.set("A1", "3").unwrap();
        assert_eq!(s.value("A3").unwrap(), CellValue::Num(6));
    }

    #[test]
    fn sum_over_range() {
        let s = sheet();
        for row in 1..=5 {
            s.set(&format!("B{row}"), &row.to_string()).unwrap();
        }
        s.set("C1", "=SUM(B1:B5)").unwrap();
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(15));
        s.set("B3", "30").unwrap();
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(42));
    }

    #[test]
    fn division_by_zero_propagates_error() {
        let s = sheet();
        s.set("A1", "=1/0").unwrap();
        s.set("A2", "=A1+1").unwrap();
        assert_eq!(s.value("A1").unwrap(), CellValue::Error);
        assert_eq!(s.value("A2").unwrap(), CellValue::Error);
        s.set("A1", "7").unwrap();
        assert_eq!(s.value("A2").unwrap(), CellValue::Num(8));
    }

    #[test]
    fn out_of_bounds_reference_is_error() {
        let s = sheet();
        s.set("A1", "=ZZ99").unwrap();
        assert_eq!(s.value("A1").unwrap(), CellValue::Error);
        assert!(matches!(
            s.set("ZZ99", "1"),
            Err(SheetError::OutOfBounds(_))
        ));
    }

    #[test]
    fn direct_and_indirect_cycles_rejected() {
        let s = sheet();
        assert!(matches!(s.set("A1", "=A1"), Err(SheetError::Cycle(_))));
        s.set("A1", "=A2").unwrap();
        s.set("A2", "=A3").unwrap();
        assert!(matches!(s.set("A3", "=A1"), Err(SheetError::Cycle(_))));
        // The rejected edit must not have corrupted anything.
        s.set("A3", "5").unwrap();
        assert_eq!(s.value("A1").unwrap(), CellValue::Num(5));
    }

    #[test]
    fn one_edit_recomputes_only_dependents() {
        let s = sheet();
        // Column A: 10 independent numbers; column B: B_i = A_i * 2;
        // C1 = SUM(B1:B10).
        for i in 1..=10 {
            s.set(&format!("A{i}"), &i.to_string()).unwrap();
            s.set(&format!("B{i}"), &format!("=A{i}*2")).unwrap();
        }
        s.set("C1", "=SUM(B1:B10)").unwrap();
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(110));
        let rt = s.runtime().clone();
        let before = rt.stats();
        s.set("A4", "100").unwrap();
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(302));
        let d = rt.stats().delta_since(&before);
        assert!(
            d.executions <= 4,
            "only A4, B4 and C1 should re-evaluate, got {}",
            d.executions
        );
    }

    #[test]
    fn cutoff_stops_at_unchanged_values() {
        let s = sheet();
        s.set("A1", "7").unwrap();
        s.set("B1", "=A1/2").unwrap(); // integer division
        s.set("C1", "=B1*100").unwrap();
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(300));
        let rt = s.runtime().clone();
        let before = rt.stats();
        s.set("A1", "6").unwrap(); // 6/2 == 7/2? no: 3 == 3 ✓ unchanged
        assert_eq!(s.value("C1").unwrap(), CellValue::Num(300));
        let d = rt.stats().delta_since(&before);
        // B1 re-evaluates (3 again); C1 re-evaluates only in demand mode
        // because dirtying is conservative — but A1's own value instance
        // changes. Keep the bound loose but far below full recalc.
        assert!(d.executions <= 3, "got {}", d.executions);
    }

    #[test]
    fn bulk_edit_matches_sequential_edits() {
        let seq = sheet();
        let bulk = sheet();
        let edits = [
            ("A1", "4"),
            ("A2", "=A1+1"),
            ("A3", "=A2*A1"),
            ("A1", "6"), // last write wins
        ];
        for (a, src) in edits {
            seq.set(a, src).unwrap();
        }
        bulk.set_bulk(edits).unwrap();
        for a in ["A1", "A2", "A3"] {
            assert_eq!(bulk.value(a).unwrap(), seq.value(a).unwrap(), "{a}");
        }
        let s = bulk.runtime().stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_writes, 4);
        assert_eq!(s.coalesced_writes, 1);
    }

    #[test]
    fn bulk_edit_rejects_cross_edit_cycles_atomically() {
        let s = sheet();
        s.set("A1", "1").unwrap();
        // Neither formula alone is cyclic against the stored sheet; together
        // they are. The whole batch must be rejected and nothing written.
        assert!(matches!(
            s.set_bulk([("B1", "=C1"), ("C1", "=B1"), ("A1", "99")]),
            Err(SheetError::Cycle(_))
        ));
        assert_eq!(s.value("A1").unwrap(), CellValue::Num(1));
        assert_eq!(s.value("B1").unwrap(), CellValue::Num(0));
    }

    #[test]
    fn bulk_edit_overlay_shadows_stored_formulas() {
        let s = sheet();
        s.set("A1", "=A2").unwrap();
        s.set("A2", "3").unwrap();
        // Stored sheet has A1 -> A2; the batch rewrites A1 away from A2 and
        // points A2 at A1's *new* formula — acyclic post-batch, so allowed.
        s.set_bulk([("A1", "5"), ("A2", "=A1+1")]).unwrap();
        assert_eq!(s.value("A2").unwrap(), CellValue::Num(6));
    }

    #[test]
    fn formula_text_round_trip_via_display() {
        let s = sheet();
        s.set("A1", "=1+2*3").unwrap();
        assert_eq!(s.value("A1").unwrap(), CellValue::Num(7));
    }
}
