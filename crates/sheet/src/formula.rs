//! Cell formulas: values, the `CellExp` reference production, arithmetic
//! and range aggregation.

use crate::addr::Addr;
use std::fmt;
use std::sync::Arc;

/// The result of evaluating a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellValue {
    /// A number.
    Num(i64),
    /// An evaluation error (division by zero, reference out of bounds);
    /// propagates through dependent formulas like `#ERROR` in a real
    /// spreadsheet.
    Error,
}

impl CellValue {
    /// The number, or `None` on error.
    pub fn num(self) -> Option<i64> {
        match self {
            CellValue::Num(v) => Some(v),
            CellValue::Error => None,
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Num(v) => write!(f, "{v}"),
            CellValue::Error => write!(f, "#ERROR"),
        }
    }
}

/// A parsed cell formula.
///
/// The paper extends its attribute-grammar expression trees with a
/// `CellExp` production that "uses two integer valued terminal fields to
/// select another cell in the array and return the result of its value
/// method" — that is [`Formula::Ref`]. `Sum` aggregates a rectangular
/// range, the workload that makes dependency fan-in interesting.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// A literal number (also the parse of a plain `42` entry).
    Num(i64),
    /// Reference to another cell (the paper's `CellExp`).
    Ref(Addr),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: Op,
        /// Left operand.
        lhs: Arc<Formula>,
        /// Right operand.
        rhs: Arc<Formula>,
    },
    /// Negation.
    Neg(Arc<Formula>),
    /// `SUM(A1:B5)` over an inclusive rectangle.
    Sum {
        /// Top-left corner.
        from: Addr,
        /// Bottom-right corner.
        to: Addr,
    },
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; by zero yields [`CellValue::Error`])
    Div,
}

impl Formula {
    /// All cell addresses this formula references directly (used for static
    /// cycle rejection).
    pub fn references(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut Vec<Addr>) {
        match self {
            Formula::Num(_) => {}
            Formula::Ref(a) => out.push(*a),
            Formula::Bin { lhs, rhs, .. } => {
                lhs.collect_refs(out);
                rhs.collect_refs(out);
            }
            Formula::Neg(e) => e.collect_refs(out),
            Formula::Sum { from, to } => {
                for col in from.col..=to.col {
                    for row in from.row..=to.row {
                        out.push(Addr::new(col, row));
                    }
                }
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Num(v) => write!(f, "{v}"),
            Formula::Ref(a) => write!(f, "{a}"),
            Formula::Bin { op, lhs, rhs } => {
                let op = match op {
                    Op::Add => "+",
                    Op::Sub => "-",
                    Op::Mul => "*",
                    Op::Div => "/",
                };
                write!(f, "({lhs}{op}{rhs})")
            }
            Formula::Neg(e) => write!(f, "(-{e})"),
            Formula::Sum { from, to } => write!(f, "SUM({from}:{to})"),
        }
    }
}

/// Parses a cell entry: either a plain number or `=formula` with `+ - * /`,
/// parentheses, cell references and `SUM(range)`.
///
/// # Errors
///
/// Returns a description of the first syntax error.
///
/// # Example
///
/// ```
/// use alphonse_sheet::parse_formula;
/// let f = parse_formula("=A1 + 2 * SUM(B1:B3)").unwrap();
/// assert_eq!(f.references().len(), 4);
/// assert!(parse_formula("=1 +").is_err());
/// ```
pub fn parse_formula(src: &str) -> Result<Formula, String> {
    let src = src.trim();
    if let Some(body) = src.strip_prefix('=') {
        let mut p = FormulaParser {
            chars: body.chars().collect(),
            pos: 0,
        };
        let f = p.expr()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input after formula at {}", p.pos));
        }
        Ok(f)
    } else {
        src.parse::<i64>()
            .map(Formula::Num)
            .map_err(|_| format!("not a number or =formula: {src:?}"))
    }
}

struct FormulaParser {
    chars: Vec<char>,
    pos: usize,
}

impl FormulaParser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Formula, String> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some('+') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = bin(Op::Add, lhs, rhs);
                }
                Some('-') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = bin(Op::Sub, lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Formula, String> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    lhs = bin(Op::Mul, lhs, rhs);
                }
                Some('/') => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    lhs = bin(Op::Div, lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Formula, String> {
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(Formula::Neg(Arc::new(self.factor()?)))
            }
            Some('(') => {
                self.pos += 1;
                let e = self.expr()?;
                if self.peek() != Some(')') {
                    return Err("expected )".to_string());
                }
                self.pos += 1;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                text.parse()
                    .map(Formula::Num)
                    .map_err(|_| format!("integer overflow: {text}"))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let word = self.word();
                if word.eq_ignore_ascii_case("SUM") {
                    if self.peek() != Some('(') {
                        return Err("expected ( after SUM".to_string());
                    }
                    self.pos += 1;
                    let from = self.addr()?;
                    if self.peek() != Some(':') {
                        return Err("expected : in range".to_string());
                    }
                    self.pos += 1;
                    let to = self.addr()?;
                    if self.peek() != Some(')') {
                        return Err("expected ) after range".to_string());
                    }
                    self.pos += 1;
                    if from.col > to.col || from.row > to.row {
                        return Err(format!("inverted range {from}:{to}"));
                    }
                    Ok(Formula::Sum { from, to })
                } else {
                    word.parse::<Addr>()
                        .map(Formula::Ref)
                        .map_err(|e| e.to_string())
                }
            }
            other => Err(format!("expected a formula factor, found {other:?}")),
        }
    }

    fn word(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_alphanumeric() {
            self.pos += 1;
        }
        self.chars[start..self.pos].iter().collect()
    }

    fn addr(&mut self) -> Result<Addr, String> {
        self.word().parse::<Addr>().map_err(|e| e.to_string())
    }
}

fn bin(op: Op, lhs: Formula, rhs: Formula) -> Formula {
    Formula::Bin {
        op,
        lhs: Arc::new(lhs),
        rhs: Arc::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numbers_and_refs() {
        assert_eq!(parse_formula("42").unwrap(), Formula::Num(42));
        assert_eq!(parse_formula(" -7 ").unwrap(), Formula::Num(-7));
        assert_eq!(parse_formula("=B2").unwrap(), Formula::Ref(Addr::new(1, 1)));
    }

    #[test]
    fn precedence_and_parens() {
        let f = parse_formula("=1+2*3").unwrap();
        match f {
            Formula::Bin {
                op: Op::Add, rhs, ..
            } => {
                assert!(matches!(&*rhs, Formula::Bin { op: Op::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let f = parse_formula("=(1+2)*3").unwrap();
        assert!(matches!(f, Formula::Bin { op: Op::Mul, .. }));
    }

    #[test]
    fn sum_ranges_expand_references() {
        let f = parse_formula("=SUM(A1:B3)").unwrap();
        assert_eq!(f.references().len(), 6);
        assert!(parse_formula("=SUM(B3:A1)").is_err(), "inverted range");
    }

    #[test]
    fn display_round_trips_through_parser() {
        for src in ["=A1+B2*3", "=SUM(A1:C4)-5", "=-(A1)/2", "=1-2-3"] {
            let f = parse_formula(src).unwrap();
            let printed = format!("={f}");
            let f2 = parse_formula(&printed).unwrap();
            assert_eq!(f, f2, "{src} -> {printed}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "=", "=1+", "=(1", "=SUM(A1)", "=A1:", "=1A", "abc"] {
            assert!(parse_formula(bad).is_err(), "{bad:?} should fail");
        }
    }
}
