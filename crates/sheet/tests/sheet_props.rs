//! Differential testing: the incremental sheet must agree with the
//! full-recalculation baseline under arbitrary edit/query interleavings.

use alphonse::Runtime;
use alphonse_sheet::{Addr, RecalcSheet, Sheet};
use proptest::prelude::*;

const W: u32 = 6;
const H: u32 = 6;

#[derive(Debug, Clone)]
enum SheetOp {
    SetNum(u32, u32, i64),
    SetRef(u32, u32, u32, u32),
    SetSum(u32, u32, u32, u32),
    SetExpr(u32, u32, u32, u32, u32, u32),
    Query(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = SheetOp> {
    let cell = || (0..W, 0..H);
    prop_oneof![
        3 => (cell(), -100i64..100).prop_map(|((c, r), v)| SheetOp::SetNum(c, r, v)),
        2 => (cell(), cell()).prop_map(|((c, r), (c2, r2))| SheetOp::SetRef(c, r, c2, r2)),
        1 => (cell(), cell()).prop_map(|((c, r), (c2, r2))| SheetOp::SetSum(c, r, c2, r2)),
        2 => (cell(), cell(), cell())
            .prop_map(|((c, r), (a, b), (d, e))| SheetOp::SetExpr(c, r, a, b, d, e)),
        4 => cell().prop_map(|(c, r)| SheetOp::Query(c, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_sheet_matches_recalc(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let rt = Runtime::new();
        let inc = Sheet::new(&rt, W, H);
        let base = RecalcSheet::new(W, H);
        for op in ops {
            match op {
                SheetOp::SetNum(c, r, v) => {
                    let a = Addr::new(c, r).to_string();
                    let src = v.to_string();
                    let ir = inc.set(&a, &src);
                    let br = base.set(&a, &src);
                    prop_assert_eq!(ir.is_ok(), br.is_ok());
                }
                SheetOp::SetRef(c, r, c2, r2) => {
                    let a = Addr::new(c, r).to_string();
                    let src = format!("={}", Addr::new(c2, r2));
                    // The incremental sheet rejects cycles eagerly; mirror
                    // the edit on the baseline only when accepted.
                    if inc.set(&a, &src).is_ok() {
                        base.set(&a, &src).unwrap();
                    }
                }
                SheetOp::SetSum(c, r, c2, r2) => {
                    let from = Addr::new(c.min(c2), r.min(r2));
                    let to = Addr::new(c.max(c2), r.max(r2));
                    let a = Addr::new(c, r).to_string();
                    let src = format!("=SUM({from}:{to})");
                    if inc.set(&a, &src).is_ok() {
                        base.set(&a, &src).unwrap();
                    }
                }
                SheetOp::SetExpr(c, r, a1, b1, a2, b2) => {
                    let a = Addr::new(c, r).to_string();
                    let src = format!(
                        "={} * 2 - {} / 3",
                        Addr::new(a1, b1),
                        Addr::new(a2, b2)
                    );
                    if inc.set(&a, &src).is_ok() {
                        base.set(&a, &src).unwrap();
                    }
                }
                SheetOp::Query(c, r) => {
                    let addr = Addr::new(c, r);
                    prop_assert_eq!(
                        inc.value_at(addr),
                        base.value_at(addr),
                        "cell {} diverged",
                        addr
                    );
                }
            }
        }
        // Final audit of the full grid.
        for c in 0..W {
            for r in 0..H {
                let addr = Addr::new(c, r);
                prop_assert_eq!(inc.value_at(addr), base.value_at(addr));
            }
        }
    }
}
