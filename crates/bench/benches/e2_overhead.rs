//! E2 wall-clock: conventional vs Alphonse interpretation.
use alphonse_bench::workloads::HEIGHT_PROGRAM;
use alphonse_lang::{compile, Interp, Mode, Val};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let program = compile(HEIGHT_PROGRAM).unwrap();
    let mut g = c.benchmark_group("e2_interp_overhead");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(10);
    for depth in [6i64, 8] {
        for (label, mode) in [
            ("conventional", Mode::Conventional),
            ("alphonse", Mode::Alphonse),
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("initial_{label}"), depth),
                &depth,
                |b, &d| {
                    b.iter(|| {
                        let interp = Interp::new(Arc::clone(&program), mode).unwrap();
                        interp.call("Init", vec![]).unwrap();
                        let root = interp.call("BuildBalanced", vec![Val::Int(d)]).unwrap();
                        interp.call_method(root, "height", vec![]).unwrap()
                    })
                },
            );
        }
        // Incremental update phase: Alphonse should win despite overhead.
        for (label, mode) in [
            ("conventional", Mode::Conventional),
            ("alphonse", Mode::Alphonse),
        ] {
            let interp = Interp::new(Arc::clone(&program), mode).unwrap();
            interp.call("Init", vec![]).unwrap();
            let root = interp.call("BuildBalanced", vec![Val::Int(depth)]).unwrap();
            interp.call_method(root.clone(), "height", vec![]).unwrap();
            let nil = interp.global("nil").unwrap();
            let sub = interp.field(&root, "left").unwrap();
            let mut flip = false;
            g.bench_with_input(
                BenchmarkId::new(format!("update_{label}"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        flip = !flip;
                        let v = if flip { nil.clone() } else { sub.clone() };
                        interp.set_field(&root, "left", v).unwrap();
                        interp.call_method(root.clone(), "height", vec![]).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
