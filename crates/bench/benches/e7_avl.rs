//! E7 wall-clock: insert + rebalance, maintained vs classic AVL.
use alphonse::Runtime;
use alphonse_trees::{ClassicAvl, MaintainedAvl};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_avl");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(10);
    for n in [512i64, 2048] {
        g.bench_with_input(BenchmarkId::new("maintained_sorted", n), &n, |b, &n| {
            b.iter(|| {
                let rt = Runtime::new();
                let mut avl = MaintainedAvl::new(&rt);
                for k in 0..n {
                    avl.insert(k);
                    avl.rebalance();
                }
                avl.height()
            })
        });
        g.bench_with_input(BenchmarkId::new("classic_sorted", n), &n, |b, &n| {
            b.iter(|| {
                let mut avl = ClassicAvl::new();
                for k in 0..n {
                    avl.insert(k);
                }
                avl.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
