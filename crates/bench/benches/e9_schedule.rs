//! E9 wall-clock: propagation with height-order vs FIFO scheduling.
use alphonse::{Runtime, Scheduling, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ladder(mode: Scheduling, depth: usize) -> (Runtime, alphonse::Var<i64>) {
    let rt = Runtime::builder().scheduling(mode).build();
    let src = rt.var(1i64);
    let mut prev = rt.memo_with("l0", Strategy::Eager, move |rt, &(): &()| src.get(rt));
    prev.call(&rt, ());
    for i in 1..depth {
        let below = prev.clone();
        let m = rt.memo_with(&format!("l{i}"), Strategy::Eager, move |rt, &(): &()| {
            below.call(rt, ()) + src.get(rt)
        });
        m.call(&rt, ());
        prev = m;
    }
    (rt, src)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_schedule");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);
    for depth in [32usize, 128] {
        for (label, mode) in [
            ("height", Scheduling::HeightOrder),
            ("fifo", Scheduling::Fifo),
        ] {
            let (rt, src) = ladder(mode, depth);
            let mut v = 1i64;
            g.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| {
                    v += 1;
                    src.set(&rt, v);
                    rt.propagate();
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
