//! E3 wall-clock: graph construction cost, sparse vs dense dependence.
use alphonse::Runtime;
use alphonse_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_space");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(10);
    for n in [128usize, 512] {
        g.bench_with_input(BenchmarkId::new("sparse_tree_build", n), &n, |b, &n| {
            b.iter(|| {
                let (rt, _tree, _root) = workloads::warmed_tree(n, 11);
                rt.edge_count()
            })
        });
        g.bench_with_input(BenchmarkId::new("dense_build", n), &n, |b, &n| {
            b.iter(|| {
                let rt = Runtime::new();
                let vars: Vec<_> = (0..n).map(|i| rt.var(i as i64)).collect();
                let vs = vars.clone();
                let all = rt.memo("dense", move |rt, &k: &usize| {
                    let mut acc = 0i64;
                    for v in &vs {
                        acc = acc.wrapping_add(v.get(rt));
                    }
                    acc.wrapping_mul(k as i64)
                });
                for k in 0..n {
                    all.call(&rt, k);
                }
                rt.edge_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
