//! E5 wall-clock: maintained lookups with tracked vs UNCHECKED descent.
use alphonse::Runtime;
use alphonse_trees::{MaintainedTree, NodeRef, TreeStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn lookup_world(n: usize, unchecked: bool) -> (Runtime, alphonse::Memo<i64, bool>) {
    let rt = Runtime::new();
    let tree = MaintainedTree::new(&rt);
    let store = Arc::clone(tree.store());
    let keys: Vec<i64> = (0..n as i64).collect();
    let root = store.build_balanced(&keys);
    let contains = rt.memo("contains", move |rt, &key: &i64| {
        let descend = |s: &TreeStore| {
            let mut cur = root;
            while !cur.is_nil() {
                let k = s.key(cur);
                if k == key {
                    return cur;
                }
                cur = if key < k { s.left(cur) } else { s.right(cur) };
            }
            NodeRef::NIL
        };
        let found = if unchecked {
            rt.untracked(|| descend(&store))
        } else {
            descend(&store)
        };
        !found.is_nil() && store.key(found) == key
    });
    (rt, contains)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_unchecked");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(10);
    for n in [1023usize, 4095] {
        for unchecked in [false, true] {
            let label = if unchecked {
                "unchecked_lookups"
            } else {
                "tracked_lookups"
            };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let (rt, contains) = lookup_world(n, unchecked);
                    let mut found = 0u32;
                    for key in (0..n as i64).step_by(7) {
                        if contains.call(&rt, key) {
                            found += 1;
                        }
                    }
                    found
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
