//! E1 wall-clock: maintained height queries and updates vs exhaustive.
use alphonse_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_height_tree");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);
    for n in [256usize, 1024, 4096] {
        let (_rt, tree, root) = workloads::warmed_tree(n, 42);
        g.bench_with_input(BenchmarkId::new("repeat_query", n), &n, |b, _| {
            b.iter(|| tree.height(root))
        });
        let store = tree.store().clone();
        let leaves = workloads::leaves(&store, root);
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::new("relink_and_query", n), &n, |b, _| {
            b.iter(|| {
                let leaf = leaves[i % leaves.len()];
                i += 1;
                let fresh = store.new_leaf(0);
                store.set_left(leaf, fresh);
                let h = tree.height(root);
                store.set_left(leaf, alphonse_trees::NodeRef::NIL);
                tree.height(root);
                h
            })
        });
        let mut ex = alphonse_trees::ExhaustiveTree::new();
        let ex_root = ex.build_balanced(n);
        g.bench_with_input(BenchmarkId::new("exhaustive_query", n), &n, |b, _| {
            b.iter(|| ex.height(ex_root))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
