//! E8 wall-clock: cached calls over global state, hit and invalidation cost.
use alphonse::Runtime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_noncombinator");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);
    for k in [128i64, 1024] {
        let rt = Runtime::new();
        let factor = rt.var(3i64);
        let f = rt.memo("scaled", move |rt, &x: &i64| x * factor.get(rt));
        for x in 0..k {
            f.call(&rt, x);
        }
        g.bench_with_input(BenchmarkId::new("all_hits", k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0i64;
                for x in 0..k {
                    acc = acc.wrapping_add(f.call(&rt, x));
                }
                acc
            })
        });
        let mut tick = 0i64;
        g.bench_with_input(BenchmarkId::new("invalidate_and_refill", k), &k, |b, &k| {
            b.iter(|| {
                tick += 1;
                factor.set(&rt, tick);
                let mut acc = 0i64;
                for x in 0..k {
                    acc = acc.wrapping_add(f.call(&rt, x));
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
