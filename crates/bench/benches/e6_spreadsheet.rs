//! E6 wall-clock: one edit + query, incremental vs full recalc.
use alphonse::Runtime;
use alphonse_sheet::{RecalcSheet, Sheet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn chain(inc: &Sheet, base: &RecalcSheet, rows: u32) {
    inc.set("A1", "1").unwrap();
    base.set("A1", "1").unwrap();
    for r in 2..=rows {
        let f = format!("=A{}+1", r - 1);
        inc.set(&format!("A{r}"), &f).unwrap();
        base.set(&format!("A{r}"), &f).unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_spreadsheet");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);
    for rows in [64u32, 512] {
        let rt = Runtime::new();
        let inc = Sheet::new(&rt, 2, rows);
        let base = RecalcSheet::new(2, rows);
        chain(&inc, &base, rows);
        let probe = format!("A{rows}");
        let edit = format!("A{}", rows - 1); // near the sink: tiny cone
        inc.value(&probe).unwrap();
        let mut v = 0i64;
        g.bench_with_input(BenchmarkId::new("incremental_edit", rows), &rows, |b, _| {
            b.iter(|| {
                v += 1;
                inc.set(&edit, &v.to_string()).unwrap();
                inc.value(&probe).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("full_recalc_edit", rows), &rows, |b, _| {
            b.iter(|| {
                v += 1;
                base.set(&edit, &v.to_string()).unwrap();
                base.value(&probe).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
