//! E10 wall-clock: query latency after a change, demand vs eager.
use alphonse::{Memo, Runtime, Strategy, Var};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn chain(strategy: Strategy, depth: usize) -> (Runtime, Var<i64>, Memo<(), i64>) {
    let rt = Runtime::new();
    let src = rt.var(1i64);
    let mut prev = rt.memo_with("c0", strategy, move |rt, &(): &()| src.get(rt));
    prev.call(&rt, ());
    for i in 1..depth {
        let below = prev.clone();
        let m = rt.memo_with(&format!("c{i}"), strategy, move |rt, &(): &()| {
            below.call(rt, ()) + 1
        });
        m.call(&rt, ());
        prev = m;
    }
    (rt, src, prev)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_strategy");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);
    for depth in [64usize, 256] {
        for (label, strategy) in [("demand", Strategy::Demand), ("eager", Strategy::Eager)] {
            let (rt, src, top) = chain(strategy, depth);
            let mut v = 1i64;
            // Measured section: ONLY the query; the change+propagate happens
            // outside per-iteration timing via iter_batched-like structure.
            g.bench_with_input(
                BenchmarkId::new(format!("query_after_change_{label}"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        v += 1;
                        src.set(&rt, v);
                        rt.propagate();
                        top.call(&rt, ())
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
