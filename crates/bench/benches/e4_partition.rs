//! E4 wall-clock: query latency with pending unrelated changes.
use alphonse::{Runtime, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_partitioning");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);
    for k in [64usize, 512] {
        for partitioning in [false, true] {
            let rt = Runtime::builder().partitioning(partitioning).build();
            let mut vars = Vec::new();
            let mut memos = Vec::new();
            for i in 0..k {
                let v = rt.var(i as i64);
                let m = rt.memo_with(&format!("m{i}"), Strategy::Eager, move |rt, &(): &()| {
                    v.get(rt) * 2
                });
                m.call(&rt, ());
                vars.push(v);
                memos.push(m);
            }
            let label = if partitioning {
                "partitioned"
            } else {
                "global"
            };
            let mut tick = 0i64;
            g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    tick += 1;
                    for v in vars.iter().take(k - 1) {
                        v.set(&rt, tick);
                    }
                    memos[k - 1].call(&rt, ())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
