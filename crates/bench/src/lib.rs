//! Experiment harness for the Alphonse reproduction.
//!
//! The paper (PLDI 1992) contains no empirical tables or figures — its
//! evaluation is the asymptotic analysis of Section 9 plus per-example cost
//! claims. Each claim is reproduced here as an experiment (see DESIGN.md's
//! experiment index): a workload generator plus machine-independent work
//! counters, printed as a table by the `eN_*` binaries and timed by the
//! Criterion benches. EXPERIMENTS.md records paper-claim vs. measured
//! shape for each one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod trace_support;
pub mod workloads;

pub use table::Table;
