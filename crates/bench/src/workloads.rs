//! Shared workload generators.

use alphonse::Runtime;
use alphonse_trees::{MaintainedTree, NodeRef, TreeStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible experiment rows.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Builds a random-shaped binary tree with `n` nodes in `store` and returns
/// its root (NIL when `n == 0`). Shapes follow a uniformly random
/// left/right split, giving expected O(√n)–O(log n) depths without
/// degenerate chains.
pub fn random_tree(store: &TreeStore, n: usize, rng: &mut SmallRng) -> NodeRef {
    if n == 0 {
        return NodeRef::NIL;
    }
    let left_size = rng.gen_range(0..n);
    let left = random_tree(store, left_size, rng);
    let right = random_tree(store, n - 1 - left_size, rng);
    store.new_node(rng.gen_range(-1000..1000), left, right)
}

/// Collects the leaves (no children) of the subtree at `root`.
pub fn leaves(store: &TreeStore, root: NodeRef) -> Vec<NodeRef> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if n.is_nil() {
            continue;
        }
        let (l, r) = (store.left(n), store.right(n));
        if l.is_nil() && r.is_nil() {
            out.push(n);
        } else {
            stack.push(l);
            stack.push(r);
        }
    }
    out
}

/// Depth of `node` measured from `root` by search (plain reads).
pub fn depth_of(store: &TreeStore, root: NodeRef, node: NodeRef) -> Option<usize> {
    fn go(store: &TreeStore, cur: NodeRef, node: NodeRef, d: usize) -> Option<usize> {
        if cur.is_nil() {
            return None;
        }
        if cur == node {
            return Some(d);
        }
        go(store, store.left(cur), node, d + 1).or_else(|| go(store, store.right(cur), node, d + 1))
    }
    go(store, root, node, 0)
}

/// A maintained tree over a random shape, heights fully demanded once.
pub fn warmed_tree(n: usize, seed: u64) -> (Runtime, MaintainedTree, NodeRef) {
    let rt = Runtime::new();
    let tree = MaintainedTree::new(&rt);
    let mut r = rng(seed);
    let root = random_tree(tree.store(), n, &mut r);
    tree.height(root);
    (rt, tree, root)
}

/// The Alphonse-L maintained-height program used by experiment E2.
pub const HEIGHT_PROGRAM: &str = r#"
    TYPE Tree = OBJECT
        left, right : Tree;
    METHODS
        (*MAINTAINED*) height() : INTEGER := Height;
    END;
    TYPE TreeNil = Tree OBJECT
    OVERRIDES
        (*MAINTAINED*) height := HeightNil;
    END;

    PROCEDURE Height(t : Tree) : INTEGER =
    BEGIN
        RETURN MAX(t.left.height(), t.right.height()) + 1;
    END Height;

    PROCEDURE HeightNil(t : Tree) : INTEGER =
    BEGIN RETURN 0; END HeightNil;

    VAR nil : Tree;

    PROCEDURE Init() =
    BEGIN nil := NEW(TreeNil); END Init;

    PROCEDURE MakeNode(l, r : Tree) : Tree =
    VAR t : Tree;
    BEGIN
        t := NEW(Tree);
        t.left := l;
        t.right := r;
        RETURN t;
    END MakeNode;

    PROCEDURE BuildBalanced(depth : INTEGER) : Tree =
    BEGIN
        IF depth = 0 THEN RETURN nil; END;
        RETURN MakeNode(BuildBalanced(depth - 1), BuildBalanced(depth - 1));
    END BuildBalanced;
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_has_n_nodes() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let mut r = rng(1);
        let root = random_tree(&store, 100, &mut r);
        assert_eq!(store.len(), 100);
        assert_eq!(store.inorder(root).len(), 100);
    }

    #[test]
    fn leaves_are_found() {
        let rt = Runtime::new();
        let store = TreeStore::new(&rt);
        let mut r = rng(2);
        let root = random_tree(&store, 50, &mut r);
        let ls = leaves(&store, root);
        assert!(!ls.is_empty());
        for l in &ls {
            assert!(store.left(*l).is_nil() && store.right(*l).is_nil());
            assert!(depth_of(&store, root, *l).is_some());
        }
    }

    #[test]
    fn warmed_tree_is_consistent() {
        let (rt, tree, root) = warmed_tree(64, 7);
        let before = rt.stats();
        let h = tree.height(root);
        assert_eq!(h, tree.store().height_exhaustive(root));
        assert_eq!(rt.stats().delta_since(&before).executions, 0);
    }
}
