//! The experiments reproducing the paper's quantitative claims.
//!
//! Every function returns a [`Table`] of machine-independent work counters;
//! the `eN_*` binaries print them and EXPERIMENTS.md records the comparison
//! against the paper's claims. Wall-clock variants live in `benches/`.

use crate::table::{percentile_cells, Table};
use crate::workloads::{self, HEIGHT_PROGRAM};
use alphonse::{
    Histogram, HistogramSnapshot, Memo, MetricsSnapshot, Runtime, Scheduling, SessionPool,
    Strategy, Var,
};
use alphonse_agkit::{
    parse_let, AgEvaluator, AgNodeId, AgTree, AttrVal, ExhaustiveAg, Grammar, LetLang,
};
use alphonse_lang::{compile, parse, transform, Interp, Mode, TransformOptions, Val};
use alphonse_sheet::{Addr, Formula, Op, RecalcSheet, Sheet};
use alphonse_trees::{ClassicAvl, ExhaustiveTree, HandcodedTree, MaintainedAvl, NodeRef};
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

/// Writes an experiment's merged metrics snapshot next to its BENCH json
/// (`METRICS_<id>.json`) so `alphonse-trace metrics` can report the wave
/// latency percentiles the run produced. Failures are reported, not fatal:
/// the table stays the experiment's primary output.
fn write_metrics_sidecar(id: &str, snap: &MetricsSnapshot) {
    let path = format!("METRICS_{id}.json");
    match std::fs::write(&path, snap.to_json()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// E1 (§3.4): maintained heights — first call O(n), repeats O(1), one
/// pointer change O(height), batched changes O(|AFFECTED|).
pub fn e1_height_tree(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E1 — maintained height tree (§3.4): work per operation",
        &[
            "n",
            "first_query_exec",
            "repeat_exec",
            "relink_exec",
            "tree_depth",
            "batch16_exec",
            "16x_separate_exec",
            "exhaustive_visits/query",
            "handcoded_updates/relink",
        ],
    );
    for &n in sizes {
        let (rt, tree, root) = workloads::warmed_tree(n, 42);
        let store = tree.store().clone();
        let first = rt.stats().executions;
        // Repeat queries.
        let before = rt.stats();
        for _ in 0..10 {
            tree.height(root);
        }
        let repeat = rt.stats().delta_since(&before).executions;
        // Single leaf relink.
        let mut r = workloads::rng(7);
        let ls = workloads::leaves(&store, root);
        let leaf = ls[r.gen_range(0..ls.len())];
        let depth = workloads::depth_of(&store, root, leaf).unwrap();
        let before = rt.stats();
        store.set_left(leaf, store.new_leaf(0));
        tree.height(root);
        let relink = rt.stats().delta_since(&before).executions;
        // Batch of 16 relinks, one query…
        let before = rt.stats();
        for i in 0..16usize.min(ls.len() - 1) {
            let l = ls[(i * 37 + 1) % ls.len()];
            if l == leaf {
                continue;
            }
            store.set_right(l, store.new_leaf(1));
        }
        tree.height(root);
        let batch = rt.stats().delta_since(&before).executions;
        // …vs 16 separate change+query rounds (fresh tree for fairness).
        let (rt2, tree2, root2) = workloads::warmed_tree(n, 42);
        let store2 = tree2.store().clone();
        let ls2 = workloads::leaves(&store2, root2);
        let before = rt2.stats();
        for i in 0..16usize.min(ls2.len()) {
            let l = ls2[(i * 37 + 1) % ls2.len()];
            store2.set_right(l, store2.new_leaf(1));
            tree2.height(root2);
        }
        let separate = rt2.stats().delta_since(&before).executions;
        // Baselines.
        let mut ex = ExhaustiveTree::new();
        let ex_root = ex.build_balanced(n);
        ex.reset_counters();
        ex.height(ex_root);
        let ex_visits = ex.visits();
        let mut hc = HandcodedTree::new();
        let hc_root = hc.build_balanced(n);
        let mut hc_leaf = hc_root;
        for _ in 0..4 {
            hc_leaf = hc_root; // walk a short fixed path
        }
        hc.reset_counters();
        let fresh = hc.new_leaf();
        hc.set_left(hc_leaf, fresh);
        let hc_updates = hc.updates();
        t.row_strings(vec![
            n.to_string(),
            first.to_string(),
            repeat.to_string(),
            relink.to_string(),
            depth.to_string(),
            batch.to_string(),
            separate.to_string(),
            ex_visits.to_string(),
            hc_updates.to_string(),
        ]);
    }
    t
}

/// E2 (§9.2): dynamic dependence analysis is O(T) — constant-factor
/// instrumentation overhead on a from-scratch run, repaid by incremental
/// updates; §6.1 reduces the number of instrumented sites.
///
/// Besides the machine-independent step counts, this reports wall-clock
/// time for the from-scratch run and the 100-round update loop (the
/// instrumented/conventional overhead ratio the paper claims is a
/// constant factor), plus the runtime's hot-path counters: reads served
/// borrow-only vs. cloned, frame-epoch dedup hits, and memo-table probes.
pub fn e2_overhead(depths: &[i64]) -> Table {
    let mut t = Table::new(
        "E2 — instrumentation overhead (§9.2): steps, wall-clock, hot-path counters, §6.1 sites",
        &[
            "tree_depth",
            "conv_steps_initial",
            "alph_steps_initial",
            "conv_steps_100_updates",
            "alph_exec_100_updates",
            "conv_init_us",
            "alph_init_us",
            "init_overhead",
            "conv_upd_us",
            "alph_upd_us",
            "upd_speedup",
            "borrow_reads",
            "cloned_reads",
            "dedup_hits",
            "memo_probes",
            "sites_uniform",
            "sites_optimized",
        ],
    );
    let module = parse(HEIGHT_PROGRAM).expect("program parses");
    let program = compile(HEIGHT_PROGRAM).expect("program compiles");
    let (_, uniform) = transform(&module, &program, TransformOptions { optimize: false });
    let (_, optimized) = transform(&module, &program, TransformOptions { optimize: true });
    for &depth in depths {
        let run = |mode: Mode| -> (Interp, Val) {
            let interp = Interp::new(Arc::clone(&program), mode).unwrap();
            interp.call("Init", vec![]).unwrap();
            let root = interp.call("BuildBalanced", vec![Val::Int(depth)]).unwrap();
            interp.call_method(root.clone(), "height", vec![]).unwrap();
            (interp, root)
        };
        // Wall-clock for the from-scratch run: one untimed warmup, then best
        // of seven fresh runs per mode — at tree depth 4 the whole run is
        // tens of microseconds, so a single scheduling hiccup would
        // otherwise skew the ratio badly.
        let time_initial = |mode: Mode| -> f64 {
            let _ = run(mode);
            let mut best = f64::INFINITY;
            for _ in 0..7 {
                let start = Instant::now();
                let _ = run(mode);
                best = best.min(start.elapsed().as_secs_f64() * 1e6);
            }
            best
        };
        let conv_init_us = time_initial(Mode::Conventional);
        let alph_init_us = time_initial(Mode::Alphonse);
        let (conv, conv_root) = run(Mode::Conventional);
        let conv_initial = conv.steps();
        let (alph, alph_root) = run(Mode::Alphonse);
        let alph_initial = alph.steps();
        // 100 mutate+query rounds: flip a subtree off and back on.
        let nil_c = conv.global("nil").unwrap();
        let sub_c = conv.field(&conv_root, "left").unwrap();
        let s0 = conv.steps();
        let upd_start = Instant::now();
        for i in 0..100 {
            let v = if i % 2 == 0 {
                nil_c.clone()
            } else {
                sub_c.clone()
            };
            conv.set_field(&conv_root, "left", v).unwrap();
            conv.call_method(conv_root.clone(), "height", vec![])
                .unwrap();
        }
        let conv_upd_us = upd_start.elapsed().as_secs_f64() * 1e6;
        let conv_updates = conv.steps() - s0;
        let nil_a = alph.global("nil").unwrap();
        let sub_a = alph.field(&alph_root, "left").unwrap();
        let rt = alph.runtime().unwrap().clone();
        let before = rt.stats();
        let upd_start = Instant::now();
        for i in 0..100 {
            let v = if i % 2 == 0 {
                nil_a.clone()
            } else {
                sub_a.clone()
            };
            alph.set_field(&alph_root, "left", v).unwrap();
            alph.call_method(alph_root.clone(), "height", vec![])
                .unwrap();
        }
        let alph_upd_us = upd_start.elapsed().as_secs_f64() * 1e6;
        let hot = rt.stats().delta_since(&before);
        let alph_exec = hot.executions;
        t.row_strings(vec![
            depth.to_string(),
            conv_initial.to_string(),
            alph_initial.to_string(),
            conv_updates.to_string(),
            alph_exec.to_string(),
            format!("{conv_init_us:.1}"),
            format!("{alph_init_us:.1}"),
            format!("{:.2}", alph_init_us / conv_init_us),
            format!("{conv_upd_us:.1}"),
            format!("{alph_upd_us:.1}"),
            format!("{:.2}", conv_upd_us / alph_upd_us),
            hot.borrow_reads.to_string(),
            hot.cloned_reads.to_string(),
            hot.dedup_hits.to_string(),
            hot.memo_probes.to_string(),
            uniform.instrumented().to_string(),
            optimized.instrumented().to_string(),
        ]);
    }
    t
}

/// E3 (§9.1): space — nodes and edges grow linearly for sparse dependence
/// (trees) and quadratically for the dense adversarial case.
pub fn e3_space(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E3 — dependency graph space (§9.1): sparse O(M) vs dense O(M^2)",
        &[
            "n",
            "tree_nodes",
            "tree_edges",
            "tree_edges/n",
            "dense_nodes",
            "dense_edges",
            "dense_edges/n^2",
        ],
    );
    for &n in sizes {
        let (rt, _tree, _root) = workloads::warmed_tree(n, 11);
        let (t_nodes, t_edges) = (rt.node_count(), rt.edge_count());
        // Dense: n outputs each reading all n inputs.
        let rt2 = Runtime::new();
        let vars: Vec<_> = (0..n).map(|i| rt2.var(i as i64)).collect();
        let vs = vars.clone();
        let all = rt2.memo("dense", move |rt, &k: &usize| {
            let mut acc = 0i64;
            for v in &vs {
                acc = acc.wrapping_add(v.get(rt));
            }
            acc.wrapping_mul(k as i64)
        });
        for k in 0..n {
            all.call(&rt2, k);
        }
        let (d_nodes, d_edges) = (rt2.node_count(), rt2.edge_count());
        t.row_strings(vec![
            n.to_string(),
            t_nodes.to_string(),
            t_edges.to_string(),
            format!("{:.2}", t_edges as f64 / n as f64),
            d_nodes.to_string(),
            d_edges.to_string(),
            format!("{:.2}", d_edges as f64 / (n * n) as f64),
        ]);
    }
    t
}

/// E4 (§6.3): partitioning keeps irrelevant changes batched; a demand in
/// one component does not force eager work in others.
pub fn e4_partition(component_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "E4 — graph partitioning (§6.3): forced executions at an unrelated query",
        &[
            "components",
            "forced_exec_unpartitioned",
            "forced_exec_partitioned",
            "pending_after_query_partitioned",
        ],
    );
    for &k in component_counts {
        let run = |partitioning: bool| -> (u64, usize) {
            let rt = Runtime::builder().partitioning(partitioning).build();
            let mut memos = Vec::new();
            let mut vars = Vec::new();
            for i in 0..k {
                let v = rt.var(i as i64);
                let m = rt.memo_with(&format!("comp{i}"), Strategy::Eager, move |rt, &(): &()| {
                    v.get(rt) * 2
                });
                m.call(&rt, ());
                vars.push(v);
                memos.push(m);
            }
            // Change every component except the last…
            for v in vars.iter().take(k - 1) {
                v.set(&rt, v.get(&rt) + 1);
            }
            // …then query only the last (unchanged) component.
            let before = rt.stats();
            memos[k - 1].call(&rt, ());
            let forced = rt.stats().delta_since(&before).executions;
            (forced, rt.dirty_count())
        };
        let (un, _) = run(false);
        let (part, pending) = run(true);
        t.row_strings(vec![
            k.to_string(),
            un.to_string(),
            part.to_string(),
            pending.to_string(),
        ]);
    }
    t
}

/// E5 (§6.4): UNCHECKED reduces per-lookup dependence from O(log n) to
/// O(1), cutting total space from O(M log M) to O(M).
pub fn e5_unchecked(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E5 — UNCHECKED lookups (§6.4): dependence edges per maintained lookup",
        &[
            "n",
            "lookups",
            "edges_tracked",
            "edges_unchecked",
            "invalidated_tracked",
            "invalidated_unchecked",
        ],
    );
    for &n in sizes {
        let build = |unchecked: bool| -> (Runtime, u64, u64) {
            let rt = Runtime::new();
            let tree = alphonse_trees::MaintainedTree::new(&rt);
            let store = Arc::clone(tree.store());
            let keys: Vec<i64> = (0..n as i64).collect();
            let root = store.build_balanced(&keys);
            let s = Arc::clone(&store);
            let contains = rt.memo(
                if unchecked { "find_unchecked" } else { "find" },
                move |rt, &key: &i64| -> bool {
                    let descend = |s: &alphonse_trees::TreeStore| -> NodeRef {
                        let mut cur = root;
                        while !cur.is_nil() {
                            let k = s.key(cur);
                            if key == k {
                                return cur;
                            }
                            cur = if key < k { s.left(cur) } else { s.right(cur) };
                        }
                        NodeRef::NIL
                    };
                    let found = if unchecked {
                        // Programmer-asserted: the lookup depends on the
                        // found item, not the path used to locate it.
                        rt.untracked(|| descend(&s))
                    } else {
                        descend(&s)
                    };
                    if found.is_nil() {
                        false
                    } else {
                        s.key(found) == key // tracked read of the found item
                    }
                },
            );
            let before = rt.stats();
            let m = n as i64;
            for key in 0..m {
                contains.call(&rt, key);
            }
            let edges = rt.stats().delta_since(&before).edges_created;
            // An edit near the root of the search path: relink a subtree
            // high in the tree and count invalidated lookups on re-query.
            let l = store.left(root);
            store.set_left(root, l); // same value: no-op write first
            let ll = store.left(l);
            store.set_left(l, ll); // still same
                                   // A real (value-changing) edit: swap root's grandchildren.
            let lr = store.right(l);
            store.set_left(l, lr);
            store.set_right(l, ll);
            let before = rt.stats();
            for key in 0..m {
                contains.call(&rt, key);
            }
            let invalidated = rt.stats().delta_since(&before).executions;
            (rt, edges, invalidated)
        };
        let (_rt_t, e_t, i_t) = build(false);
        let (_rt_u, e_u, i_u) = build(true);
        t.row_strings(vec![
            n.to_string(),
            n.to_string(),
            e_t.to_string(),
            e_u.to_string(),
            i_t.to_string(),
            i_u.to_string(),
        ]);
    }
    t
}

/// E6 (§7.2): spreadsheet — one edit costs work proportional to the
/// affected cells, while full recalculation pays the whole cone every time.
pub fn e6_sheet(sizes: &[u32]) -> Table {
    let mut t = Table::new(
        "E6 — spreadsheet (§7.2): single-edit update vs full recalculation",
        &[
            "rows",
            "pattern",
            "initial_exec",
            "edit_exec_incremental",
            "recalc_evals_per_query",
            "speedup",
        ],
    );
    for &rows in sizes {
        for pattern in ["chain", "fan"] {
            let rt = Runtime::new();
            let inc = Sheet::new(&rt, 3, rows);
            let base = RecalcSheet::new(3, rows);
            match pattern {
                "chain" => {
                    inc.set("A1", "1").unwrap();
                    base.set("A1", "1").unwrap();
                    for r in 2..=rows {
                        let f = format!("=A{}+1", r - 1);
                        inc.set(&format!("A{r}"), &f).unwrap();
                        base.set(&format!("A{r}"), &f).unwrap();
                    }
                }
                _ => {
                    for r in 1..=rows {
                        let v = r.to_string();
                        inc.set(&format!("A{r}"), &v).unwrap();
                        base.set(&format!("A{r}"), &v).unwrap();
                    }
                    let f = format!("=SUM(A1:A{rows})");
                    inc.set("B1", &f).unwrap();
                    base.set("B1", &f).unwrap();
                }
            }
            let probe = if pattern == "chain" {
                format!("A{rows}")
            } else {
                "B1".to_string()
            };
            let before = rt.stats();
            inc.value(&probe).unwrap();
            let initial = rt.stats().delta_since(&before).executions;
            // Edit the middle source cell.
            let edit_cell = format!("A{}", rows / 2);
            let before = rt.stats();
            inc.set(&edit_cell, "500").unwrap();
            inc.value(&probe).unwrap();
            let edit_exec = rt.stats().delta_since(&before).executions;
            base.reset_counters();
            base.set(&edit_cell, "500").unwrap();
            base.value(&probe).unwrap();
            let recalc = base.evaluations();
            assert_eq!(
                inc.value(&probe).unwrap(),
                base.value(&probe).unwrap(),
                "sheet evaluators diverged"
            );
            t.row_strings(vec![
                rows.to_string(),
                pattern.to_string(),
                initial.to_string(),
                edit_exec.to_string(),
                recalc.to_string(),
                format!("{:.1}x", recalc as f64 / edit_exec.max(1) as f64),
            ]);
        }
    }
    t
}

/// E7 (§7.3): maintained AVL — incremental rebalance work per insert is
/// O(log n)-ish; classic AVL is the hand-coded comparator; exhaustive
/// rebalancing would pay O(n).
pub fn e7_avl(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E7 — self-balancing AVL (§7.3): work per insert+rebalance",
        &[
            "n",
            "order",
            "maintained_exec/insert",
            "classic_visits/insert",
            "exhaustive_cost/insert",
            "final_height",
            "avl_ok",
        ],
    );
    for &n in sizes {
        for order in ["sorted", "random"] {
            let keys: Vec<i64> = match order {
                "sorted" => (0..n as i64).collect(),
                _ => {
                    let mut r = workloads::rng(5);
                    let mut keys: Vec<i64> = (0..n as i64).collect();
                    for i in (1..keys.len()).rev() {
                        keys.swap(i, r.gen_range(0..=i));
                    }
                    keys
                }
            };
            let rt = Runtime::new();
            let mut avl = MaintainedAvl::new(&rt);
            // Warm up on the first half, measure the second half.
            let half = n / 2;
            for &k in &keys[..half] {
                avl.insert(k);
                avl.rebalance();
            }
            let before = rt.stats();
            for &k in &keys[half..] {
                avl.insert(k);
                avl.rebalance();
            }
            let maintained = rt.stats().delta_since(&before).executions as f64 / (n - half) as f64;
            let mut classic = ClassicAvl::new();
            for &k in &keys[..half] {
                classic.insert(k);
            }
            classic.reset_counters();
            for &k in &keys[half..] {
                classic.insert(k);
            }
            let classic_per = classic.visits() as f64 / (n - half) as f64;
            t.row_strings(vec![
                n.to_string(),
                order.to_string(),
                format!("{maintained:.1}"),
                format!("{classic_per:.1}"),
                format!("{}", 3 * n / 4), // rebuilding a balanced tree touches ~n nodes
                avl.height().to_string(),
                avl.is_avl().to_string(),
            ]);
        }
    }
    t
}

/// E8 (§4.2): function caching for non-combinators — cached procedures
/// reading global state stay correct under mutation, at the cost of
/// re-execution only when that state changes.
pub fn e8_noncombinator(table_sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E8 — non-combinator caching (§4.2): hits vs forced re-executions",
        &[
            "distinct_args",
            "calls",
            "executions",
            "cache_hits",
            "execs_after_global_change",
        ],
    );
    for &k in table_sizes {
        let rt = Runtime::new();
        let factor = rt.var(3i64);
        let f = rt.memo("scaled", move |rt, &x: &i64| x * factor.get(rt));
        // 4 rounds over k distinct arguments.
        for _ in 0..4 {
            for x in 0..k as i64 {
                f.call(&rt, x);
            }
        }
        let s = rt.stats();
        let (calls, execs, hits) = (s.calls, s.executions, s.cache_hits);
        factor.set(&rt, 5);
        let before = rt.stats();
        for x in 0..k as i64 {
            assert_eq!(f.call(&rt, x), x * 5, "stale cache after global change");
        }
        let after = rt.stats().delta_since(&before).executions;
        t.row_strings(vec![
            k.to_string(),
            calls.to_string(),
            execs.to_string(),
            hits.to_string(),
            after.to_string(),
        ]);
    }
    t
}

/// E9 (§4.5): topological-order propagation minimizes re-executions;
/// FIFO order re-runs join nodes with stale inputs.
pub fn e9_schedule(depths: &[usize]) -> Table {
    let mut t = Table::new(
        "E9 — propagation order (§4.5): eager re-executions per change wave",
        &[
            "ladder_depth",
            "height_order_exec",
            "fifo_exec",
            "ratio",
            "height_us/wave",
            "fifo_us/wave",
        ],
    );
    let mut metrics = MetricsSnapshot::default();
    for &d in depths {
        let mut run = |mode: Scheduling| -> (u64, f64) {
            let rt = Runtime::builder().scheduling(mode).build();
            let src = rt.var(1i64);
            // Ladder: level i reads level i-1 AND the source directly, with
            // the source edge added last so FIFO pops the join first.
            let mut prev = rt.memo_with("lvl0", Strategy::Eager, move |rt, &(): &()| src.get(rt));
            prev.call(&rt, ());
            for i in 1..d {
                let below = prev.clone();
                let m = rt.memo_with(&format!("lvl{i}"), Strategy::Eager, move |rt, &(): &()| {
                    below.call(rt, ()) + src.get(rt)
                });
                m.call(&rt, ());
                prev = m;
            }
            let before = rt.stats();
            let start = Instant::now();
            src.set(&rt, 2);
            rt.propagate();
            let us = start.elapsed().as_secs_f64() * 1e6;
            metrics.merge(&rt.metrics_snapshot());
            (rt.stats().delta_since(&before).executions, us)
        };
        let (h, h_us) = run(Scheduling::HeightOrder);
        let (f, f_us) = run(Scheduling::Fifo);
        t.row_strings(vec![
            d.to_string(),
            h.to_string(),
            f.to_string(),
            format!("{:.2}x", f as f64 / h.max(1) as f64),
            format!("{h_us:.1}"),
            format!("{f_us:.1}"),
        ]);
    }
    write_metrics_sidecar("E9", &metrics);
    t
}

/// E10 (§3.3): eager evaluation moves work before the query; demand defers
/// it — query-time latency vs background work.
pub fn e10_strategy(chain_lengths: &[usize]) -> Table {
    let mut t = Table::new(
        "E10 — DEMAND vs EAGER (§3.3): where the update work happens",
        &[
            "chain",
            "strategy",
            "exec_at_change+propagate",
            "exec_at_query",
        ],
    );
    for &d in chain_lengths {
        for strategy in [Strategy::Demand, Strategy::Eager] {
            let rt = Runtime::new();
            let src = rt.var(1i64);
            let mut prev = rt.memo_with("c0", strategy, move |rt, &(): &()| src.get(rt));
            prev.call(&rt, ());
            for i in 1..d {
                let below = prev.clone();
                let m = rt.memo_with(&format!("c{i}"), strategy, move |rt, &(): &()| {
                    below.call(rt, ()) + 1
                });
                m.call(&rt, ());
                prev = m;
            }
            let before = rt.stats();
            src.set(&rt, 10);
            rt.propagate(); // the "cycles available" hook of §4.5
            let at_change = rt.stats().delta_since(&before).executions;
            let before = rt.stats();
            assert_eq!(prev.call(&rt, ()), 10 + d as i64 - 1);
            let at_query = rt.stats().delta_since(&before).executions;
            t.row_strings(vec![
                d.to_string(),
                format!("{strategy:?}"),
                at_change.to_string(),
                at_query.to_string(),
            ]);
        }
    }
    t
}

/// E6-companion: attribute-grammar re-attribution vs exhaustive (the
/// Section 7.1 half of the spreadsheet/AG claim).
///
/// Note the workload: `k` *nested* lets whose bindings reference the
/// previous binder. Exhaustive evaluation (no caching) is **exponential**
/// in `k` here — every `env` recomputes its binder's value, which re-walks
/// the whole chain — so keep `k ≲ 20`. Function caching collapses the same
/// attribution to O(k) instances, which is exactly the redundancy the
/// paper's incremental evaluation removes.
pub fn e6_ag(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E6b — let-language attribute grammar (§7.1): edit vs exhaustive (exponential baseline)",
        &[
            "lets",
            "initial_exec",
            "edit_exec_incremental",
            "exhaustive_evals",
            "speedup",
        ],
    );
    for &k in sizes {
        // Nested lets: let x0 = 1 in ... let xk = x(k-1)+1 in sum ni...
        let mut src = String::from("x0");
        for i in (1..k).rev() {
            src = format!("let x{i} = x{} + 1 in {src} + x{i} ni", i - 1);
        }
        src = format!("let x0 = 1 in {src} ni");
        let expr = parse_let(&src).expect("generated program parses");

        let rt = Runtime::new();
        let (tree, lang) = LetLang::tree(&rt);
        let (root, outer_let) = expr.instantiate(&tree, &lang);
        let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
        let before = rt.stats();
        let v1 = eval.syn(root, lang.value);
        let initial = rt.stats().delta_since(&before).executions;
        // Edit the innermost literal (x0's binding).
        let bound = tree.child(outer_let, 0).unwrap();
        let before = rt.stats();
        tree.set_terminal(bound, 0, AttrVal::Int(2));
        let v2 = eval.syn(root, lang.value);
        let edit = rt.stats().delta_since(&before).executions;
        assert_ne!(v1, v2);

        let ex = ExhaustiveAg::new(Arc::clone(&tree));
        ex.reset_counters();
        let v3 = ex.syn(root, lang.value);
        assert_eq!(v2, v3, "evaluators diverged");
        let exhaustive = ex.evaluations();
        t.row_strings(vec![
            k.to_string(),
            initial.to_string(),
            edit.to_string(),
            exhaustive.to_string(),
            format!("{:.1}x", exhaustive as f64 / edit.max(1) as f64),
        ]);
    }
    t
}

/// E12 (§3.3): bounded caches — the cache-size/replacement pragma
/// arguments trade recomputation for memory. Sweep capacity over a
/// working set with a skewed (80/20) access pattern.
pub fn e12_cache_capacity(capacities: &[usize]) -> Table {
    let mut t = Table::new(
        "E12 — LRU cache capacity (§3.3): recomputation vs bounded values",
        &[
            "capacity",
            "distinct_args",
            "calls",
            "executions",
            "evictions",
            "hit_rate",
        ],
    );
    let distinct = 256usize;
    let rounds = 20usize;
    for &capacity in capacities {
        let rt = Runtime::new();
        let base = rt.var(1i64);
        let f = rt.memo_bounded(
            "bounded",
            Strategy::Demand,
            capacity,
            move |rt, &x: &i64| base.get(rt) * x,
        );
        let mut r = workloads::rng(3);
        for _ in 0..rounds * distinct {
            // 80% of calls hit the hot 20% of the key space.
            let x = if r.gen_range(0..10) < 8 {
                r.gen_range(0..distinct as i64 / 5)
            } else {
                r.gen_range(0..distinct as i64)
            };
            f.call(&rt, x);
        }
        let s = rt.stats();
        t.row_strings(vec![
            capacity.to_string(),
            distinct.to_string(),
            s.calls.to_string(),
            s.executions.to_string(),
            f.evictions().to_string(),
            format!("{:.1}%", 100.0 * s.cache_hits as f64 / s.calls as f64),
        ]);
    }
    t
}

/// E13: bulk edits — k random leaf writes per wave over a 64-leaf
/// reduction grid, issued one `Var::set` at a time vs one `Runtime::batch`
/// transaction, under both drain orders. Both arms propagate once per
/// wave, so their propagation work is identical by construction and the
/// write-phase timing (`*_wr_us`) isolates what the transaction buys:
/// one runtime borrow per wave and, once k exceeds the location count
/// (the bulk-edit regime batching exists for — repeated pastes, counters,
/// accumulation loops), heavy coalescing — each multiply-written location
/// gets a single cutoff comparison instead of one per write. The scratch columns show the
/// propagation fan-out buffer reaching steady state after the first wave
/// (equal `scratch_w1`/`scratch_final` ⇒ zero fan-out allocations after
/// warm-up).
pub fn e13_bulk_edits(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "E13 — bulk edits: k random writes per wave, Var::set vs Runtime::batch",
        &[
            "k",
            "sched",
            "set_wr_us",
            "batch_wr_us",
            "wr_speedup",
            "set_us/wave",
            "batch_us/wave",
            "speedup",
            "coalesced",
            "set_dirtied",
            "batch_dirtied",
            "scratch_w1",
            "scratch_final",
        ],
    );
    const LEAVES: usize = 64;
    const GROUP: usize = 8;
    for &k in ks {
        let waves_n = (4096 / k.max(1)).clamp(4, 64);
        for sched in [Scheduling::HeightOrder, Scheduling::Fifo] {
            // Pre-generate the edit stream once so both arms replay the
            // identical writes.
            let mut r = workloads::rng(13 + k as u64);
            let edit_waves: Vec<Vec<(usize, i64)>> = (0..waves_n)
                .map(|_| {
                    (0..k)
                        .map(|_| (r.gen_range(0..LEAVES), r.gen_range(0..16i64)))
                        .collect()
                })
                .collect();
            // Runs one arm once: returns (write-phase us/wave, total
            // us/wave, stats delta, scratch hwm after wave 1, scratch hwm at
            // the end).
            let run_once = |batched: bool| {
                let rt = Runtime::builder().scheduling(sched).build();
                let vars: Vec<_> = (0..LEAVES).map(|i| rt.var(i as i64)).collect();
                let groups: Vec<_> = vars
                    .chunks(GROUP)
                    .enumerate()
                    .map(|(g, chunk)| {
                        let chunk = chunk.to_vec();
                        rt.memo_with(
                            &format!("group{g}"),
                            Strategy::Eager,
                            move |rt, &(): &()| chunk.iter().map(|v| v.get(rt)).sum::<i64>(),
                        )
                    })
                    .collect();
                let gs = groups.clone();
                let total = rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
                    gs.iter().map(|g| g.call(rt, ())).sum::<i64>()
                });
                total.call(&rt, ());
                rt.propagate();
                let before = rt.stats();
                let mut scratch_w1 = 0u64;
                let mut write_secs = 0.0f64;
                let start = Instant::now();
                for (w, wave) in edit_waves.iter().enumerate() {
                    let wr = Instant::now();
                    if batched {
                        rt.batch(|tx| {
                            for &(i, v) in wave {
                                vars[i].set_in(tx, v);
                            }
                        });
                    } else {
                        for &(i, v) in wave {
                            vars[i].set(&rt, v);
                        }
                    }
                    write_secs += wr.elapsed().as_secs_f64();
                    rt.propagate();
                    if w == 0 {
                        scratch_w1 = rt.stats().scratch_hwm;
                    }
                }
                let us = start.elapsed().as_secs_f64() * 1e6 / waves_n as f64;
                let wr_us = write_secs * 1e6 / waves_n as f64;
                (
                    wr_us,
                    us,
                    rt.stats().delta_since(&before),
                    scratch_w1,
                    rt.stats().scratch_hwm,
                )
            };
            // Min-of-reps on a fresh fixture each time, to damp timer and
            // allocator noise; counters are deterministic, so any rep's
            // stats delta is representative.
            let run = |batched: bool| {
                let mut best = run_once(batched);
                for _ in 1..4 {
                    let r = run_once(batched);
                    best.0 = if r.0 < best.0 { r.0 } else { best.0 };
                    best.1 = if r.1 < best.1 { r.1 } else { best.1 };
                }
                best
            };
            let (set_wr_us, set_us, set_d, _, _) = run(false);
            let (batch_wr_us, batch_us, batch_d, scratch_w1, scratch_final) = run(true);
            // Coalescing can only shrink the propagation work (a location
            // restored to its pre-batch value within one wave never
            // dirties), never grow it.
            assert!(
                batch_d.executions <= set_d.executions,
                "batch re-executed more than sequential: {} > {}",
                batch_d.executions,
                set_d.executions
            );
            t.row_strings(vec![
                k.to_string(),
                format!("{sched:?}"),
                format!("{set_wr_us:.1}"),
                format!("{batch_wr_us:.1}"),
                format!("{:.2}x", set_wr_us / batch_wr_us.max(1e-9)),
                format!("{set_us:.1}"),
                format!("{batch_us:.1}"),
                format!("{:.2}x", set_us / batch_us.max(1e-9)),
                batch_d.coalesced_writes.to_string(),
                set_d.dirtied.to_string(),
                batch_d.dirtied.to_string(),
                scratch_w1.to_string(),
                scratch_final.to_string(),
            ]);
        }
    }
    t
}

/// One tenant's serving session for E14: an E13-style reduction grid (64
/// tracked leaves summed through 8 eager group memos into one eager total)
/// plus the per-wave serve-latency histogram its waves record (µs samples
/// on the shared [`Histogram`] type — no per-sample allocation, and the
/// shard can snapshot it without handing the samples back).
struct ServeSession {
    rt: Runtime,
    vars: Vec<Var<i64>>,
    total: Memo<(), i64>,
    lat_us: Histogram,
}

fn serve_session(seed: u64) -> ServeSession {
    const LEAVES: usize = 64;
    const GROUP: usize = 8;
    let rt = Runtime::new();
    let mut r = workloads::rng(seed);
    let vars: Vec<_> = (0..LEAVES)
        .map(|_| rt.var(r.gen_range(0..1024i64)))
        .collect();
    let groups: Vec<_> = vars
        .chunks(GROUP)
        .enumerate()
        .map(|(g, chunk)| {
            let chunk = chunk.to_vec();
            rt.memo_with(
                &format!("group{g}"),
                Strategy::Eager,
                move |rt, &(): &()| chunk.iter().map(|v| v.get(rt)).sum::<i64>(),
            )
        })
        .collect();
    let total = rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
        groups.iter().map(|g| g.call(rt, ())).sum::<i64>()
    });
    total.call(&rt, ());
    rt.propagate();
    ServeSession {
        rt,
        vars,
        total,
        lat_us: Histogram::new(),
    }
}

/// E14: sharded multi-session serving — `sessions` independent tenants on a
/// [`SessionPool`] of 1→N worker threads, each work unit one batched
/// 16-write edit wave followed by propagation. Sessions are built on the
/// driving thread and *moved* into their shard (the `Runtime: Send`
/// property the struct-of-arrays core makes cheap), and shards share
/// nothing, so aggregate throughput is bounded only by cores and by any
/// per-wave blocking the server does.
///
/// Two workloads per thread count: `stall_us = 0` is pure CPU (on a
/// single-core host this row is flat by construction — use it on multicore
/// machines), and `stall_us = 200` adds a fixed simulated per-tenant
/// blocking stall to each wave (write-ahead persistence, a downstream
/// call…). Shards overlap stalls of different tenants, which is the
/// scaling a sharded serving layer buys on any host. `scaling` is
/// throughput relative to the 1-thread row of the same workload;
/// `bytes_node` is `mem_bytes_hwm / mem_nodes` from the runtime's memory
/// gauges — the per-node footprint of the struct-of-arrays columns.
pub fn e14_serving(threads: &[usize], sessions: usize, waves: usize) -> Table {
    const LEAVES: usize = 64;
    const K: usize = 16;
    let mut t = Table::new(
        "E14 — sharded serving: sessions x batched edit waves on a SessionPool",
        &[
            "threads",
            "stall_us",
            "sessions",
            "writes",
            "elapsed_ms",
            "kwrites_s",
            "scaling",
            "p50_us",
            "p95_us",
            "p99_us",
            "bytes_node",
        ],
    );
    // One edit stream per tenant, replayed identically at every thread
    // count so rows are comparable.
    type EditStream = Vec<Vec<(usize, i64)>>;
    let streams: Vec<Arc<EditStream>> = (0..sessions)
        .map(|s| {
            let mut r = workloads::rng(1400 + s as u64);
            Arc::new(
                (0..waves)
                    .map(|_| {
                        (0..K)
                            .map(|_| (r.gen_range(0..LEAVES), r.gen_range(0..1024i64)))
                            .collect()
                    })
                    .collect(),
            )
        })
        .collect();
    for stall_us in [0u64, 200] {
        let mut base_kwps = 0.0f64;
        for &n in threads {
            let pool = SessionPool::new(n);
            for s in 0..sessions as u64 {
                pool.insert(s, serve_session(1400 + s));
            }
            pool.flush();
            let start = Instant::now();
            for w in 0..waves {
                for (s, stream) in streams.iter().enumerate() {
                    let stream = Arc::clone(stream);
                    pool.submit(s as u64, move |sess: &mut ServeSession| {
                        let t0 = Instant::now();
                        let vars = &sess.vars;
                        sess.rt.batch(|tx| {
                            for &(i, v) in &stream[w] {
                                vars[i].set_in(tx, v);
                            }
                        });
                        sess.rt.propagate();
                        if stall_us > 0 {
                            std::thread::sleep(std::time::Duration::from_micros(stall_us));
                        }
                        sess.lat_us.record(t0.elapsed().as_micros() as u64);
                    });
                }
            }
            pool.flush();
            let elapsed = start.elapsed().as_secs_f64();
            // Harvest latency histograms and the memory gauges, then verify
            // every session converged to its replayed edit stream.
            let mut lat = HistogramSnapshot::empty();
            let mut bytes_node = 0u64;
            for s in 0..sessions as u64 {
                let (samples, stats) = pool.query(s, |sess: &mut ServeSession| {
                    (sess.lat_us.snapshot(), sess.rt.stats())
                });
                assert_eq!(samples.count(), waves as u64, "every wave served");
                lat.merge(&samples);
                if s == 0 {
                    bytes_node = stats.mem_bytes_hwm / stats.mem_nodes.max(1);
                }
                let expect: i64 = {
                    let mut leaves = vec![0i64; LEAVES];
                    let mut r = workloads::rng(1400 + s);
                    for l in leaves.iter_mut() {
                        *l = r.gen_range(0..1024i64);
                    }
                    for wave in streams[s as usize].iter() {
                        for &(i, v) in wave {
                            leaves[i] = v;
                        }
                    }
                    leaves.iter().sum()
                };
                let got = pool.query(s, |sess: &mut ServeSession| sess.total.call(&sess.rt, ()));
                assert_eq!(got, expect, "session {s} diverged under the pool");
            }
            let pct = percentile_cells(&lat, &[0.50, 0.95, 0.99], 1.0);
            let writes = sessions * waves * K;
            let kwps = writes as f64 / elapsed / 1e3;
            if base_kwps == 0.0 {
                base_kwps = kwps;
            }
            let mut row = vec![
                n.to_string(),
                stall_us.to_string(),
                sessions.to_string(),
                writes.to_string(),
                format!("{:.1}", elapsed * 1e3),
                format!("{kwps:.0}"),
                format!("{:.2}x", kwps / base_kwps),
            ];
            row.extend(pct);
            row.push(bytes_node.to_string());
            t.row_strings(row);
        }
    }
    t
}

/// E15: level-parallel wave propagation inside a single graph — one wide
/// "spreadsheet row" (every cell depends on one input var, one total sums
/// the cells), update loop re-timed at each parallelism setting.
///
/// Each cell's executor stalls for `stall_us` before producing its value,
/// modeling the I/O-bound recompute (an external lookup, a service call per
/// cell) that level parallelism is for: the cells of one height level are
/// mutually independent, so `n` workers overlap `n` stalls. On a multicore
/// host a CPU-bound body scales the same way; on a single-core host — like
/// CI — only the stall workload can show wall-clock speedup, which is why
/// it is the measured one (same methodology as E14's stall rows).
///
/// `workers`: `0` = the sequential evaluator (no level machinery at all),
/// `1` = level-at-a-time draining with inline execution (the honest
/// baseline for the speedup column — it pays the batching overhead but
/// runs no worker threads), `n >= 2` = a pooled level scheduler. `speedup`
/// is relative to the 1-worker row. Without the `parallel` feature
/// `set_parallelism` is a stub and every row measures the sequential
/// evaluator.
pub fn e15_parallel(workers: &[usize], width: usize, waves: usize, stall_us: u64) -> Table {
    let mut t = Table::new(
        "E15 — level-parallel waves: wide row graph, stall-bound cells",
        &[
            "mode",
            "width",
            "waves",
            "stall_us",
            "elapsed_ms",
            "waves_s",
            "speedup",
            "par_levels",
            "par_execs",
            "level_hwm",
            "execs",
        ],
    );
    struct Row {
        mode: String,
        elapsed: f64,
        stats: alphonse::Stats,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut metrics = MetricsSnapshot::default();
    for &n in workers {
        let rt = Runtime::new();
        rt.set_parallelism(n);
        let vars: Vec<Var<i64>> = (0..width).map(|i| rt.var(i as i64)).collect();
        let cells: Vec<Memo<(), i64>> = vars
            .iter()
            .map(|v| {
                let v = *v;
                rt.memo_with("cell", Strategy::Eager, move |rt, &(): &()| {
                    let x = v.get(rt);
                    if stall_us > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(stall_us));
                    }
                    x + 1
                })
            })
            .collect();
        let total = {
            let cells = cells.clone();
            rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
                cells.iter().map(|c| c.call(rt, ())).sum::<i64>()
            })
        };
        total.call(&rt, ());
        rt.propagate();
        rt.reset_stats();
        let start = Instant::now();
        for w in 0..waves {
            rt.batch(|tx| {
                for (i, v) in vars.iter().enumerate() {
                    // `+ 1` keeps wave 0 distinct from the warmup values, so
                    // every wave really recomputes all `width` cells.
                    v.set_in(tx, (w * width + i) as i64 + 1);
                }
            });
            rt.propagate();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let last = waves - 1;
        let expect: i64 = (0..width).map(|i| (last * width + i) as i64 + 2).sum();
        assert_eq!(total.call(&rt, ()), expect, "parallel run diverged");
        rt.check_invariants();
        metrics.merge(&rt.metrics_snapshot());
        rows.push(Row {
            mode: if n == 0 {
                "seq".into()
            } else {
                format!("par{n}")
            },
            elapsed,
            stats: rt.stats(),
        });
    }
    // Speedup is measured against the 1-worker level scheduler (same
    // batching, no threads); fall back to the first row if absent.
    let base = rows
        .iter()
        .find(|r| r.mode == "par1")
        .map(|r| r.elapsed)
        .unwrap_or_else(|| rows.first().map(|r| r.elapsed).unwrap_or(1.0));
    for r in &rows {
        t.row_strings(vec![
            r.mode.clone(),
            width.to_string(),
            waves.to_string(),
            stall_us.to_string(),
            format!("{:.1}", r.elapsed * 1e3),
            format!("{:.1}", waves as f64 / r.elapsed),
            format!("{:.2}x", base / r.elapsed),
            r.stats.parallel_levels.to_string(),
            r.stats.parallel_executions.to_string(),
            r.stats.level_width_hwm.to_string(),
            r.stats.executions.to_string(),
        ]);
    }
    write_metrics_sidecar("E15", &metrics);
    t
}

/// E16: the metrics layer's own cost. The ROADMAP judges the scale-stress
/// work on wave-latency percentiles — which only pay off if collecting
/// them is close to free. Two update loops (the E9 height ladder and the
/// E15 wide row, both pure CPU so instrumentation cannot hide inside
/// stalls) run with recording enabled vs the
/// [`alphonse::metrics::set_enabled`] kill-switch, which leaves one
/// relaxed atomic load per site. Both arms share **one** runtime and one
/// long update loop, interleaved in short paired chunks whose within-pair
/// order is (seeded-)randomly flipped, so co-tenant noise bursts,
/// frequency ramps and allocator-layout luck land on both arms equally;
/// `overhead_pct` compares the arms' median per-chunk times, which drops
/// burst outliers from both arms entirely. The acceptance bar
/// is overhead ≤2%. The on-arm chunks supply the first recorded
/// wave-latency p50/p99 trajectory (`-` when the `metrics` feature is
/// compiled out, where both arms are identical by construction).
///
/// The same interleaved methodology then measures the subsystem-tagged
/// memory accounting (`mem_*` columns): both arms run with the metrics
/// recording left in its ambient state and toggle
/// [`alphonse::mem::set_enabled`] instead. When the driving binary
/// installs [`alphonse::mem::TrackingAlloc`] (the `e16_metrics_overhead`
/// binary does), both arms pay the allocator's header stamping, so
/// `mem_overhead_pct` isolates the per-allocation relaxed counter updates
/// the kill-switch gates — the same ≤2% bar applies. Without the
/// allocator installed (plain `cargo test`), the toggle gates nothing and
/// the arms are identical by construction.
pub fn e16_metrics_overhead(quick: bool) -> Table {
    let mut t = Table::new(
        "E16 — metrics overhead: update-loop cost, recording on vs off",
        &[
            "workload",
            "size",
            "chunks",
            "waves_arm",
            "off_ms",
            "on_ms",
            "overhead_pct",
            "mem_off_ms",
            "mem_on_ms",
            "mem_overhead_pct",
            "wave_p50_us",
            "wave_p99_us",
        ],
    );
    /// Drives `wave` for `chunks` timed chunks of `waves_per_chunk` waves.
    /// Chunks come in pairs — one `toggle(false)`, one `toggle(true)`, with
    /// the within-pair order flipped by a seeded coin so no periodic
    /// machine effect can alias onto one arm. Returns each arm's median
    /// per-chunk seconds plus the run's wave-latency delta; medians (rather
    /// than sums) drop co-tenant noise bursts from both arms entirely.
    fn measure(
        rt: &Runtime,
        wave: &mut dyn FnMut(usize),
        waves_per_chunk: usize,
        chunks: usize,
        seed: u64,
        toggle: &dyn Fn(bool),
    ) -> (f64, f64, HistogramSnapshot) {
        let before = rt.metrics_snapshot();
        let mut times = [Vec::new(), Vec::new()];
        let mut r = workloads::rng(seed);
        let mut w = 0;
        let mut chunk = |on: bool, w: &mut usize, times: &mut [Vec<f64>; 2]| {
            toggle(on);
            let t0 = Instant::now();
            for _ in 0..waves_per_chunk {
                wave(*w);
                *w += 1;
            }
            times[on as usize].push(t0.elapsed().as_secs_f64());
        };
        for _ in 0..chunks / 2 {
            let on_first = r.gen_range(0..2) == 1;
            chunk(on_first, &mut w, &mut times);
            chunk(!on_first, &mut w, &mut times);
        }
        toggle(true);
        let median = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let (off, on) = (median(&mut times[0]), median(&mut times[1]));
        let delta = rt.metrics_snapshot().delta_since(&before);
        (off, on, delta.wave_latency_ns)
    }
    /// Runs the metrics-toggle arms, then the mem-accounting-toggle arms,
    /// on the same warmed runtime and wave body. Each pass restores its
    /// kill-switch to the pre-pass state.
    fn measure_both(
        rt: &Runtime,
        mut wave: impl FnMut(usize),
        waves_per_chunk: usize,
        chunks: usize,
    ) -> (f64, f64, HistogramSnapshot, f64, f64) {
        let metrics_was_on = alphonse::metrics::enabled();
        let (off, on, hist) = measure(rt, &mut wave, waves_per_chunk, chunks, 1600, &|on| {
            alphonse::metrics::set_enabled(on)
        });
        alphonse::metrics::set_enabled(metrics_was_on);
        let mem_was_on = alphonse::mem::enabled();
        let (mem_off, mem_on, _) = measure(rt, &mut wave, waves_per_chunk, chunks, 1601, &|on| {
            alphonse::mem::set_enabled(on)
        });
        alphonse::mem::set_enabled(mem_was_on);
        (off, on, hist, mem_off, mem_on)
    }
    // Each workload builds its warmed runtime, then hands the per-wave body
    // to `measure_both`.
    type Run = Box<dyn Fn(usize, usize, usize) -> (f64, f64, HistogramSnapshot, f64, f64)>;
    let ladder: Run = Box::new(|size, wpc, chunks| {
        let rt = Runtime::new();
        let src = rt.var(1i64);
        let mut prev = rt.memo_with("lvl0", Strategy::Eager, move |rt, &(): &()| src.get(rt));
        prev.call(&rt, ());
        for i in 1..size {
            let below = prev.clone();
            let m = rt.memo_with(&format!("lvl{i}"), Strategy::Eager, move |rt, &(): &()| {
                below.call(rt, ()) + src.get(rt)
            });
            m.call(&rt, ());
            prev = m;
        }
        rt.propagate();
        // Warm the loop (and spin the CPU up out of its idle frequency)
        // before the arms start.
        for w in 0..64 {
            src.set(&rt, w + 2);
            rt.propagate();
        }
        measure_both(
            &rt,
            |w| {
                src.set(&rt, w as i64 + 100);
                rt.propagate();
            },
            wpc,
            chunks,
        )
    });
    let wide: Run = Box::new(|size, wpc, chunks| {
        let rt = Runtime::new();
        let vars: Vec<Var<i64>> = (0..size).map(|i| rt.var(i as i64)).collect();
        let cells: Vec<Memo<(), i64>> = vars
            .iter()
            .map(|v| {
                let v = *v;
                rt.memo_with("cell", Strategy::Eager, move |rt, &(): &()| v.get(rt) + 1)
            })
            .collect();
        let total = {
            let cells = cells.clone();
            rt.memo_with("total", Strategy::Eager, move |rt, &(): &()| {
                cells.iter().map(|c| c.call(rt, ())).sum::<i64>()
            })
        };
        total.call(&rt, ());
        rt.propagate();
        let wave = |w: usize| {
            rt.batch(|tx| {
                for (i, v) in vars.iter().enumerate() {
                    v.set_in(tx, (w * size + i) as i64 + 1);
                }
            });
            rt.propagate();
        };
        for w in 0..64 {
            wave(w);
        }
        measure_both(&rt, wave, wpc, chunks)
    });
    let runs: [(&str, usize, usize, usize, Run); 2] = if quick {
        [
            ("e9_ladder", 64, 2, 160, ladder),
            ("e15_wide", 64, 2, 160, wide),
        ]
    } else {
        [
            ("e9_ladder", 256, 2, 640, ladder),
            ("e15_wide", 256, 2, 320, wide),
        ]
    };
    for (name, size, wpc, chunks, run) in runs {
        let (off_chunk, on_chunk, hist, mem_off, mem_on) = run(size, wpc, chunks);
        let overhead = (on_chunk - off_chunk) / off_chunk * 100.0;
        let mem_overhead = (mem_on - mem_off) / mem_off * 100.0;
        let per_arm = (chunks / 2) as f64;
        let mut row = vec![
            name.to_string(),
            size.to_string(),
            chunks.to_string(),
            (wpc * chunks / 2).to_string(),
            format!("{:.2}", off_chunk * per_arm * 1e3),
            format!("{:.2}", on_chunk * per_arm * 1e3),
            format!("{overhead:.2}"),
            format!("{:.2}", mem_off * per_arm * 1e3),
            format!("{:.2}", mem_on * per_arm * 1e3),
            format!("{mem_overhead:.2}"),
        ];
        row.extend(percentile_cells(&hist, &[0.5, 0.99], 1e3));
        t.row_strings(row);
    }
    t
}

/// E17 — million-node scale stress: how the runtime's cost model holds up
/// three orders of magnitude past the paper's examples.
///
/// Two substrates are pushed to ~10^6 runtime nodes each, sequentially and
/// with the level-parallel scheduler at n=4 (a stub without the `parallel`
/// feature — that row then re-measures the sequential evaluator):
///
/// * **sheet** — a `rows × cols` spreadsheet whose columns are add-one
///   chains, populated through `Sheet::set_formulas` (the bulk-edit path:
///   one overlay-validated write transaction for every cell) and then fully
///   demanded, so every cell holds both its formula var and its
///   materialized value instance.
/// * **ag** — a balanced binary sum tree over `leaves` attributed leaves
///   (`AgTree::build` per node: parent/child/terminal vars), fully
///   attributed by one `AgEvaluator::syn` at the root.
///
/// After the build, an update loop bulk-edits random inputs (sheet: base
/// row via `set_formulas`; ag: leaf terminals) and re-queries, yielding the
/// wave p50/p99 under steady-state incremental load.
///
/// The memory columns come from the subsystem-tagged allocator
/// (`alphonse::mem`): each run reports the growth of per-tag live bytes
/// from its start to full materialization — its own high-water mark, since
/// the structure only grows — divided by the node count. They are all zero
/// unless the driving binary installs [`alphonse::mem::TrackingAlloc`]
/// (the `e17_scale` and `all_experiments` binaries do).
pub fn e17_scale(quick: bool) -> Table {
    let mut t = Table::new(
        "E17 — million-node scale stress: bulk build throughput, wave latency, bytes/node",
        &[
            "workload",
            "mode",
            "nodes",
            "cells",
            "build_ms",
            "knodes/s",
            "wave_p50_us",
            "wave_p99_us",
            "live_mib",
            "b/node",
            "graph_b/n",
            "slab_b/n",
            "memo_b/n",
            "substrate_b/n",
        ],
    );
    let live = |tag: &str,
                after: &alphonse::mem::MemSnapshot,
                before: &alphonse::mem::MemSnapshot|
     -> u64 {
        let b = before.get(tag).map_or(0, |s| s.live_bytes);
        after.get(tag).map_or(0, |s| s.live_bytes).saturating_sub(b)
    };
    // One finished run, substrate-agnostic.
    struct Run {
        nodes: u64,
        cells: u64,
        build_s: f64,
        waves: HistogramSnapshot,
        tag_bytes: Vec<(&'static str, u64)>,
        snapshot: MetricsSnapshot,
    }
    let mut sidecar = MetricsSnapshot::default();
    let emit = |t: &mut Table, workload: &str, mode: &str, r: Run| {
        let total: u64 = r.tag_bytes.iter().map(|(_, b)| b).sum();
        let per = |tag: &str| {
            let b = r
                .tag_bytes
                .iter()
                .find(|(n, _)| *n == tag)
                .map_or(0, |(_, b)| *b);
            format!("{:.1}", b as f64 / r.nodes.max(1) as f64)
        };
        let mut row = vec![
            workload.to_string(),
            mode.to_string(),
            r.nodes.to_string(),
            r.cells.to_string(),
            format!("{:.1}", r.build_s * 1e3),
            format!("{:.1}", r.nodes as f64 / r.build_s / 1e3),
        ];
        row.extend(percentile_cells(&r.waves, &[0.5, 0.99], 1e3));
        row.push(format!("{:.1}", total as f64 / (1 << 20) as f64));
        row.push(format!("{:.1}", total as f64 / r.nodes.max(1) as f64));
        row.push(per("graph_core"));
        row.push(per("value_slab"));
        row.push(per("memo"));
        row.push(per("substrate"));
        t.row_strings(row);
    };
    const TAGS: [&str; 7] = [
        "graph_core",
        "value_slab",
        "memo",
        "queues",
        "substrate",
        "exec_pool",
        "metrics",
    ];
    let (cols, rows, leaves, waves_n) = if quick {
        (512u32, 16u32, 2048usize, 8usize)
    } else {
        (31_250u32, 32u32, 150_000usize, 32usize)
    };
    let edits_per_wave = 16u32;

    let sheet_run = |workers: usize| -> Run {
        let mem0 = alphonse::mem::snapshot();
        let rt = Runtime::new();
        rt.set_parallelism(workers);
        let t0 = Instant::now();
        let sheet = Sheet::new(&rt, cols, rows);
        let mut edits = Vec::with_capacity(cols as usize * rows as usize);
        for c in 0..cols {
            edits.push((Addr::new(c, 0), Formula::Num(c as i64)));
            for r in 1..rows {
                edits.push((
                    Addr::new(c, r),
                    Formula::Bin {
                        op: Op::Add,
                        lhs: Arc::new(Formula::Ref(Addr::new(c, r - 1))),
                        rhs: Arc::new(Formula::Num(1)),
                    },
                ));
            }
        }
        sheet.set_formulas(edits).expect("bulk populate");
        // Demand every column's bottom cell: materializes the whole chain.
        for c in 0..cols {
            let got = sheet.value_at(Addr::new(c, rows - 1)).num();
            assert_eq!(got, Some(c as i64 + rows as i64 - 1), "column {c}");
        }
        let build_s = t0.elapsed().as_secs_f64();
        let nodes = rt.stats().mem_nodes;
        let mem1 = alphonse::mem::snapshot();
        let m0 = rt.metrics_snapshot();
        let mut r = workloads::rng(1700 + workers as u64);
        for w in 0..waves_n {
            let batch: Vec<(Addr, Formula)> = (0..edits_per_wave.min(cols))
                .map(|i| {
                    let c = r.gen_range(0..cols);
                    (
                        Addr::new(c, 0),
                        Formula::Num((w as i64 + 1) * 1000 + i as i64),
                    )
                })
                .collect();
            let probes: Vec<(u32, i64)> = batch
                .iter()
                .map(|(a, f)| match f {
                    Formula::Num(v) => (a.col, *v),
                    _ => unreachable!(),
                })
                .collect();
            sheet.set_formulas(batch).expect("wave edit");
            rt.propagate();
            // Last write wins within the batch, so probe in reverse and
            // only check each column's final value.
            let mut seen = std::collections::HashSet::new();
            for &(c, v) in probes.iter().rev() {
                if seen.insert(c) {
                    let got = sheet.value_at(Addr::new(c, rows - 1)).num();
                    assert_eq!(got, Some(v + rows as i64 - 1), "column {c} after wave {w}");
                }
            }
        }
        let snapshot = rt.metrics_snapshot();
        let delta = snapshot.delta_since(&m0);
        Run {
            nodes,
            cells: cols as u64 * rows as u64,
            build_s,
            waves: delta.wave_latency_ns,
            tag_bytes: TAGS.iter().map(|&n| (n, live(n, &mem1, &mem0))).collect(),
            snapshot,
        }
    };

    let ag_run = |workers: usize| -> Run {
        let mem0 = alphonse::mem::snapshot();
        let rt = Runtime::new();
        rt.set_parallelism(workers);
        let mut g = Grammar::builder();
        let value = g.synthesized("value");
        let leaf = g.production("Leaf", 0, 1);
        let plus = g.production("Plus", 2, 0);
        g.syn_eq(leaf, value, |ctx| ctx.terminal(0));
        g.syn_eq(plus, value, move |ctx| {
            AttrVal::Int(ctx.child_syn(0, value).as_int() + ctx.child_syn(1, value).as_int())
        });
        let tree = AgTree::new(&rt, Arc::new(g.build()));
        let t0 = Instant::now();
        let mut mirror: Vec<i64> = (0..leaves).map(|i| i as i64 % 7).collect();
        let leaf_ids: Vec<AgNodeId> = mirror
            .iter()
            .map(|&v| tree.new_node(leaf, vec![AttrVal::Int(v)]))
            .collect();
        let mut level = leaf_ids.clone();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => tree.build(plus, vec![], &[*a, *b]),
                    [a] => *a,
                    _ => unreachable!(),
                })
                .collect();
        }
        let root = level[0];
        let eval = AgEvaluator::new(&rt, Arc::clone(&tree));
        let expect: i64 = mirror.iter().sum();
        assert_eq!(eval.syn(root, value).as_int(), expect);
        let build_s = t0.elapsed().as_secs_f64();
        let nodes = rt.stats().mem_nodes;
        let mem1 = alphonse::mem::snapshot();
        let m0 = rt.metrics_snapshot();
        let mut r = workloads::rng(1750 + workers as u64);
        for w in 0..waves_n {
            for i in 0..edits_per_wave as usize {
                let li = r.gen_range(0..leaves);
                let v = (w as i64 + 1) * 100 + i as i64;
                mirror[li] = v;
                tree.set_terminal(leaf_ids[li], 0, AttrVal::Int(v));
            }
            rt.propagate();
            let expect: i64 = mirror.iter().sum();
            assert_eq!(eval.syn(root, value).as_int(), expect, "wave {w}");
        }
        let snapshot = rt.metrics_snapshot();
        let delta = snapshot.delta_since(&m0);
        Run {
            nodes,
            cells: tree.len() as u64,
            build_s,
            waves: delta.wave_latency_ns,
            tag_bytes: TAGS.iter().map(|&n| (n, live(n, &mem1, &mem0))).collect(),
            snapshot,
        }
    };

    for workers in [0usize, 4] {
        let mode = if workers == 0 { "seq" } else { "par4" };
        let run = sheet_run(workers);
        sidecar.merge(&run.snapshot);
        emit(&mut t, "sheet_chain", mode, run);
    }
    for workers in [0usize, 4] {
        let mode = if workers == 0 { "seq" } else { "par4" };
        let run = ag_run(workers);
        sidecar.merge(&run.snapshot);
        emit(&mut t, "ag_sumtree", mode, run);
    }
    write_metrics_sidecar("E17", &sidecar);
    t
}
