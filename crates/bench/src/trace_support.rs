//! `--trace` / `--trace-out` plumbing shared by the benchmark binaries.
//!
//! The bench bins construct their runtimes internally, so a sink cannot be
//! attached by hand; instead this module installs a thread-local *default*
//! sink ([`alphonse::trace::set_default_sink`]) before the experiments run,
//! which every runtime built afterwards picks up. The spec grammar and the
//! consumers are shared with the lang interpreter's `ALPHONSE_TRACE`
//! environment variable — both funnel through
//! [`alphonse::trace::TraceConfig`]:
//!
//! | flag                  | consumer                         | artifact               |
//! |-----------------------|----------------------------------|------------------------|
//! | `--trace 1`           | [`alphonse::trace::Recorder`]    | event dump on stderr   |
//! | `--trace chrome`      | [`alphonse::trace::ChromeTrace`] | `TRACE_<stem>.json`    |
//! | `--trace dot`         | [`alphonse::trace::GraphSink`]   | `TRACE_<stem>.dot`     |
//! | `--trace hot[:K]`     | [`alphonse::trace::Profiler`]    | top-K table on stdout  |
//! | `--trace jsonl`       | [`alphonse::trace::JsonlSink`]   | `TRACE_<stem>.jsonl`   |
//! | `--trace-out <path>`  | [`alphonse::trace::JsonlSink`]   | `<path>`               |
//!
//! With neither flag given, `ALPHONSE_TRACE` is consulted as a fallback, so
//! `ALPHONSE_TRACE=trace.jsonl cargo run --bin e2_overhead` works the same
//! as it does for the interpreter. The chrome artifact loads in Perfetto
//! (<https://ui.perfetto.dev>); the JSONL artifact replays through the
//! `alphonse-trace` CLI (`why` / `waves` / `waste`). When a binary runs
//! several experiments the timeline, profiler, and JSONL stream aggregate
//! across all of them, while the graph mirror keeps the most recently
//! constructed runtime.

use alphonse::trace::{self, ActiveTrace, Provenance, TraceConfig};
use std::sync::Arc;

/// Extracts `--<name> <value>` or `--<name>=<value>` from `args`, removing
/// the consumed tokens so downstream positional parsing never sees them.
///
/// # Errors
///
/// Returns a usage message if the flag is present but the value is missing
/// or empty.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let flag = format!("--{name}");
    let inline = format!("--{name}=");
    let Some(i) = args
        .iter()
        .position(|a| *a == flag || a.starts_with(&inline))
    else {
        return Ok(None);
    };
    let tok = args.remove(i);
    let value = if let Some(v) = tok.strip_prefix(&inline) {
        v.to_string()
    } else {
        if i >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        args.remove(i)
    };
    if value.is_empty() {
        return Err(format!("{flag} requires a non-empty value"));
    }
    Ok(Some(value))
}

/// Extracts a `--trace <spec>` flag (spec grammar of
/// [`TraceConfig::parse`]). The spec itself is validated later, when the
/// session starts.
pub fn take_trace_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    take_value_flag(args, "trace")
}

/// Extracts a `--trace-out <path>` flag: shorthand for `--trace jsonl:<path>`.
pub fn take_trace_out_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    take_value_flag(args, "trace-out")
}

/// An installed trace session: the chosen consumer teed with a live
/// [`Provenance`] index, installed as the thread-default sink.
///
/// Construct with [`TraceSession::from_args`] (or [`TraceSession::start`])
/// *before* any runtime is built and call [`TraceSession::finish`] after the
/// workload completes.
pub struct TraceSession {
    active: ActiveTrace,
}

impl TraceSession {
    /// Starts `config` and installs its sink as the thread-local default.
    pub fn start(config: TraceConfig) -> std::io::Result<TraceSession> {
        let active = config.start()?;
        active.install_default();
        Ok(TraceSession { active })
    }

    /// Parses `--trace` / `--trace-out` out of `args` (falling back to the
    /// `ALPHONSE_TRACE` environment variable when neither is given) and
    /// starts a session if tracing was requested. Exits the process with a
    /// usage message on a malformed or conflicting request (bench binaries
    /// have no fancier error channel).
    pub fn from_args(args: &mut Vec<String>, stem: &str) -> Option<TraceSession> {
        let fail = |msg: String| -> ! {
            eprintln!("error: {msg}");
            std::process::exit(2);
        };
        let spec = take_trace_flag(args).unwrap_or_else(|e| fail(e));
        let out = take_trace_out_flag(args).unwrap_or_else(|e| fail(e));
        let config = match (spec, out) {
            (Some(_), Some(_)) => fail("--trace and --trace-out are mutually exclusive".into()),
            (Some(spec), None) => TraceConfig::parse(&spec, stem).unwrap_or_else(|e| fail(e)),
            (None, Some(path)) => TraceConfig::Jsonl(path.into()),
            (None, None) => match TraceConfig::from_env(stem) {
                Some(Ok(c)) => c,
                Some(Err(e)) => fail(e),
                None => return None,
            },
        };
        match TraceSession::start(config) {
            Ok(s) => Some(s),
            Err(e) => fail(format!("failed to start trace: {e}")),
        }
    }

    /// The live causal index fed by this session.
    pub fn provenance(&self) -> &Arc<Provenance> {
        self.active.provenance()
    }

    /// Uninstalls the default sink and flushes the artifact: writes
    /// `TRACE_<stem>.json` / `.dot` / `.jsonl` into the current directory
    /// (next to the `BENCH_*.json` files), dumps the recorder to stderr, or
    /// prints the hot-node table.
    pub fn finish(self) {
        trace::set_default_sink(None);
        match self.active.finish(None) {
            Ok(Some(msg)) => eprintln!("{msg}"),
            Ok(None) => {}
            Err(e) => eprintln!("warning: failed to flush trace: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_separate_and_inline_forms() {
        let mut a = args(&["--quick", "--trace", "chrome", "e2"]);
        assert_eq!(take_trace_flag(&mut a).unwrap().as_deref(), Some("chrome"));
        assert_eq!(a, args(&["--quick", "e2"]));

        let mut b = args(&["--trace=hot"]);
        assert_eq!(take_trace_flag(&mut b).unwrap().as_deref(), Some("hot"));
        assert!(b.is_empty());
    }

    #[test]
    fn absent_flag_is_none_and_args_untouched() {
        let mut a = args(&["--json", "e6"]);
        assert_eq!(take_trace_flag(&mut a).unwrap(), None);
        assert_eq!(a, args(&["--json", "e6"]));
    }

    #[test]
    fn rejects_missing_or_empty_value() {
        assert!(take_trace_flag(&mut args(&["--trace"])).is_err());
        assert!(take_trace_flag(&mut args(&["--trace="])).is_err());
        assert!(take_trace_out_flag(&mut args(&["--trace-out"])).is_err());
    }

    #[test]
    fn trace_out_consumes_path() {
        let mut a = args(&["--trace-out", "out/run.jsonl", "e2"]);
        assert_eq!(
            take_trace_out_flag(&mut a).unwrap().as_deref(),
            Some("out/run.jsonl")
        );
        assert_eq!(a, args(&["e2"]));
    }

    #[test]
    fn bad_spec_is_deferred_to_config_parse() {
        // The flag parser accepts any non-empty spec; validation lives in
        // the shared TraceConfig grammar.
        let mut a = args(&["--trace", "flame"]);
        let spec = take_trace_flag(&mut a).unwrap().unwrap();
        assert!(TraceConfig::parse(&spec, "x").is_err());
    }
}
